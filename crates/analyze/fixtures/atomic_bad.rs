//! Known-bad fixture for the `atomic-ordering` pass: a publication-protocol
//! module (it defines an `AtomicPtr` cell) using `Ordering::Relaxed` on the
//! pointer handoff — exactly the bug that would let a reader observe a
//! retired snapshot after the writer's quiescence scan.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

struct Cell<T> {
    ptr: AtomicPtr<T>,
    pins: AtomicUsize,
}

impl<T> Cell<T> {
    /// VIOLATION: a relaxed pointer load breaks the SeqCst total order the
    /// pin-scan soundness argument requires.
    fn load_ptr(&self) -> *mut T {
        self.ptr.load(Ordering::Relaxed)
    }

    /// VIOLATION: relaxed publication.
    fn store_ptr(&self, p: *mut T) {
        self.ptr.store(p, Ordering::Relaxed);
    }

    /// VIOLATION: the pin counter is part of the protocol too.
    fn pin(&self) {
        self.pins.fetch_add(1, Ordering::Relaxed);
    }
}
