//! Clean fixture for the `atomic-ordering` pass: SeqCst on every
//! publication-protocol atomic, with the two legitimate relaxations — the
//! allowlisted pin-slot round-robin counter, and an explicit, justified
//! `mvi-allow` annotation.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

static NEXT_PIN_SLOT: AtomicUsize = AtomicUsize::new(0);

struct Cell<T> {
    ptr: AtomicPtr<T>,
    pins: AtomicUsize,
}

impl<T> Cell<T> {
    fn load_ptr(&self) -> *mut T {
        self.ptr.load(Ordering::SeqCst)
    }

    fn store_ptr(&self, p: *mut T) {
        self.ptr.store(p, Ordering::SeqCst);
    }

    fn pin(&self) {
        self.pins.fetch_add(1, Ordering::SeqCst);
    }

    /// The allowlisted exception: slot assignment is pure load-balancing —
    /// any slot is correct — so its ordering is immaterial.
    fn slot() -> usize {
        NEXT_PIN_SLOT.fetch_add(1, Ordering::Relaxed) % 64
    }

    /// A non-protocol stat counter may relax with a visible annotation.
    fn bump_stat(stat: &AtomicUsize) {
        // mvi-allow: atomic-ordering monotonic stat counter, no ordering dependency
        stat.fetch_add(1, Ordering::Relaxed);
    }
}
