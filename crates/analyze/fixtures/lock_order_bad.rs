//! Known-bad fixture for the `lock-order` pass: three protocol violations.
//! This file is never compiled — it only needs to lex.

use std::collections::BTreeSet;

impl Engine {
    /// VIOLATION (line below `lock_for_series`): a shard lock is taken and
    /// then the core state mutex — the inversion that deadlocks against any
    /// writer holding core and waiting on the shard.
    fn shard_before_core(&self, s: usize) {
        let mut shard = self.shards.lock_for_series(s);
        shard.quarantined += 1;
        let state = self.state.lock();
        drop(state);
    }

    /// VIOLATION: the terminal poison level is held conceptually before a
    /// shard acquisition.
    fn poison_before_shard(&self) {
        self.shards.bump_poison();
        let guards = self.shards.lock_all();
        drop(guards);
    }

    /// VIOLATION: two direct shard acquisitions in one body instead of one
    /// `lock_many` — nothing proves they were taken ascending.
    fn unordered_double_shard(&self, a: usize, b: usize) {
        let ga = self.shards.lock_for_series(a);
        let gb = self.shards.lock_for_series(b);
        drop((ga, gb));
    }

    /// Clean: the full protocol in order, for contrast.
    fn in_order(&self) {
        let state = self.state.lock();
        let guards = self.shards.lock_all();
        self.shards.bump_poison();
        drop((state, guards));
    }
}
