//! Clean fixture for the `lock-order` pass: every body follows
//! `core → shard (ascending) → poison`, including level skips.

use std::collections::BTreeSet;

impl Engine {
    /// Core only.
    fn core_only(&self) {
        let state = self.state.lock();
        drop(state);
    }

    /// Core, then a single multi-shard acquisition, then the poison counter.
    fn full_protocol(&self, shards: &BTreeSet<usize>) {
        let state = self.lock_state();
        for (idx, mut guard) in self.shards.lock_many(shards) {
            guard.degraded_events += idx as u64;
        }
        self.shards.bump_poison();
        drop(state);
    }

    /// Skipping levels is allowed: core straight to poison.
    fn skip_shard_level(&self) {
        let state = self.state.try_lock();
        self.shards.bump_poison();
        drop(state);
    }

    /// Shard then poison, never touching core (the health-report shape).
    fn aggregate(&self) -> u64 {
        let guards = self.shards.lock_all();
        let poisoned = self.shards.poison_recoveries();
        drop(guards);
        poisoned
    }

    /// One single-shard acquisition per body is fine.
    fn single_shard(&self, s: usize) {
        self.shards.lock_for_series(s).quarantined += 1;
    }
}
