//! Known-bad fixture for the `panic` pass: unannotated panic sites in
//! non-test code, plus the shapes that must NOT fire (doc examples, test
//! modules, `unwrap_or_else`).

/// Doc examples never count:
///
/// ```
/// engine.query(0, 0, 10).unwrap();
/// ```
fn serve(values: &[f64]) -> f64 {
    // VIOLATION: unwrap on the hot path.
    let first = values.first().unwrap();
    // VIOLATION: expect on the hot path.
    let last = values.last().expect("non-empty");
    if first > last {
        // VIOLATION: explicit panic.
        panic!("descending");
    }
    // VIOLATION: unreachable is a panic too.
    match values.len() {
        0 => unreachable!(),
        _ => first + last,
    }
}

fn not_a_panic(values: &[f64]) -> f64 {
    // `unwrap_or_else` and friends are fine — they do not panic.
    values.first().copied().unwrap_or_else(|| 0.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = [1.0, 2.0];
        assert_eq!(*v.first().unwrap(), 1.0);
        v.last().expect("non-empty");
    }
}
