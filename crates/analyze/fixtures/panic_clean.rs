//! Clean fixture for the `panic` pass: typed errors on the hot path, a
//! justified structural-invariant suppression, and test-only unwraps.

enum ServeError {
    Empty,
}

fn serve(values: &[f64]) -> Result<f64, ServeError> {
    let first = values.first().ok_or(ServeError::Empty)?;
    let last = values.last().ok_or(ServeError::Empty)?;
    Ok(first + last)
}

fn structural(values: &[f64]) -> f64 {
    let doubled: Vec<f64> = values.iter().map(|v| v * 2.0).collect();
    // mvi-allow: panic — map over a non-empty input cannot produce an empty vec
    *doubled.first().unwrap()
}

#[test]
fn test_fn_may_unwrap() {
    assert_eq!(serve(&[1.0]).map_err(|_| ()).unwrap(), 2.0);
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_tests_may_unwrap() {
        let v = [3.0];
        v.first().unwrap();
    }
}
