//! Known-bad fixture for the `panic` pass over the network front door's
//! connection/frame hot path: the shapes a naive codec or connection loop
//! would use, each of which turns hostile bytes or a poisoned lock into a
//! dead connection thread instead of a typed wire error.

fn decode_header(buf: &[u8]) -> (u8, u32) {
    // VIOLATION: slice-to-array conversion unwrap — hostile short input panics.
    let len = u32::from_le_bytes(buf[5..9].try_into().unwrap());
    // VIOLATION: expect on attacker-controlled framing.
    let version = buf.first().copied().expect("header present");
    (version, len)
}

fn serve_conn(conns: &std::sync::Mutex<usize>) -> usize {
    // VIOLATION: lock().unwrap() — a panicking sibling thread poisons the
    // mutex and every later connection dies here.
    let guard = conns.lock().unwrap();
    if *guard == 0 {
        // VIOLATION: explicit panic in the accept path.
        panic!("no connections");
    }
    *guard
}

fn not_a_panic(conns: &std::sync::Mutex<usize>) -> usize {
    // The poison-tolerant idiom is fine — `unwrap_or_else` does not panic.
    *conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let buf = [0u8; 14];
        assert_eq!(*buf.first().unwrap(), 0);
    }
}
