//! Clean fixture for the `panic` pass over the network front door: total
//! decoding with typed errors, poison-tolerant locking, and `let-else`
//! instead of unwraps — the idioms `crates/net` is held to.

enum FrameError {
    Truncated,
    BadVersion(u8),
}

fn decode_header(buf: &[u8]) -> Result<(u8, u32), FrameError> {
    let Some(version) = buf.first().copied() else {
        return Err(FrameError::Truncated);
    };
    if version != 1 {
        return Err(FrameError::BadVersion(version));
    }
    let Some(len_bytes) = buf.get(5..9) else {
        return Err(FrameError::Truncated);
    };
    let mut len = [0u8; 4];
    len.copy_from_slice(len_bytes);
    Ok((version, u32::from_le_bytes(len)))
}

fn serve_conn(conns: &std::sync::Mutex<usize>) -> usize {
    // Poison-tolerant: a panicking sibling must not kill this connection.
    *conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_tests_may_unwrap() {
        assert!(super::decode_header(&[]).map(|_| ()).map_err(|_| ()).unwrap_err() == ());
    }
}
