//! Known-bad fixture for the `panic` pass over the tenancy registry hot
//! path: the shapes a naive multi-model router would use, each of which
//! turns a missing tenant, a poisoned map or a full registry into a dead
//! serving thread instead of a typed error.

use std::collections::HashMap;
use std::sync::Mutex;

fn resolve(tenants: &Mutex<HashMap<String, usize>>, tenant: &str) -> usize {
    // VIOLATION: lock().unwrap() — one panicking registrant poisons the map
    // and every later request for every tenant dies here.
    let map = tenants.lock().unwrap();
    // VIOLATION: unwrap on a lookup the client controls — an unknown tenant
    // id kills the connection thread instead of answering UnknownTenant.
    *map.get(tenant).unwrap()
}

fn admit(resident: usize, capacity: usize) {
    if resident >= capacity {
        // VIOLATION: explicit panic where RegistryFull should cross the wire.
        panic!("registry full: {resident}/{capacity}");
    }
}

fn spill_name(tenant: &str) -> String {
    // VIOLATION: expect on derived state — a tenant id that sanitizes to
    // nothing panics the eviction path mid-request.
    let head = tenant.chars().next().expect("non-empty tenant id");
    format!("{head}.mvisnap")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let map: std::collections::HashMap<String, usize> =
            [("a".to_string(), 1)].into_iter().collect();
        assert_eq!(*map.get("a").unwrap(), 1);
    }
}
