//! Clean twin of `panic_registry_bad.rs`: the registry idioms the serving
//! crate actually uses — poison-tolerant map access, typed errors for
//! unknown/full, and total handling of derived state — none of which can
//! panic a serving thread.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

#[derive(Debug)]
enum RouteError {
    UnknownTenant(String),
    RegistryFull(usize),
}

/// Poison-tolerant lock: the map is plain bookkeeping, always valid.
fn guard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn resolve(tenants: &Mutex<HashMap<String, usize>>, tenant: &str) -> Result<usize, RouteError> {
    let map = guard(tenants);
    map.get(tenant).copied().ok_or_else(|| RouteError::UnknownTenant(tenant.to_string()))
}

fn admit(resident: usize, capacity: usize) -> Result<(), RouteError> {
    if resident >= capacity {
        return Err(RouteError::RegistryFull(capacity));
    }
    Ok(())
}

fn spill_name(tenant: &str) -> String {
    // Total on empty ids: a fallback stem instead of an expect.
    let head = tenant.chars().next().unwrap_or('_');
    format!("{head}.mvisnap")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_is_typed() {
        let tenants = Mutex::new(HashMap::new());
        assert!(matches!(resolve(&tenants, "ghost"), Err(RouteError::UnknownTenant(_))));
        assert!(admit(1, 1).is_err());
        assert_eq!(spill_name(""), "_.mvisnap");
    }
}
