//! Known-bad fixture for the `safety` pass: `unsafe` without adjacent
//! justification, in each of the three shapes the pass distinguishes.

/// VIOLATION: an unsafe block with no `// SAFETY:` comment.
fn bare_block(p: *const u8) -> u8 {
    unsafe { *p }
}

/// VIOLATION: the comment exists but a blank line breaks adjacency, so it
/// can drift arbitrarily far from the code it claims to justify.
fn stale_comment(p: *const u8) -> u8 {
    // SAFETY: this comment is orphaned by the blank line below.

    unsafe { *p }
}

// VIOLATION: an `unsafe fn` carrying no justification in either of the
// accepted forms (this adjacent comment deliberately names neither marker).
unsafe fn undocumented_contract(p: *mut u8) {
    *p = 0;
}

struct Wrapper(*mut u8);

// VIOLATION: unsafe impl without a justification.
unsafe impl Send for Wrapper {}
