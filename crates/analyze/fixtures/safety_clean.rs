//! Clean fixture for the `safety` pass: every `unsafe` carries its
//! justification in one of the accepted adjacent forms.

/// A block with the canonical comment directly above.
fn commented_block(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

/// A trailing same-line comment also counts.
fn trailing_comment(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: valid by the fixture's construction.
}

/// An `unsafe fn` justified by its rustdoc `# Safety` section, with
/// attributes between the docs and the item (the adjacency walk skips
/// attribute lines).
///
/// # Safety
/// `p` must be valid for writes.
#[allow(dead_code)]
#[inline]
unsafe fn documented_contract(p: *mut u8) {
    // SAFETY: contract delegated to the caller (see `# Safety`).
    unsafe { *p = 0 };
}

struct Wrapper(*mut u8);

// SAFETY: the raw pointer is only an opaque token in this fixture; no thread
// ever dereferences it.
unsafe impl Send for Wrapper {}
