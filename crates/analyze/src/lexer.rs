//! A hand-rolled Rust lexer: just enough tokenization for the lint passes.
//!
//! The container building this workspace is offline, so `syn` is not an
//! option; fortunately none of the passes need a parse tree. They need a
//! *token stream* in which comments, strings and doc text can never be
//! mistaken for code — `unwrap` inside a doc example must not trip the
//! panic-surface lint, and `// SAFETY:` prose must be visible as a comment
//! with a line number. The lexer therefore produces:
//!
//! * [`Token`]s — identifiers and single-character punctuation with 1-based
//!   line numbers (literals are consumed and dropped: no pass needs them);
//! * [`Comment`]s — every `//…` and `/* … */` comment with its line span and
//!   raw text, which is where the SAFETY lint and the `mvi-allow:`
//!   suppression grammar look;
//! * the raw source split into lines, for the adjacency walks.
//!
//! The tricky corners it handles: nested block comments, raw strings
//! (`r"…"`, `r#"…"#`, byte and C variants), escaped string/char literals,
//! and the lifetime-vs-char-literal ambiguity (`'a` vs `'a'`).

/// One lexical token the passes can match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// Token payload: the passes only ever need identifiers and punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `lock_many`, `Ordering`, …).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `!`, `{`, …). Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` `:`).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            TokenKind::Punct(_) => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

/// A comment with its line span (both 1-based, inclusive) and raw text,
/// including the `//` / `/*` sigils.
#[derive(Debug, Clone)]
pub struct Comment {
    /// First line of the comment.
    pub line: u32,
    /// Last line of the comment (equal to `line` for `//` comments).
    pub end_line: u32,
    /// Raw comment text.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Code tokens in source order (comments, strings and literals removed).
    pub tokens: Vec<Token>,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
    /// The raw source split into lines (index 0 is line 1).
    pub lines: Vec<String>,
}

impl Lexed {
    /// The comment spanning source line `line`, if any.
    pub fn comment_at(&self, line: u32) -> Option<&Comment> {
        self.comments.iter().find(|c| c.line <= line && line <= c.end_line)
    }
}

/// Lexes `source` (see the module docs for what is and is not preserved).
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    end_line: line,
                    text: chars[start..i].iter().collect(),
                });
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                });
            }
            '"' => i = skip_string(&chars, i, &mut line),
            '\'' => i = skip_char_or_lifetime(&chars, i, &mut line),
            c if c.is_ascii_digit() => i = skip_number(&chars, i),
            c if c.is_alphabetic() || c == '_' => {
                // Raw/byte string prefixes lex as an identifier start; peel
                // them off before committing to an identifier.
                if let Some(next) = raw_or_byte_string(&chars, i) {
                    i = skip_prefixed_string(&chars, i, next, &mut line);
                    continue;
                }
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens
                    .push(Token { kind: TokenKind::Ident(chars[start..i].iter().collect()), line });
            }
            c => {
                tokens.push(Token { kind: TokenKind::Punct(c), line });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments, lines: source.lines().map(str::to_owned).collect() }
}

/// If an identifier starting at `i` is actually a raw/byte string prefix
/// (`r"`, `r#`, `b"`, `b'`, `br`, `c"`, `cr`, …), returns the index of the
/// first `"` / `#` / `'` after the prefix letters.
fn raw_or_byte_string(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    for _ in 0..2 {
        match chars.get(j) {
            Some('r' | 'b' | 'c') => j += 1,
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    match chars.get(j) {
        Some('"') => Some(j),
        Some('#') => {
            // Distinguish `r#"raw"#` from a raw identifier like `r#fn`:
            // a raw string has `"` right after its `#` fence.
            let mut k = j;
            while chars.get(k) == Some(&'#') {
                k += 1;
            }
            (chars.get(k) == Some(&'"')).then_some(j)
        }
        Some('\'') if chars[i..j] == ['b'] => Some(j),
        _ => None,
    }
}

/// Skips a string/char literal whose quote (or raw `#` fence) starts at
/// `quote`, given the prefix began earlier; returns the index past it.
fn skip_prefixed_string(chars: &[char], start: usize, quote: usize, line: &mut u32) -> usize {
    let raw = chars[start..quote].contains(&'r');
    if !raw {
        return match chars[quote] {
            '\'' => skip_char_or_lifetime(chars, quote, line),
            _ => skip_string(chars, quote, line),
        };
    }
    // Raw string: count `#` fence, then scan for the closing `"` + fence.
    let mut i = quote;
    let mut hashes = 0usize;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
        } else if chars[i] == '"' && chars[i + 1..].iter().take(hashes).all(|&c| c == '#') {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) at a `'`:
/// a backslash or a closing quote right after one payload char means a char
/// literal; otherwise it is a lifetime and only the `'` is consumed (the
/// lifetime name then lexes as a normal identifier, which is harmless).
fn skip_char_or_lifetime(chars: &[char], start: usize, line: &mut u32) -> usize {
    match chars.get(start + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut i = start + 2;
            while i < chars.len() && chars[i] != '\'' {
                i += 1;
            }
            i + 1
        }
        Some('\n') => {
            // `'` then newline cannot be a literal; treat as stray.
            *line += 1;
            start + 1
        }
        Some(_) if chars.get(start + 2) == Some(&'\'') => start + 3,
        _ => start + 1,
    }
}

/// Skips a numeric literal (digits, `_`, type suffixes, a fractional part —
/// but not the `..` of a range expression).
fn skip_number(chars: &[char], start: usize) -> usize {
    let mut i = start;
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.ident().map(str::to_owned)).collect()
    }

    #[test]
    fn comments_and_strings_never_leak_tokens() {
        let src = r##"
// unwrap in a comment
/* panic! in /* a nested */ block */
let s = "unsafe .unwrap() inside a string";
let r = r#"raw "panic!" body"#;
let c = 'x';
let lt: &'static str = "y";
real_ident();
"##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
        // The lifetime name lexes as an identifier; the char payload does not.
        assert!(ids.contains(&"static".to_string()));
        assert!(!ids.contains(&"x".to_string()));
    }

    #[test]
    fn comment_spans_and_text_are_recorded() {
        let src = "let a = 1;\n// SAFETY: fine\nunsafe { op() }\n/* multi\nline */\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert_eq!((lexed.comments[1].line, lexed.comments[1].end_line), (4, 5));
        let unsafe_tok = lexed.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(unsafe_tok.line, 3);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"one\ntwo\";\nafter();";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn number_with_method_call_and_ranges() {
        let src = "let x = 0..n; let y = 1.5f64; let z = 3.max(4);";
        let ids = idents(src);
        assert!(ids.contains(&"n".to_string()));
        assert!(ids.contains(&"max".to_string()));
    }
}
