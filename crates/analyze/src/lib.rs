//! `mvi-analyze` — a workspace lint engine that statically enforces the
//! concurrency, unsafety and panic-surface invariants the serving layer's
//! correctness rests on.
//!
//! PR 7 made the engine's correctness depend on hand-maintained invariants:
//! a `core → shard (ascending) → poison` lock-acquisition order, a SeqCst
//! publication protocol in `crates/serve/src/shard.rs`, and a set of
//! SAFETY-justified `unsafe` blocks. Until this crate those lived only in
//! ARCHITECTURE.md prose and reviewer vigilance; as the system grows more
//! engines and more lock-free state, every new PR multiplies the code
//! shapes those invariants constrain. This tool turns them into CI gates:
//!
//! | pass | lint id | what it proves |
//! |------|---------|----------------|
//! | [lock order](passes) | `lock-order` | no function body acquires locks against the documented `core → shard (ascending) → poison` protocol |
//! | [SAFETY](passes) | `safety` | every `unsafe` block/fn/impl carries an adjacent `// SAFETY:` justification (or a `# Safety` doc section for `unsafe fn`) |
//! | [atomic ordering](passes) | `atomic-ordering` | no `Ordering::Relaxed` inside publication-protocol modules (files defining `AtomicPtr` cells), except the allowlisted pin-slot round-robin counter |
//! | [panic surface](passes) | `panic` | no `unwrap`/`expect`/`panic!` in non-test code of the serving hot-path modules |
//!
//! Findings can be suppressed — visibly, never silently — with an inline
//! `// mvi-allow: <lint> <justification>` annotation on the offending line
//! or the line directly above; the tool reports every suppression it
//! honored, so the full escape-hatch inventory ships with each run.
//!
//! The crate is dependency-free by design (the build container is offline):
//! it carries its own [Rust lexer](lexer) and writes its own JSON. Run it as
//!
//! ```text
//! cargo run -p mvi-analyze -- --workspace          # human-readable, exit 1 on findings
//! cargo run -p mvi-analyze -- --workspace --json   # machine-readable report
//! cargo run -p mvi-analyze -- path/to/file.rs …    # all passes over explicit files
//! ```
//!
//! or through `scripts/analyze.sh`, which is what CI's `analyze` job does.
//! The fixture corpus under `crates/analyze/fixtures/` pins each pass's
//! behaviour (one known-bad and one clean file per pass), and the workspace
//! meta-test `tests/analyze_workspace.rs` asserts the live tree stays clean.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod passes;
pub mod report;

pub use passes::{FileReport, PassSet};
pub use report::Report;

/// The lint a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// The `core → shard (ascending) → poison` lock-order protocol.
    LockOrder,
    /// Adjacent `// SAFETY:` justification on every `unsafe`.
    Safety,
    /// No `Ordering::Relaxed` in publication-protocol modules.
    AtomicOrdering,
    /// No `unwrap`/`expect`/`panic!` on the serving hot path.
    Panic,
}

impl Lint {
    /// The stable lint id used in reports and `mvi-allow:` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Lint::LockOrder => "lock-order",
            Lint::Safety => "safety",
            Lint::AtomicOrdering => "atomic-ordering",
            Lint::Panic => "panic",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which pass produced it.
    pub lint: Lint,
    /// Workspace-relative path (or the label the caller passed in).
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A violation silenced by an `// mvi-allow:` annotation — recorded, not
/// hidden: suppressions appear in both output formats.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Which pass the annotation silenced.
    pub lint: Lint,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based source line of the suppressed site.
    pub line: u32,
    /// The justification text following the lint id in the annotation.
    pub justification: String,
}

/// Runs `passes` over one in-memory source file; `label` is the path
/// findings will carry.
pub fn analyze_source(label: &str, source: &str, passes: PassSet) -> FileReport {
    let lexed = lexer::lex(source);
    passes::run_passes(label, &lexed, passes)
}

/// The pass set workspace mode applies to the file at workspace-relative
/// path `rel` (explicit-file mode uses [`PassSet::all`] instead):
///
/// * `safety` runs everywhere;
/// * `lock-order` and `atomic-ordering` run over `crates/serve/` — the
///   crate whose lock protocol and publication cells they encode;
/// * `panic` runs over the serving hot-path modules (`engine`, `shard`,
///   `batch`, and the tenancy `registry` every routed request resolves
///   through) and the network front door's connection/frame hot path
///   (`mvi-net`'s `frame`, `server`, `client`) — the code a request
///   traverses, where a panic means a dropped request (or a dead
///   connection thread) instead of a typed error.
pub fn workspace_passes(rel: &str) -> PassSet {
    const HOT_PATH: [&str; 7] = [
        "crates/serve/src/engine.rs",
        "crates/serve/src/shard.rs",
        "crates/serve/src/batch.rs",
        "crates/serve/src/registry.rs",
        "crates/net/src/frame.rs",
        "crates/net/src/server.rs",
        "crates/net/src/client.rs",
    ];
    let in_serve = rel.starts_with("crates/serve/");
    PassSet {
        lock_order: in_serve,
        safety: true,
        atomic_ordering: in_serve,
        panic: HOT_PATH.contains(&rel),
    }
}

/// Analyzes the whole workspace rooted at `root`: every `.rs` file under
/// `src/`, `tests/`, `examples/`, `benches/` and `crates/*/{same}`, with
/// `vendor/`, `target/` and fixture corpora excluded. Pass scoping follows
/// [`workspace_passes`].
///
/// # Errors
/// Propagates I/O errors from walking the tree or reading files.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "benches"] {
        collect_rs_files(&root.join(top), &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            for sub in ["src", "tests", "examples", "benches"] {
                collect_rs_files(&member.join(sub), &mut files)?;
            }
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let file_report = analyze_source(&rel, &source, workspace_passes(&rel));
        report.findings.extend(file_report.findings);
        report.suppressed.extend(file_report.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (missing directories are
/// fine — not every crate has every target kind), skipping `fixtures`
/// directories: the corpus under `crates/analyze/fixtures/` is known-bad on
/// purpose.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if path.is_dir() {
            if name != "fixtures" && name != "target" && name != "vendor" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
