//! CLI entry point for `mvi-analyze` (see the library docs for the passes).
//!
//! ```text
//! mvi-analyze --workspace [--json] [--root=PATH]   # scoped passes, exit 1 on findings
//! mvi-analyze [--json] FILE [FILE …]               # all passes over explicit files
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use mvi_analyze::{analyze_source, analyze_workspace, find_workspace_root, PassSet, Report};

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--workspace" {
            workspace = true;
        } else if arg == "--json" {
            json = true;
        } else if let Some(path) = arg.strip_prefix("--root=") {
            root = Some(PathBuf::from(path));
        } else if arg == "--help" || arg == "-h" {
            eprintln!(
                "usage: mvi-analyze --workspace [--json] [--root=PATH]\n\
                 \x20      mvi-analyze [--json] FILE [FILE ...]"
            );
            return ExitCode::from(0);
        } else if arg.starts_with('-') {
            eprintln!("mvi-analyze: unknown flag `{arg}` (try --help)");
            return ExitCode::from(2);
        } else {
            files.push(PathBuf::from(arg));
        }
    }
    if workspace != files.is_empty() {
        eprintln!("mvi-analyze: pass either --workspace or explicit files (try --help)");
        return ExitCode::from(2);
    }

    let report = if workspace {
        let root =
            root.or_else(|| std::env::current_dir().ok().and_then(|d| find_workspace_root(&d)));
        let Some(root) = root else {
            eprintln!("mvi-analyze: no workspace root found (set --root=PATH)");
            return ExitCode::from(2);
        };
        match analyze_workspace(&root) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("mvi-analyze: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut report = Report::default();
        for path in &files {
            let source = match std::fs::read_to_string(path) {
                Ok(source) => source,
                Err(err) => {
                    eprintln!("mvi-analyze: {}: {err}", path.display());
                    return ExitCode::from(2);
                }
            };
            let file_report = analyze_source(&path.to_string_lossy(), &source, PassSet::all());
            report.findings.extend(file_report.findings);
            report.suppressed.extend(file_report.suppressed);
            report.files_scanned += 1;
        }
        report
    };

    print!("{}", if json { report.json() } else { report.human() });
    ExitCode::from(if report.deny() { 1 } else { 0 })
}
