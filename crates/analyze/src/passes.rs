//! The lint passes: each one turns an invariant that ARCHITECTURE.md states
//! in prose into a machine-checked rule over the lexed token stream.
//!
//! All passes share two conventions:
//!
//! * **Test code is exempt** where a pass says so: token spans under a
//!   `#[cfg(test)]` module (or a `#[test]` / `#[cfg(test)]` function) are
//!   skipped by the panic-surface pass — tests are *supposed* to unwrap.
//! * **Suppression is explicit and recorded.** A finding on line `L` is
//!   suppressed by a `// mvi-allow: <lint> <justification>` comment on `L`
//!   or on the line directly above. Suppressions are not silent: they are
//!   returned alongside findings and surfaced in the report, so the
//!   escape-hatch inventory is always one `--json` run away.

use crate::lexer::{Lexed, Token};
use crate::{Finding, Lint, Suppression};

/// Which passes to run over a file (workspace mode scopes passes by path;
/// explicit-file mode turns everything on).
#[derive(Debug, Clone, Copy)]
pub struct PassSet {
    /// Run the lock-order pass.
    pub lock_order: bool,
    /// Run the SAFETY-comment pass.
    pub safety: bool,
    /// Run the atomic-ordering pass.
    pub atomic_ordering: bool,
    /// Run the panic-surface pass.
    pub panic: bool,
}

impl PassSet {
    /// Every pass enabled (explicit-file mode).
    pub fn all() -> Self {
        Self { lock_order: true, safety: true, atomic_ordering: true, panic: true }
    }
}

/// The outcome of running the enabled passes over one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that were not suppressed.
    pub findings: Vec<Finding>,
    /// Violations silenced by an `mvi-allow` annotation.
    pub suppressed: Vec<Suppression>,
}

/// Runs `passes` over one lexed file. `file` is the label findings carry
/// (workspace-relative path in workspace mode).
pub fn run_passes(file: &str, lexed: &Lexed, passes: PassSet) -> FileReport {
    let mut raw = Vec::new();
    if passes.lock_order {
        lock_order_pass(file, lexed, &mut raw);
    }
    if passes.safety {
        safety_pass(file, lexed, &mut raw);
    }
    if passes.atomic_ordering {
        atomic_ordering_pass(file, lexed, &mut raw);
    }
    if passes.panic {
        panic_surface_pass(file, lexed, &mut raw);
    }
    let mut report = FileReport::default();
    for finding in raw {
        match allow_annotation(lexed, finding.lint, finding.line) {
            Some(justification) => report.suppressed.push(Suppression {
                lint: finding.lint,
                file: finding.file,
                line: finding.line,
                justification,
            }),
            None => report.findings.push(finding),
        }
    }
    report
}

/// Looks for a `// mvi-allow: <lint> …` annotation covering `line` (same
/// line or the line directly above). Returns the justification text.
fn allow_annotation(lexed: &Lexed, lint: Lint, line: u32) -> Option<String> {
    for candidate in [line, line.saturating_sub(1)] {
        if candidate == 0 {
            continue;
        }
        let Some(comment) = lexed.comment_at(candidate) else { continue };
        let Some(rest) = comment.text.split("mvi-allow:").nth(1) else { continue };
        let rest = rest.trim_start();
        if rest.starts_with(lint.name()) {
            return Some(rest[lint.name().len()..].trim_matches([' ', '—', '-', ':']).to_string());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Pass 1: lock order (core → shard ascending → poison)
// ---------------------------------------------------------------------------

/// The documented lock levels, in the only order they may be acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum LockLevel {
    /// The engine's core state mutex (`state.lock()` / `lock_state()`).
    Core,
    /// A shard health lock (`lock_for_series` / `lock_many` / `lock_all` /
    /// `lock_shard`). Ascending order *within* the level is delegated to the
    /// blessed multi-lock entry points, which is why a second shard
    /// acquisition in the same body is itself a finding.
    Shard,
    /// The poison-recovery counter, the terminal level.
    Poison,
}

impl LockLevel {
    fn name(self) -> &'static str {
        match self {
            LockLevel::Core => "core",
            LockLevel::Shard => "shard",
            LockLevel::Poison => "poison",
        }
    }
}

/// Enforces the `core → shard (ascending) → poison` protocol per function
/// body (the unit the runtime protocol is stated over: every critical
/// section in `crates/serve` opens and closes inside one function).
///
/// Two rules:
/// * acquisitions inside one body must be non-descending in [`LockLevel`];
/// * at most one shard-level acquisition per body — multi-shard work must go
///   through `lock_many`/`lock_all`, whose ascending iteration *is* the
///   within-level order proof, so a second shard call site in the same body
///   is an unordered double acquisition waiting to happen.
///
/// The analysis is intraprocedural and drop-agnostic, i.e. deliberately
/// conservative: a body that releases a shard guard before taking the core
/// lock is still flagged, because the protocol (ARCHITECTURE.md, "Sharded
/// state & the lock-free warm read path") bans that shape outright rather
/// than reasoning about guard lifetimes.
fn lock_order_pass(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for body in function_bodies(&lexed.tokens) {
        let toks = &lexed.tokens[body.clone()];
        let mut max_seen: Option<(LockLevel, u32)> = None;
        let mut shard_sites = 0usize;
        let mut i = 0;
        while i < toks.len() {
            let Some((level, line, width)) = acquisition_at(toks, i) else {
                i += 1;
                continue;
            };
            if let Some((max, max_line)) = max_seen {
                if level < max {
                    out.push(Finding {
                        lint: Lint::LockOrder,
                        file: file.to_string(),
                        line,
                        message: format!(
                            "{} lock acquired after {} lock (line {}); the protocol is \
                             core → shard (ascending) → poison",
                            level.name(),
                            max.name(),
                            max_line
                        ),
                    });
                }
            }
            if level == LockLevel::Shard {
                shard_sites += 1;
                if shard_sites == 2 {
                    out.push(Finding {
                        lint: Lint::LockOrder,
                        file: file.to_string(),
                        line,
                        message: "second shard-lock acquisition in one function body; \
                                  multi-shard work must go through lock_many/lock_all \
                                  (the ascending-order entry points)"
                            .to_string(),
                    });
                }
            }
            if max_seen.is_none_or(|(max, _)| level > max) {
                max_seen = Some((level, line));
            }
            i += width;
        }
    }
}

/// Matches a lock acquisition starting at `toks[i]`; returns its level, line
/// and how many tokens the matched pattern spans.
fn acquisition_at(toks: &[Token], i: usize) -> Option<(LockLevel, u32, usize)> {
    let ident = toks[i].ident()?;
    let line = toks[i].line;
    let called = |width: usize| toks.get(i + width).is_some_and(|t| t.is_punct('('));
    match ident {
        // `self.lock_state()` — the engine's poison-recovering core acquire.
        "lock_state" if called(1) => Some((LockLevel::Core, line, 2)),
        // `state.lock()` / `state.try_lock()` — the raw core mutex.
        "state"
            if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| t.is_ident("lock") || t.is_ident("try_lock"))
                && called(3) =>
        {
            Some((LockLevel::Core, line, 4))
        }
        "lock_for_series" | "lock_many" | "lock_all" | "lock_shard" if called(1) => {
            Some((LockLevel::Shard, line, 2))
        }
        // `bump_poison()` / `poison_recoveries()` / `poison_recoveries.lock()`
        // — the terminal counter, whichever door it is reached through.
        "bump_poison" if called(1) => Some((LockLevel::Poison, line, 2)),
        "poison_recoveries" if called(1) => Some((LockLevel::Poison, line, 2)),
        "poison_recoveries"
            if toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("lock"))
                && called(3) =>
        {
            Some((LockLevel::Poison, line, 4))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pass 2: SAFETY comments on every `unsafe`
// ---------------------------------------------------------------------------

/// Requires every `unsafe` block, `unsafe fn` and `unsafe impl` to carry an
/// adjacent justification:
///
/// * blocks and impls: a `// SAFETY:` (or `/* SAFETY: */`) comment ending on
///   the line directly above (attribute lines in between are allowed), or
///   trailing on the same line;
/// * `unsafe fn`: the same, or a `# Safety` section in the doc comment
///   (rustdoc's convention for unsafe functions).
///
/// Adjacency is strict — a blank line breaks the chain — so a stale comment
/// cannot drift away from the code it justifies.
fn safety_pass(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for (i, tok) in lexed.tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let kind = match lexed.tokens.get(i + 1) {
            Some(t) if t.is_ident("impl") => "unsafe impl",
            Some(t) if t.is_ident("fn") || t.is_ident("extern") => "unsafe fn",
            _ => "unsafe block",
        };
        let accepts_doc_safety = kind == "unsafe fn";
        if has_adjacent_safety_comment(lexed, tok.line, accepts_doc_safety) {
            continue;
        }
        out.push(Finding {
            lint: Lint::Safety,
            file: file.to_string(),
            line: tok.line,
            message: format!(
                "{kind} without an adjacent `// SAFETY:` comment{}",
                if accepts_doc_safety { " or `# Safety` doc section" } else { "" }
            ),
        });
    }
}

/// Walks upward from `line` through contiguous comment/attribute lines
/// looking for a SAFETY justification (see [`safety_pass`] for the rules).
fn has_adjacent_safety_comment(lexed: &Lexed, line: u32, accept_doc: bool) -> bool {
    let satisfied =
        |text: &str| text.contains("SAFETY:") || (accept_doc && text.contains("# Safety"));
    // Trailing comment on the same line.
    if lexed.comment_at(line).is_some_and(|c| c.line == line && satisfied(&c.text)) {
        return true;
    }
    let mut l = line - 1;
    while l >= 1 {
        if let Some(comment) = lexed.comment_at(l) {
            if satisfied(&comment.text) {
                return true;
            }
            if comment.line <= 1 {
                return false;
            }
            l = comment.line - 1;
            continue;
        }
        let text = lexed.lines.get(l as usize - 1).map(String::as_str).unwrap_or("").trim();
        // Attributes may sit between the justification and the item.
        if text.starts_with("#[") || text.starts_with("#![") {
            l -= 1;
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// Pass 3: atomic orderings in the publication protocol
// ---------------------------------------------------------------------------

/// Flags `Ordering::Relaxed` inside publication-protocol modules — files
/// that define an `AtomicPtr` cell, i.e. participate in the lock-free
/// publish/load handoff whose SeqCst total order the soundness argument in
/// `crates/serve/src/shard.rs` leans on. Stat counters elsewhere in the
/// engine may legitimately relax; the pointer-publication module may not.
///
/// One allowlisted exception: the pin-slot round-robin counter
/// (`NEXT_PIN_SLOT`) only load-balances threads over pin slots — any slot is
/// correct — so its ordering is immaterial by construction.
fn atomic_ordering_pass(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    if !toks.iter().any(|t| t.is_ident("AtomicPtr")) {
        return;
    }
    for i in 0..toks.len() {
        if !(toks[i].is_ident("Ordering")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("Relaxed")))
        {
            continue;
        }
        let line = toks[i].line;
        // Allowlist: the statement (same source line) names the round-robin
        // pin-slot counter.
        if toks.iter().any(|t| t.line == line && t.is_ident("NEXT_PIN_SLOT")) {
            continue;
        }
        out.push(Finding {
            lint: Lint::AtomicOrdering,
            file: file.to_string(),
            line,
            message: "Ordering::Relaxed in a publication-protocol module (defines AtomicPtr \
                      cells); the publish/load soundness argument requires SeqCst here"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Pass 4: panic surface of the serving hot path
// ---------------------------------------------------------------------------

/// Denies `unwrap()` / `expect(…)` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in non-test code: the serving hot path answers every
/// failure with a typed `ServeError`, so an unannotated panic site is
/// either a latent crash or an undocumented structural invariant. Sites
/// whose infallibility *is* structural carry `// mvi-allow: panic` with the
/// justification, which this pass records rather than hides.
fn panic_surface_pass(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    let test_spans = cfg_test_spans(toks);
    let in_test = |i: usize| test_spans.iter().any(|s| s.contains(&i));
    for i in 0..toks.len() {
        if in_test(i) {
            continue;
        }
        let t = &toks[i];
        let (what, line) = if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            (".unwrap()", toks[i + 1].line)
        } else if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            (".expect(…)", toks[i + 1].line)
        } else if toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && ["panic", "unreachable", "todo", "unimplemented"].iter().any(|m| t.is_ident(m))
        {
            // `name!` must be an invocation, not e.g. `x != y` (the `!` of
            // `!=` lexes separately but follows a value, not these idents).
            (t.ident().unwrap(), t.line)
        } else {
            continue;
        };
        let what = if what.starts_with('.') { what.to_string() } else { format!("{what}!") };
        out.push(Finding {
            lint: Lint::Panic,
            file: file.to_string(),
            line,
            message: format!(
                "{what} on the serving hot path; return a typed ServeError or annotate the \
                 structural invariant with `// mvi-allow: panic <why>`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Shared structure walkers
// ---------------------------------------------------------------------------

/// Token-index ranges of every function body (`fn name(…) { … }`), found by
/// brace matching at paren-depth zero after the `fn` keyword.
fn function_bodies(toks: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut bodies = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let mut j = i + 1;
        let mut paren_depth = 0i32;
        // Find the body `{` (skipping closure/bound parens in the
        // signature), or `;` for a bodyless trait method declaration.
        let open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('(') || t.is_punct('[') => paren_depth += 1,
                Some(t) if t.is_punct(')') || t.is_punct(']') => paren_depth -= 1,
                Some(t) if t.is_punct('{') && paren_depth == 0 => break Some(j),
                Some(t) if t.is_punct(';') && paren_depth == 0 => break None,
                Some(_) => {}
            }
            j += 1;
        };
        if let Some(open) = open {
            if let Some(close) = matching_brace(toks, open) {
                bodies.push(open + 1..close);
            }
        }
    }
    bodies
}

/// The token index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Token-index spans of test-only code: items introduced by `#[cfg(test)]`
/// or `#[test]` attributes (modules and functions alike — the span runs to
/// the end of the item's brace block).
fn cfg_test_spans(toks: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        let test_attr = toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && (toks.get(i + 2).is_some_and(|t| t.is_ident("test"))
                || (toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))));
        if !test_attr {
            continue;
        }
        // Scan past the attribute (and any further attributes) to the item,
        // then to its opening brace.
        let mut j = i + 2;
        let mut bracket_depth = 1i32; // we are inside `#[`
        while bracket_depth > 0 {
            match toks.get(j) {
                None => return spans,
                Some(t) if t.is_punct('[') => bracket_depth += 1,
                Some(t) if t.is_punct(']') => bracket_depth -= 1,
                Some(_) => {}
            }
            j += 1;
        }
        let mut paren_depth = 0i32;
        let open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('(') || t.is_punct('[') => paren_depth += 1,
                Some(t) if t.is_punct(')') || t.is_punct(']') => paren_depth -= 1,
                Some(t) if t.is_punct('{') && paren_depth == 0 => break Some(j),
                Some(t) if t.is_punct(';') && paren_depth == 0 => break None,
                Some(_) => {}
            }
            j += 1;
        };
        if let Some(open) = open {
            if let Some(close) = matching_brace(toks, open) {
                spans.push(i..close + 1);
            }
        }
    }
    spans
}
