//! Report aggregation and rendering: the human-readable `file:line` format
//! the terminal gets, and the hand-rolled `--json` form CI artifacts and
//! other tools consume (the crate is dependency-free, so serialization is
//! ~40 lines of escaping rather than serde).

use crate::{Finding, Suppression};
use std::fmt::Write as _;

/// The aggregated result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations across every scanned file.
    pub findings: Vec<Finding>,
    /// Annotation-suppressed sites, with their justifications.
    pub suppressed: Vec<Suppression>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run should fail the build (any unsuppressed finding).
    pub fn deny(&self) -> bool {
        !self.findings.is_empty()
    }

    /// The human-readable rendering: one `file:line: [lint] message` per
    /// finding, the honored suppressions, and a summary line.
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        }
        if !self.suppressed.is_empty() {
            let _ = writeln!(out, "suppressed ({}):", self.suppressed.len());
            for s in &self.suppressed {
                let justification = if s.justification.is_empty() {
                    "(no justification)"
                } else {
                    &s.justification
                };
                let _ = writeln!(
                    out,
                    "  {}:{}: [{}] mvi-allow — {}",
                    s.file, s.line, s.lint, justification
                );
            }
        }
        let _ = writeln!(
            out,
            "{} file(s) scanned, {} finding(s), {} suppression(s)",
            self.files_scanned,
            self.findings.len(),
            self.suppressed.len()
        );
        out
    }

    /// The `--json` rendering (stable field order, one object).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(f.lint.name()),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"suppressed\": [");
        for (i, s) in self.suppressed.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"justification\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(s.lint.name()),
                json_str(&s.file),
                s.line,
                json_str(&s.justification)
            );
        }
        if !self.suppressed.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"deny\": {}\n}}\n",
            self.files_scanned,
            self.deny()
        );
        out
    }
}

/// JSON string literal with the escapes the report can actually contain
/// (quotes, backslashes, control characters).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lint;

    #[test]
    fn json_escapes_and_structure() {
        let report = Report {
            findings: vec![Finding {
                lint: Lint::Panic,
                file: "a\\b.rs".into(),
                line: 7,
                message: "say \"no\"\nplease".into(),
            }],
            suppressed: vec![],
            files_scanned: 3,
        };
        let json = report.json();
        assert!(json.contains("\"lint\": \"panic\""));
        assert!(json.contains("\"file\": \"a\\\\b.rs\""));
        assert!(json.contains("\\\"no\\\"\\nplease"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"deny\": true"));
    }

    #[test]
    fn human_summary_counts() {
        let report = Report { findings: vec![], suppressed: vec![], files_scanned: 2 };
        assert!(!report.deny());
        assert!(report.human().contains("2 file(s) scanned, 0 finding(s)"));
    }
}
