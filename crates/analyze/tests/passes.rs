//! Fixture-driven contract tests: every pass must fire on its known-bad
//! fixture (at the expected sites) and stay quiet on its clean twin, and
//! the suppression/allowlist machinery must be visible in the report.

use mvi_analyze::{analyze_source, Lint, PassSet};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn run(name: &str, passes: PassSet) -> mvi_analyze::FileReport {
    analyze_source(name, &fixture(name), passes)
}

fn only(lint: Lint) -> PassSet {
    PassSet {
        lock_order: lint == Lint::LockOrder,
        safety: lint == Lint::Safety,
        atomic_ordering: lint == Lint::AtomicOrdering,
        panic: lint == Lint::Panic,
    }
}

#[test]
fn lock_order_rejects_shard_before_core() {
    let report = run("lock_order_bad.rs", only(Lint::LockOrder));
    assert_eq!(report.findings.len(), 3, "findings: {:#?}", report.findings);
    // The headline inversion: a shard lock acquired before the core lock.
    assert!(
        report.findings[0].message.contains("core lock acquired after shard lock"),
        "first finding must be the shard-before-core inversion: {:?}",
        report.findings[0]
    );
    assert!(report.findings[1].message.contains("poison"), "{:?}", report.findings[1]);
    assert!(
        report.findings[2].message.contains("lock_many"),
        "double direct shard acquisition must point at the blessed entry points: {:?}",
        report.findings[2]
    );
}

#[test]
fn lock_order_quiet_on_protocol_compliant_bodies() {
    let report = run("lock_order_clean.rs", only(Lint::LockOrder));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
    assert!(report.suppressed.is_empty());
}

#[test]
fn safety_flags_every_unjustified_unsafe() {
    let report = run("safety_bad.rs", only(Lint::Safety));
    assert_eq!(report.findings.len(), 4, "findings: {:#?}", report.findings);
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().filter(|m| m.starts_with("unsafe block")).count() == 2);
    assert!(messages.iter().any(|m| m.starts_with("unsafe fn")));
    assert!(messages.iter().any(|m| m.starts_with("unsafe impl")));
}

#[test]
fn safety_accepts_adjacent_comments_doc_sections_and_attribute_gaps() {
    let report = run("safety_clean.rs", only(Lint::Safety));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
}

#[test]
fn atomic_ordering_flags_relaxed_in_publication_module() {
    let report = run("atomic_bad.rs", only(Lint::AtomicOrdering));
    assert_eq!(report.findings.len(), 3, "findings: {:#?}", report.findings);
    assert!(report.findings.iter().all(|f| f.lint == Lint::AtomicOrdering));
}

#[test]
fn atomic_ordering_honors_pin_slot_allowlist_and_records_suppressions() {
    let report = run("atomic_clean.rs", only(Lint::AtomicOrdering));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
    // The NEXT_PIN_SLOT allowlist is structural (no annotation needed); the
    // stat counter relaxation is an explicit, recorded suppression.
    assert_eq!(report.suppressed.len(), 1, "suppressed: {:#?}", report.suppressed);
    assert!(report.suppressed[0].justification.contains("monotonic stat counter"));
}

#[test]
fn atomic_ordering_ignores_files_without_publication_cells() {
    // Relaxed stat counters outside AtomicPtr modules are out of scope.
    let source = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                  fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let report = analyze_source("stats.rs", source, only(Lint::AtomicOrdering));
    assert!(report.findings.is_empty());
}

#[test]
fn panic_surface_flags_each_panic_shape_outside_tests() {
    let report = run("panic_bad.rs", only(Lint::Panic));
    assert_eq!(report.findings.len(), 4, "findings: {:#?}", report.findings);
    let rendered = format!("{:?}", report.findings);
    for shape in [".unwrap()", ".expect(…)", "panic!", "unreachable!"] {
        assert!(rendered.contains(shape), "missing {shape} in {rendered}");
    }
}

#[test]
fn panic_surface_quiet_on_typed_errors_and_test_code() {
    let report = run("panic_clean.rs", only(Lint::Panic));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
    assert_eq!(report.suppressed.len(), 1, "suppressed: {:#?}", report.suppressed);
    assert_eq!(report.suppressed[0].lint, Lint::Panic);
    assert!(report.suppressed[0].justification.contains("non-empty input"));
}

#[test]
fn panic_surface_flags_net_codec_and_conn_shapes() {
    let report = run("panic_net_bad.rs", only(Lint::Panic));
    assert_eq!(report.findings.len(), 4, "findings: {:#?}", report.findings);
    let rendered = format!("{:?}", report.findings);
    // The naive-codec shapes: try_into().unwrap() on framing bytes, expect on
    // attacker input, lock().unwrap(), and an explicit accept-path panic.
    for shape in [".unwrap()", ".expect(…)", "panic!"] {
        assert!(rendered.contains(shape), "missing {shape} in {rendered}");
    }
}

#[test]
fn panic_surface_quiet_on_total_decoding_and_poison_tolerant_locks() {
    let report = run("panic_net_clean.rs", only(Lint::Panic));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
    assert!(report.suppressed.is_empty(), "suppressed: {:#?}", report.suppressed);
}

#[test]
fn panic_surface_flags_naive_registry_shapes() {
    let report = run("panic_registry_bad.rs", only(Lint::Panic));
    assert_eq!(report.findings.len(), 4, "findings: {:#?}", report.findings);
    let rendered = format!("{:?}", report.findings);
    // The naive-router shapes: lock().unwrap() on the tenant map, unwrap on a
    // client-controlled lookup, an explicit full-registry panic, and expect
    // on derived eviction state.
    for shape in [".unwrap()", ".expect(…)", "panic!"] {
        assert!(rendered.contains(shape), "missing {shape} in {rendered}");
    }
}

#[test]
fn panic_surface_quiet_on_typed_tenancy_errors() {
    let report = run("panic_registry_clean.rs", only(Lint::Panic));
    assert!(report.findings.is_empty(), "findings: {:#?}", report.findings);
    assert!(report.suppressed.is_empty(), "suppressed: {:#?}", report.suppressed);
}

#[test]
fn workspace_scoping_pins_panic_pass_to_serve_and_net_hot_paths() {
    for rel in [
        "crates/serve/src/engine.rs",
        "crates/serve/src/shard.rs",
        "crates/serve/src/batch.rs",
        "crates/serve/src/registry.rs",
        "crates/net/src/frame.rs",
        "crates/net/src/server.rs",
        "crates/net/src/client.rs",
    ] {
        assert!(mvi_analyze::workspace_passes(rel).panic, "{rel} must be panic-checked");
    }
    // The cold paths stay out of scope; safety runs everywhere.
    for rel in ["crates/net/src/lib.rs", "crates/serve/src/snapshot.rs", "src/lib.rs"] {
        let passes = mvi_analyze::workspace_passes(rel);
        assert!(!passes.panic, "{rel} must not be panic-checked");
        assert!(passes.safety, "{rel} must still be safety-checked");
    }
}

#[test]
fn clean_fixtures_pass_all_passes_at_once() {
    // Mirrors explicit-file CLI mode: every pass over every clean fixture.
    for name in [
        "lock_order_clean.rs",
        "safety_clean.rs",
        "atomic_clean.rs",
        "panic_clean.rs",
        "panic_net_clean.rs",
        "panic_registry_clean.rs",
    ] {
        let report = run(name, PassSet::all());
        assert!(report.findings.is_empty(), "{name} findings: {:#?}", report.findings);
    }
}

#[test]
fn bad_fixtures_deny_under_all_passes() {
    for name in [
        "lock_order_bad.rs",
        "safety_bad.rs",
        "atomic_bad.rs",
        "panic_bad.rs",
        "panic_net_bad.rs",
        "panic_registry_bad.rs",
    ] {
        let report = run(name, PassSet::all());
        assert!(!report.findings.is_empty(), "{name} must produce findings");
    }
}

#[test]
fn suppression_covers_same_line_and_line_above_only() {
    let same_line = "fn f(v: &[f64]) -> f64 { v.first().unwrap() } // mvi-allow: panic inline\n";
    let report = analyze_source("s.rs", same_line, only(Lint::Panic));
    assert!(report.findings.is_empty());
    assert_eq!(report.suppressed.len(), 1);

    let too_far = "fn f(v: &[f64]) -> f64 {\n    // mvi-allow: panic too far away\n\n    \
                   v.first().unwrap()\n}\n";
    let report = analyze_source("s.rs", too_far, only(Lint::Panic));
    assert_eq!(report.findings.len(), 1, "a gapped annotation must not suppress");
}

#[test]
fn suppression_is_per_lint() {
    // A panic allowance must not silence an atomic-ordering finding.
    let source = "use std::sync::atomic::{AtomicPtr, Ordering};\n\
                  fn load(p: &AtomicPtr<u8>) -> *mut u8 {\n\
                  \x20   // mvi-allow: panic wrong lint\n\
                  \x20   p.load(Ordering::Relaxed)\n\
                  }\n";
    let report = analyze_source("s.rs", source, only(Lint::AtomicOrdering));
    assert_eq!(report.findings.len(), 1, "findings: {:#?}", report.findings);
    assert!(report.suppressed.is_empty());
}
