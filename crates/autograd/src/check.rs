//! Finite-difference gradient verification.
//!
//! Every operator's backward closure in this crate — and every model forward pass in
//! the downstream crates — is validated against central finite differences. This is
//! the single most effective defence against silent training bugs in a from-scratch
//! autodiff engine.

use crate::graph::{Graph, VarId};
use crate::params::ParamStore;

/// Builds the loss for a given parameter store: the closure receives a fresh graph
/// and must return the `[1]`-shaped loss node.
pub type LossFn<'a> = dyn FnMut(&ParamStore, &mut Graph) -> VarId + 'a;

/// Verifies analytic gradients against central finite differences.
///
/// For every element of every parameter in `store`, perturbs by `±eps`, re-evaluates
/// the loss and compares `(f(w+eps) - f(w-eps)) / 2eps` against the backward pass.
/// Returns `Err` with a description of the first element whose relative error
/// exceeds `tol`.
///
/// The check is exhaustive, so keep stores small (tests use toy dimensions).
pub fn check_gradients(
    store: &mut ParamStore,
    f: &mut LossFn<'_>,
    eps: f64,
    tol: f64,
) -> Result<(), String> {
    // Analytic pass.
    let analytic: Vec<(crate::params::ParamId, mvi_tensor::Tensor)> = {
        let mut g = Graph::new();
        let loss = f(store, &mut g);
        let grads = g.backward(loss);
        let mut collected = std::collections::HashMap::new();
        for (pid, grad) in g.param_grads(&grads) {
            collected
                .entry(pid)
                .and_modify(|t: &mut mvi_tensor::Tensor| t.add_assign(&grad))
                .or_insert(grad);
        }
        store
            .ids()
            .into_iter()
            .map(|pid| {
                let g = collected
                    .remove(&pid)
                    .unwrap_or_else(|| mvi_tensor::Tensor::zeros(store.value(pid).shape()));
                (pid, g)
            })
            .collect()
    };

    for (pid, agrad) in analytic {
        let n = store.value(pid).len();
        for i in 0..n {
            let orig = store.value(pid).at(i);

            store.value_mut(pid).data_mut()[i] = orig + eps;
            let mut g = Graph::new();
            let lp = f(store, &mut g);
            let fplus = g.value(lp).at(0);

            store.value_mut(pid).data_mut()[i] = orig - eps;
            let mut g = Graph::new();
            let lm = f(store, &mut g);
            let fminus = g.value(lm).at(0);

            store.value_mut(pid).data_mut()[i] = orig;

            let numeric = (fplus - fminus) / (2.0 * eps);
            let exact = agrad.at(i);
            let denom = numeric.abs().max(exact.abs()).max(1.0);
            let rel = (numeric - exact).abs() / denom;
            if rel > tol {
                return Err(format!(
                    "gradient mismatch for {}[{}]: analytic {:.6e}, numeric {:.6e} (rel {:.3e})",
                    store.name(pid),
                    i,
                    exact,
                    numeric,
                    rel
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Embedding, GruCell, Linear};
    use mvi_tensor::{Mask, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rngs(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn grad_check_linear_relu_mse() {
        let mut store = ParamStore::new();
        let mut rng = rngs(10);
        let l1 = Linear::new(&mut store, &mut rng, "l1", 3, 4);
        let l2 = Linear::new(&mut store, &mut rng, "l2", 4, 1);
        let x = Tensor::from_vec(vec![2, 3], vec![0.3, -0.5, 0.8, 1.0, 0.2, -0.4]);
        let target = Tensor::from_vec(vec![2, 1], vec![0.7, -0.3]);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let xv = g.constant(x.clone());
                let h = l1.forward(g, store, xv);
                let h = g.relu(h);
                let y = l2.forward(g, store, h);
                g.mse(y, &target)
            },
            1e-5,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_sigmoid_tanh_exp_chain() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_slice(&[0.4, -0.2, 0.9]));
        check_gradients(
            &mut store,
            &mut |store, g| {
                let wv = g.param(store, w);
                let s = g.sigmoid(wv);
                let t = g.tanh(s);
                let e = g.exp(t);
                let sq = g.square(e);
                g.mean(sq)
            },
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_div_ln_sqrt() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_slice(&[1.2, 0.8]));
        let b = store.add("b", Tensor::from_slice(&[2.0, 3.0]));
        check_gradients(
            &mut store,
            &mut |store, g| {
                let av = g.param(store, a);
                let bv = g.param(store, b);
                let q = g.div(av, bv);
                let l = g.ln_eps(q, 1e-9);
                let r = g.sqrt_eps(l, 2.0);
                g.sum(r)
            },
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_masked_softmax_attention() {
        // Miniature attention: scores from parameters, masked softmax, weighted sum.
        let mut store = ParamStore::new();
        let mut rng = rngs(11);
        let q = Linear::new_no_bias(&mut store, &mut rng, "q", 2, 2);
        let k = Linear::new_no_bias(&mut store, &mut rng, "k", 2, 2);
        let x = Tensor::from_vec(vec![3, 2], vec![0.5, 0.1, -0.3, 0.9, 0.2, -0.8]);
        let values = Tensor::from_vec(vec![3, 2], vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5]);
        let mut mask = Mask::trues(&[3, 3]);
        mask.set(&[0, 1], false);
        mask.set(&[2, 0], false);
        let target = Tensor::from_vec(vec![3, 2], vec![0.2, 0.4, 0.1, 0.3, 0.6, 0.2]);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let xv = g.constant(x.clone());
                let qm = q.forward(g, store, xv);
                let km = k.forward(g, store, xv);
                let kt = g.transpose(km);
                let scores = g.matmul(qm, kt);
                let attn = g.masked_softmax_rows(scores, &mask);
                let vv = g.constant(values.clone());
                let out = g.matmul(attn, vv);
                g.mse(out, &target)
            },
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_embedding_kernel_weights() {
        // RBF-kernel weighted mean as in the kernel-regression module (§4.2).
        let mut store = ParamStore::new();
        let mut rng = rngs(12);
        let emb = Embedding::new(&mut store, &mut rng, "emb", 4, 3);
        let sib_vals = Tensor::from_slice(&[0.7, -0.2, 0.4]);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let target_e = emb.lookup(g, store, &[0]); // [1,3]
                let target_vec = g.reshape(target_e, &[3]);
                let sibs = emb.lookup(g, store, &[1, 2, 3]); // [3,3]
                let diff = g.sub_rowvec(sibs, target_vec);
                let sq = g.square(diff);
                let dists = g.sum_axis1(sq);
                let neg = g.scale(dists, -1.0);
                let sim = g.exp(neg);
                let vals = g.constant(sib_vals.clone());
                let num = g.dot(sim, vals);
                let den = g.sum(sim);
                let den = g.add_scalar(den, 1e-9);
                let u = g.div(num, den);
                g.mse(u, &Tensor::scalar(0.5))
            },
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_shift_concat_row_ops() {
        let mut store = ParamStore::new();
        let w = store
            .add("w", Tensor::from_vec(vec![4, 2], vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]));
        check_gradients(
            &mut store,
            &mut |store, g| {
                let wv = g.param(store, w);
                let prev = g.shift_rows(wv, 1);
                let next = g.shift_rows(wv, -1);
                let cat = g.concat_cols(&[prev, next]);
                let r = g.row(cat, 2);
                let e = g.index1d(r, 1);
                let sq = g.square(e);
                let s = g.sum(cat);
                let total = g.add(sq, s);
                g.mean(total)
            },
            1e-6,
            1e-6,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_gru_cell() {
        let mut store = ParamStore::new();
        let mut rng = rngs(13);
        let cell = GruCell::new(&mut store, &mut rng, "gru", 2, 3);
        let x1 = Tensor::from_slice(&[0.5, -0.1]);
        let x2 = Tensor::from_slice(&[-0.7, 0.3]);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let h0 = g.constant(Tensor::zeros(&[3]));
                let x1v = g.constant(x1.clone());
                let x2v = g.constant(x2.clone());
                let h1 = cell.step(g, store, x1v, h0);
                let h2 = cell.step(g, store, x2v, h1);
                let sq = g.square(h2);
                g.mean(sq)
            },
            1e-6,
            1e-5,
        )
        .unwrap();
    }

    #[test]
    fn grad_check_mul_colvec_and_transpose() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::from_vec(vec![2, 3], vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]));
        let v = store.add("v", Tensor::from_slice(&[1.5, -0.5]));
        check_gradients(
            &mut store,
            &mut |store, g| {
                let av = g.param(store, a);
                let vv = g.param(store, v);
                let scaled = g.mul_colvec(av, vv);
                let t = g.transpose(scaled);
                let sq = g.square(t);
                g.sum(sq)
            },
            1e-6,
            1e-6,
        )
        .unwrap();
    }
}
