//! The forward-evaluation backends: the [`Evaluator`] trait and the tape-free
//! value-only [`Eval`] backend.
//!
//! ## The train/infer execution split
//!
//! Training and serving want the same forward pass executed two very
//! different ways:
//!
//! * **Training** needs gradients, so it records a differentiation tape: one
//!   [`crate::Graph`] node per op, each carrying its parents and a boxed
//!   backward closure, plus a fresh heap tensor per intermediate so the
//!   reverse pass can read every value later.
//! * **Serving** needs *values only*. Keeping the tape machinery on that path
//!   means paying — per op, per window, per query — for a node push, a boxed
//!   closure allocation and a heap tensor that nothing will ever read back.
//!
//! The [`Evaluator`] trait abstracts exactly the operator subset the forward
//! pass uses, so model code is written once and executes on either backend:
//! [`crate::Graph`] implements it by recording the tape as before, while
//! [`Eval`] implements it by computing each op **eagerly into recycled
//! scratch buffers** — no nodes, no closures, and (after the first pass has
//! sized the slot pool) **no heap allocation at all**. Parameters are bound
//! by sharing the store's `Arc` (a refcount bump), never by cloning the
//! tensor.
//!
//! ## Bitwise equivalence contract
//!
//! `Eval` is not "approximately" the tape: every op performs the same
//! floating-point operations in the same order as the corresponding
//! [`crate::Graph`] op (elementwise maps use identical expressions,
//! reductions identical iteration order, matmuls the identical
//! `mvi_kernels` GEMMs, and order-sensitive ops like the masked softmax are
//! literally the same function — see \[`crate::vops`\]). Inference through
//! `Eval` is therefore **bitwise identical** to inference through the tape,
//! which is what lets the serving engine switch backends without touching
//! its 1e-9 consistency and determinism guarantees.

use crate::params::{ParamId, ParamStore};
use crate::vops;
use mvi_tensor::{Mask, Tensor};
use std::sync::Arc;

/// Handle to a value held by an [`Eval`] backend (an index into its slot
/// list, valid until the next [`Eval::recycle`]).
pub type EvalVar = usize;

/// The forward-pass operator set, implemented by both the differentiation
/// tape ([`crate::Graph`], which records ops for a later backward pass) and
/// the value-only evaluator ([`Eval`], which computes eagerly into recycled
/// buffers). Model forward code is generic over this trait; training
/// instantiates it with the tape, serving with the evaluator, and both
/// produce bitwise-identical values (see the module docs).
pub trait Evaluator {
    /// Handle to a value produced by this backend.
    type Var: Copy + core::fmt::Debug;

    /// Binds a parameter from the store by shared reference (no data copy).
    fn param(&mut self, store: &ParamStore, id: ParamId) -> Self::Var;
    /// A leaf of the given shape, zero-initialized and then populated by
    /// `fill` — the allocation-free way to feed per-pass inputs (window
    /// values, positional encodings).
    fn input(&mut self, shape: &[usize], fill: impl FnOnce(&mut Tensor)) -> Self::Var;
    /// `[1]`-shaped scalar leaf.
    fn scalar(&mut self, v: f64) -> Self::Var;
    /// Rank-1 leaf copied from a slice.
    fn constant_slice(&mut self, v: &[f64]) -> Self::Var;

    /// Value of a variable.
    fn value(&self, v: Self::Var) -> &Tensor;
    /// Shape of a variable's value.
    fn shape(&self, v: Self::Var) -> &[usize];

    /// Elementwise `a + b` (same shape).
    fn add(&mut self, a: Self::Var, b: Self::Var) -> Self::Var;
    /// Elementwise `a / b` (same shape); caller keeps `b` away from zero.
    fn div(&mut self, a: Self::Var, b: Self::Var) -> Self::Var;
    /// `a * c` for a scalar `c`.
    fn scale(&mut self, a: Self::Var, c: f64) -> Self::Var;
    /// `a + c` for a scalar `c`.
    fn add_scalar(&mut self, a: Self::Var, c: f64) -> Self::Var;
    /// Broadcast add of a row vector: `a[m,n] + v[n]`.
    fn add_rowvec(&mut self, a: Self::Var, v: Self::Var) -> Self::Var;
    /// Broadcast subtract of a row vector: `a[m,n] - v[n]`.
    fn sub_rowvec(&mut self, a: Self::Var, v: Self::Var) -> Self::Var;
    /// Matrix product `a[m,k] · b[k,n]`.
    fn matmul(&mut self, a: Self::Var, b: Self::Var) -> Self::Var;
    /// Transpose of a rank-2 value.
    fn transpose(&mut self, a: Self::Var) -> Self::Var;
    /// Dot product of two rank-1 values, `[1]`-shaped.
    fn dot(&mut self, a: Self::Var, b: Self::Var) -> Self::Var;
    /// Rectified linear unit.
    fn relu(&mut self, a: Self::Var) -> Self::Var;
    /// Elementwise exponential.
    fn exp(&mut self, a: Self::Var) -> Self::Var;
    /// Elementwise square.
    fn square(&mut self, a: Self::Var) -> Self::Var;
    /// Sum of all elements, `[1]`-shaped.
    fn sum(&mut self, a: Self::Var) -> Self::Var;
    /// Row sums of `a[m,n]`, yielding `[m]`.
    fn sum_axis1(&mut self, a: Self::Var) -> Self::Var;
    /// Concatenates rank-1 values into one rank-1 value.
    fn concat1d(&mut self, parts: &[Self::Var]) -> Self::Var;
    /// Concatenates rank-2 values with equal row counts along the columns.
    fn concat_cols(&mut self, parts: &[Self::Var]) -> Self::Var;
    /// Row `i` of a rank-2 value, as a rank-1 value.
    fn row(&mut self, a: Self::Var, i: usize) -> Self::Var;
    /// Gathers rows of `table[v,d]` by index (embedding lookup).
    fn gather_rows(&mut self, table: Self::Var, idx: &[usize]) -> Self::Var;
    /// Shifts rows by `offset` (positive = down), zero-filling.
    fn shift_rows(&mut self, a: Self::Var, offset: i64) -> Self::Var;
    /// Reinterprets the value under a new shape (same volume).
    fn reshape(&mut self, a: Self::Var, new_shape: &[usize]) -> Self::Var;
    /// Row-wise softmax with masked entries excluded (weight exactly zero;
    /// fully-masked rows stay all-zero).
    fn masked_softmax_rows(&mut self, scores: Self::Var, mask: &Mask) -> Self::Var;

    // ------------------------------------------------------------------
    // Composite ops. The default bodies ARE the canonical op sequences (the
    // tape records them unchanged); a backend may override with a fused
    // computation only if it reproduces the default's per-element operation
    // order exactly — bitwise, not approximately. `Eval` does so for the two
    // chains that dominate the per-position serving cost.
    // ------------------------------------------------------------------

    /// A dense layer applied to a `[m, in]` value: `x·W + b`, yielding
    /// `[m, out]`.
    fn affine(
        &mut self,
        store: &ParamStore,
        w: ParamId,
        b: Option<ParamId>,
        x: Self::Var,
    ) -> Self::Var {
        let wv = self.param(store, w);
        let y = self.matmul(x, wv);
        match b {
            Some(bid) => {
                let bv = self.param(store, bid);
                self.add_rowvec(y, bv)
            }
            None => y,
        }
    }

    /// A dense layer applied to a rank-1 `[in]` value: `x·W + b`, yielding
    /// `[out]` (the per-position output head, Eq 6).
    fn affine_vec(
        &mut self,
        store: &ParamStore,
        w: ParamId,
        b: Option<ParamId>,
        x: Self::Var,
    ) -> Self::Var {
        let in_dim = self.shape(x)[0];
        let xm = self.reshape(x, &[1, in_dim]);
        let wv = self.param(store, w);
        let y = self.matmul(xm, wv);
        let y = match b {
            Some(bid) => {
                let bv = self.param(store, bid);
                self.add_rowvec(y, bv)
            }
            None => y,
        };
        let out_dim = self.shape(y)[1];
        self.reshape(y, &[out_dim])
    }

    /// RBF kernel similarities of each row of `sib[m,d]` against `own[d]`
    /// (Eq 17): `exp(-γ‖sib_r − own‖²)`, yielding `[m]`.
    fn rbf_similarities(&mut self, sib: Self::Var, own: Self::Var, gamma: f64) -> Self::Var {
        let diff = self.sub_rowvec(sib, own);
        let sq = self.square(diff);
        let dists = self.sum_axis1(sq);
        let scaled = self.scale(dists, -gamma);
        self.exp(scaled)
    }
}

/// A slot either owns a recycled scratch tensor (by pool index) or shares a
/// parameter tensor with the store (refcount bump, zero copy).
enum Slot {
    Pooled(usize),
    Shared(Arc<Tensor>),
}

/// The tape-free, value-only forward backend (see the module docs).
///
/// Internally an arena of recycled tensor slots: [`Eval::recycle`] resets the
/// cursor without freeing, so a long-lived `Eval` (e.g. inside an inference
/// scratch) reaches a steady state where a full window forward pass performs
/// **zero heap allocations** — every intermediate lands in a pre-sized
/// buffer, and every parameter is an `Arc` share of the frozen store.
#[derive(Default)]
pub struct Eval {
    slots: Vec<Slot>,
    pool: Vec<Tensor>,
    pool_used: usize,
}

/// Stack-allocated shape copy (forward values are rank ≤ 2; 4 is headroom),
/// so computing an output shape never borrows the backend.
#[derive(Clone, Copy)]
struct ShapeBuf {
    d: [usize; 4],
    n: usize,
}

impl ShapeBuf {
    fn of(t: &Tensor) -> Self {
        let s = t.shape();
        assert!(s.len() <= 4, "rank {} value in the forward evaluator", s.len());
        let mut d = [0usize; 4];
        d[..s.len()].copy_from_slice(s);
        Self { d, n: s.len() }
    }

    fn as_slice(&self) -> &[usize] {
        &self.d[..self.n]
    }
}

/// Resolves a slot against the pool prefix that precedes the output slot.
/// Inputs always live strictly before the output (slots are written once, in
/// issue order), so splitting the pool at the output index is safe.
fn resolve<'a>(slots: &'a [Slot], pool_head: &'a [Tensor], v: EvalVar) -> &'a Tensor {
    match &slots[v] {
        Slot::Pooled(i) => &pool_head[*i],
        Slot::Shared(t) => t,
    }
}

impl Eval {
    /// Creates an empty evaluator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of values produced since the last recycle.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no values have been produced since the last recycle.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Ends the current pass: invalidates all issued [`EvalVar`]s and rewinds
    /// the slot arena for reuse. Buffer capacity (and therefore the zero
    /// allocation steady state) is retained.
    pub fn recycle(&mut self) {
        self.slots.clear();
        self.pool_used = 0;
    }

    /// Claims the next pooled slot at `shape`; `zeroed` controls whether the
    /// recycled buffer is cleared (required by accumulating kernels and
    /// partial writers) or left for full overwrite. Returns the new var and
    /// its pool index.
    fn out_slot(&mut self, shape: &[usize], zeroed: bool) -> (EvalVar, usize) {
        let p = self.pool_used;
        if p == self.pool.len() {
            self.pool.push(Tensor::zeros(shape));
        } else if zeroed {
            self.pool[p].reset_zeroed(shape);
        } else {
            self.pool[p].reset_for_overwrite(shape);
        }
        self.pool_used = p + 1;
        self.slots.push(Slot::Pooled(p));
        (self.slots.len() - 1, p)
    }

    /// `out = f(value(a))` into a fresh slot of `shape`.
    fn unary(
        &mut self,
        a: EvalVar,
        shape: &[usize],
        zeroed: bool,
        f: impl FnOnce(&Tensor, &mut Tensor),
    ) -> EvalVar {
        let (var, p) = self.out_slot(shape, zeroed);
        let (head, tail) = self.pool.split_at_mut(p);
        f(resolve(&self.slots, head, a), &mut tail[0]);
        var
    }

    /// `out = f(value(a), value(b))` into a fresh slot of `shape`.
    fn binary(
        &mut self,
        a: EvalVar,
        b: EvalVar,
        shape: &[usize],
        zeroed: bool,
        f: impl FnOnce(&Tensor, &Tensor, &mut Tensor),
    ) -> EvalVar {
        let (var, p) = self.out_slot(shape, zeroed);
        let (head, tail) = self.pool.split_at_mut(p);
        f(resolve(&self.slots, head, a), resolve(&self.slots, head, b), &mut tail[0]);
        var
    }

    /// Elementwise map with the same per-element expression as the tape op.
    fn map_op(&mut self, a: EvalVar, f: impl Fn(f64) -> f64) -> EvalVar {
        let shape = ShapeBuf::of(self.value_of(a));
        self.unary(a, shape.as_slice(), false, |av, out| {
            for (o, &x) in out.data_mut().iter_mut().zip(av.data()) {
                *o = f(x);
            }
        })
    }

    /// Elementwise zip with the same per-element expression as the tape op.
    fn zip_op(&mut self, a: EvalVar, b: EvalVar, f: impl Fn(f64, f64) -> f64) -> EvalVar {
        let shape = ShapeBuf::of(self.value_of(a));
        assert_eq!(
            shape.as_slice(),
            self.value_of(b).shape(),
            "elementwise shape mismatch in the evaluator"
        );
        self.binary(a, b, shape.as_slice(), false, |av, bv, out| {
            for ((o, &x), &y) in out.data_mut().iter_mut().zip(av.data()).zip(bv.data()) {
                *o = f(x, y);
            }
        })
    }

    #[inline]
    fn value_of(&self, v: EvalVar) -> &Tensor {
        resolve(&self.slots, &self.pool, v)
    }
}

impl Evaluator for Eval {
    type Var = EvalVar;

    fn param(&mut self, store: &ParamStore, id: ParamId) -> EvalVar {
        debug_assert!(
            store.value(id).all_finite(),
            "non-finite parameter `{}` entered the evaluator",
            store.name(id)
        );
        self.slots.push(Slot::Shared(Arc::clone(store.value_arc(id))));
        self.slots.len() - 1
    }

    fn input(&mut self, shape: &[usize], fill: impl FnOnce(&mut Tensor)) -> EvalVar {
        let (var, p) = self.out_slot(shape, true);
        fill(&mut self.pool[p]);
        var
    }

    fn scalar(&mut self, v: f64) -> EvalVar {
        let (var, p) = self.out_slot(&[1], false);
        self.pool[p].data_mut()[0] = v;
        var
    }

    fn constant_slice(&mut self, v: &[f64]) -> EvalVar {
        let (var, p) = self.out_slot(&[v.len()], false);
        self.pool[p].data_mut().copy_from_slice(v);
        var
    }

    fn value(&self, v: EvalVar) -> &Tensor {
        self.value_of(v)
    }

    fn shape(&self, v: EvalVar) -> &[usize] {
        self.value_of(v).shape()
    }

    fn add(&mut self, a: EvalVar, b: EvalVar) -> EvalVar {
        self.zip_op(a, b, |x, y| x + y)
    }

    fn div(&mut self, a: EvalVar, b: EvalVar) -> EvalVar {
        self.zip_op(a, b, |x, y| x / y)
    }

    fn scale(&mut self, a: EvalVar, c: f64) -> EvalVar {
        self.map_op(a, |x| x * c)
    }

    fn add_scalar(&mut self, a: EvalVar, c: f64) -> EvalVar {
        self.map_op(a, |x| x + c)
    }

    fn add_rowvec(&mut self, a: EvalVar, v: EvalVar) -> EvalVar {
        let shape = ShapeBuf::of(self.value_of(a));
        let n = shape.as_slice()[1];
        assert_eq!(self.value_of(v).shape(), &[n], "add_rowvec dim mismatch");
        self.binary(a, v, shape.as_slice(), false, |av, vv, out| {
            let vd = vv.data();
            for (orow, arow) in out.data_mut().chunks_exact_mut(n).zip(av.data().chunks_exact(n)) {
                for ((o, &x), &b) in orow.iter_mut().zip(arow).zip(vd) {
                    *o = x + b;
                }
            }
        })
    }

    fn sub_rowvec(&mut self, a: EvalVar, v: EvalVar) -> EvalVar {
        // The tape lowers this to `a + neg(v)`; `x + (-b)` is bitwise `x - b`
        // under IEEE 754, so one fused pass preserves the equivalence.
        let shape = ShapeBuf::of(self.value_of(a));
        let n = shape.as_slice()[1];
        assert_eq!(self.value_of(v).shape(), &[n], "sub_rowvec dim mismatch");
        self.binary(a, v, shape.as_slice(), false, |av, vv, out| {
            let vd = vv.data();
            for (orow, arow) in out.data_mut().chunks_exact_mut(n).zip(av.data().chunks_exact(n)) {
                for ((o, &x), &b) in orow.iter_mut().zip(arow).zip(vd) {
                    *o = x + (-b);
                }
            }
        })
    }

    fn matmul(&mut self, a: EvalVar, b: EvalVar) -> EvalVar {
        let (m, k) = {
            let av = self.value_of(a);
            (av.rows(), av.cols())
        };
        let (k2, n) = {
            let bv = self.value_of(b);
            (bv.rows(), bv.cols())
        };
        assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
        // Same GEMM kernel as `mvi_linalg::ops::matmul` (zeroed accumulator).
        self.binary(a, b, &[m, n], true, |av, bv, out| {
            mvi_kernels::matmul(m, k, n, av.data(), bv.data(), out.data_mut());
        })
    }

    fn transpose(&mut self, a: EvalVar) -> EvalVar {
        let (m, n) = {
            let av = self.value_of(a);
            (av.rows(), av.cols())
        };
        self.unary(a, &[n, m], false, |av, out| {
            for i in 0..m {
                for (j, &x) in av.row(i).iter().enumerate() {
                    out.set_m(j, i, x);
                }
            }
        })
    }

    fn dot(&mut self, a: EvalVar, b: EvalVar) -> EvalVar {
        assert_eq!(self.value_of(a).shape(), self.value_of(b).shape(), "dot shape");
        self.binary(a, b, &[1], false, |av, bv, out| {
            out.data_mut()[0] = mvi_linalg::ops::dot(av.data(), bv.data());
        })
    }

    fn relu(&mut self, a: EvalVar) -> EvalVar {
        self.map_op(a, |x| x.max(0.0))
    }

    fn exp(&mut self, a: EvalVar) -> EvalVar {
        self.map_op(a, f64::exp)
    }

    fn square(&mut self, a: EvalVar) -> EvalVar {
        self.map_op(a, |x| x * x)
    }

    fn sum(&mut self, a: EvalVar) -> EvalVar {
        self.unary(a, &[1], false, |av, out| {
            // Same sequential fold as `Tensor::sum` on the tape path.
            out.data_mut()[0] = av.data().iter().sum();
        })
    }

    fn sum_axis1(&mut self, a: EvalVar) -> EvalVar {
        let (m, n) = {
            let av = self.value_of(a);
            (av.rows(), av.cols())
        };
        self.unary(a, &[m], false, |av, out| {
            for (o, row) in out.data_mut().iter_mut().zip(av.data().chunks_exact(n)) {
                *o = row.iter().sum();
            }
        })
    }

    fn concat1d(&mut self, parts: &[EvalVar]) -> EvalVar {
        assert!(!parts.is_empty(), "concat1d of nothing");
        let mut total = 0usize;
        for &part in parts {
            let v = self.value_of(part);
            assert_eq!(v.ndim(), 1, "concat1d needs rank-1 parts");
            total += v.len();
        }
        let (var, p) = self.out_slot(&[total], false);
        let (head, tail) = self.pool.split_at_mut(p);
        let out = tail[0].data_mut();
        let mut off = 0;
        for &part in parts {
            let v = resolve(&self.slots, head, part);
            out[off..off + v.len()].copy_from_slice(v.data());
            off += v.len();
        }
        var
    }

    fn concat_cols(&mut self, parts: &[EvalVar]) -> EvalVar {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let m = self.value_of(parts[0]).rows();
        let mut total = 0usize;
        for &part in parts {
            let v = self.value_of(part);
            assert_eq!(v.rows(), m, "concat_cols row mismatch");
            total += v.cols();
        }
        let (var, p) = self.out_slot(&[m, total], false);
        let (head, tail) = self.pool.split_at_mut(p);
        let out = &mut tail[0];
        for i in 0..m {
            let orow = out.row_mut(i);
            let mut off = 0;
            for &part in parts {
                let v = resolve(&self.slots, head, part);
                let w = v.cols();
                orow[off..off + w].copy_from_slice(v.row(i));
                off += w;
            }
        }
        var
    }

    fn row(&mut self, a: EvalVar, i: usize) -> EvalVar {
        let (m, n) = {
            let av = self.value_of(a);
            (av.rows(), av.cols())
        };
        assert!(i < m, "row {i} out of {m}");
        self.unary(a, &[n], false, |av, out| {
            out.data_mut().copy_from_slice(av.row(i));
        })
    }

    fn gather_rows(&mut self, table: EvalVar, idx: &[usize]) -> EvalVar {
        let (vocab, d) = {
            let tv = self.value_of(table);
            (tv.rows(), tv.cols())
        };
        self.unary(table, &[idx.len(), d], false, |tv, out| {
            for (r, &i) in idx.iter().enumerate() {
                assert!(i < vocab, "gather index {i} out of vocabulary {vocab}");
                out.row_mut(r).copy_from_slice(tv.row(i));
            }
        })
    }

    fn shift_rows(&mut self, a: EvalVar, offset: i64) -> EvalVar {
        let shape = ShapeBuf::of(self.value_of(a));
        self.unary(a, shape.as_slice(), true, |av, out| {
            crate::vops::shift_rows_into(av, offset, out);
        })
    }

    fn reshape(&mut self, a: EvalVar, new_shape: &[usize]) -> EvalVar {
        debug_assert_eq!(
            self.value_of(a).len(),
            new_shape.iter().product::<usize>(),
            "reshape changes volume"
        );
        self.unary(a, new_shape, false, |av, out| {
            out.data_mut().copy_from_slice(av.data());
        })
    }

    fn masked_softmax_rows(&mut self, scores: EvalVar, mask: &Mask) -> EvalVar {
        let shape = ShapeBuf::of(self.value_of(scores));
        self.unary(scores, shape.as_slice(), true, |sv, out| {
            vops::masked_softmax_rows_into(sv, mask, out);
        })
    }

    /// Fused dense layer. Bitwise contract with the default body: the GEMM
    /// runs the identical kernel into the identical zeroed accumulator; the
    /// bias is then added in place, element for element the same addition the
    /// `add_rowvec` op would have performed into a fresh buffer.
    fn affine(
        &mut self,
        store: &ParamStore,
        w: ParamId,
        b: Option<ParamId>,
        x: EvalVar,
    ) -> EvalVar {
        let wt = Arc::clone(store.value_arc(w));
        let (k2, n) = (wt.rows(), wt.cols());
        let (m, k) = {
            let xv = self.value_of(x);
            (xv.rows(), xv.cols())
        };
        assert_eq!(k, k2, "affine inner dims: {k} vs {k2}");
        let bias = b.map(|bid| Arc::clone(store.value_arc(bid)));
        self.unary(x, &[m, n], true, |xv, out| {
            mvi_kernels::matmul(m, k, n, xv.data(), wt.data(), out.data_mut());
            if let Some(bv) = &bias {
                let bd = bv.data();
                for row in out.data_mut().chunks_exact_mut(n) {
                    for (o, &bb) in row.iter_mut().zip(bd) {
                        *o += bb;
                    }
                }
            }
        })
    }

    /// Fused output head. Bitwise contract with the default body: the `m = 1`
    /// GEMM accumulates each output element over `k` ascending from a zeroed
    /// accumulator (the kernel's single-row tail path), then the bias row is
    /// added — exactly `(Σ_k x_k·w_{k,j}) + b_j` per element, reproduced here
    /// in the same order, with the parameters read straight from the store
    /// (no slot traffic).
    fn affine_vec(
        &mut self,
        store: &ParamStore,
        w: ParamId,
        b: Option<ParamId>,
        x: EvalVar,
    ) -> EvalVar {
        let wt = Arc::clone(store.value_arc(w));
        let (in_dim, out_dim) = (wt.rows(), wt.cols());
        assert_eq!(self.value_of(x).shape(), &[in_dim], "affine_vec dim mismatch");
        let bias = b.map(|bid| Arc::clone(store.value_arc(bid)));
        self.unary(x, &[out_dim], false, |xv, out| {
            let xd = xv.data();
            let wd = wt.data();
            for (j, o) in out.data_mut().iter_mut().enumerate() {
                let mut acc = 0.0;
                for (kk, &xk) in xd.iter().enumerate() {
                    acc += xk * wd[kk * out_dim + j];
                }
                *o = match &bias {
                    Some(bv) => acc + bv.data()[j],
                    None => acc,
                };
            }
        })
    }

    /// Fused RBF similarity. Bitwise contract with the default body:
    /// per row, `d_j = sib_{r,j} + (-own_j)` squared and summed in ascending
    /// `j` from a zero accumulator (the `sub_rowvec → square → sum_axis1`
    /// chain), then `(acc · (-γ)).exp()` — identical expressions, identical
    /// order, one pass.
    fn rbf_similarities(&mut self, sib: EvalVar, own: EvalVar, gamma: f64) -> EvalVar {
        let (m, d) = {
            let sv = self.value_of(sib);
            (sv.rows(), sv.cols())
        };
        assert_eq!(self.value_of(own).shape(), &[d], "rbf_similarities dim mismatch");
        let c = -gamma;
        self.binary(sib, own, &[m], false, |sv, ov, out| {
            let od = ov.data();
            for (row, o) in sv.data().chunks_exact(d).zip(out.data_mut()) {
                let mut acc = 0.0;
                for (&x, &b) in row.iter().zip(od) {
                    let diff = x + (-b);
                    acc += diff * diff;
                }
                *o = (acc * c).exp();
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::nn::{glorot, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(shape: &[usize], seed: u64) -> Tensor {
        Tensor::from_fn(shape, |idx| {
            let h = idx
                .iter()
                .fold(seed.wrapping_mul(0x9E37_79B9), |a, &i| {
                    a.wrapping_mul(31).wrapping_add(i as u64 + 1)
                })
                .wrapping_mul(0xD1B5_4A32_D192_ED03);
            // The 0.123 offset keeps every value away from exactly zero, so
            // the division case stays finite on the tape.
            ((h >> 32) % 1000) as f64 / 250.0 - 2.0 + 0.123
        })
    }

    /// Runs the same op sequence on both backends and asserts bitwise-equal
    /// results — the per-op equivalence the big property tests build on.
    fn assert_same<GF, EF>(mut gf: GF, mut ef: EF)
    where
        GF: FnMut(&mut Graph) -> crate::VarId,
        EF: FnMut(&mut Eval) -> EvalVar,
    {
        let mut g = Graph::new();
        let gv = gf(&mut g);
        let mut e = Eval::new();
        let ev = ef(&mut e);
        let (gt, et) = (g.value(gv), e.value(ev));
        assert_eq!(gt.shape(), et.shape(), "shape diverged");
        let gb: Vec<u64> = gt.data().iter().map(|x| x.to_bits()).collect();
        let eb: Vec<u64> = et.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(gb, eb, "values diverged bitwise");
    }

    #[test]
    fn elementwise_and_reductions_match_the_tape_bitwise() {
        let a = t(&[3, 5], 1);
        let b = t(&[3, 5], 2);
        let v = t(&[5], 3);
        type Op = fn(&mut Graph, crate::VarId, crate::VarId, crate::VarId) -> crate::VarId;
        type EvOp = fn(&mut Eval, EvalVar, EvalVar, EvalVar) -> EvalVar;
        let cases: Vec<(Op, EvOp)> = vec![
            (|g, a, b, _| g.add(a, b), |e, a, b, _| e.add(a, b)),
            (|g, a, b, _| g.div(a, b), |e, a, b, _| e.div(a, b)),
            (|g, a, _, _| g.scale(a, -1.7), |e, a, _, _| e.scale(a, -1.7)),
            (|g, a, _, _| g.add_scalar(a, 1e-9), |e, a, _, _| e.add_scalar(a, 1e-9)),
            (|g, a, _, v| g.add_rowvec(a, v), |e, a, _, v| e.add_rowvec(a, v)),
            (|g, a, _, v| g.sub_rowvec(a, v), |e, a, _, v| e.sub_rowvec(a, v)),
            (|g, a, _, _| g.relu(a), |e, a, _, _| e.relu(a)),
            (|g, a, _, _| g.exp(a), |e, a, _, _| e.exp(a)),
            (|g, a, _, _| g.square(a), |e, a, _, _| e.square(a)),
            (|g, a, _, _| g.sum(a), |e, a, _, _| e.sum(a)),
            (|g, a, _, _| g.sum_axis1(a), |e, a, _, _| e.sum_axis1(a)),
            (|g, a, _, _| g.transpose(a), |e, a, _, _| e.transpose(a)),
            (|g, a, _, _| g.shift_rows(a, 1), |e, a, _, _| e.shift_rows(a, 1)),
            (|g, a, _, _| g.shift_rows(a, -2), |e, a, _, _| e.shift_rows(a, -2)),
            (|g, a, _, _| g.row(a, 2), |e, a, _, _| e.row(a, 2)),
            (|g, a, _, _| g.reshape(a, &[5, 3]), |e, a, _, _| e.reshape(a, &[5, 3])),
            (|g, a, b, _| g.concat_cols(&[a, b]), |e, a, b, _| e.concat_cols(&[a, b])),
        ];
        for (gop, eop) in cases {
            let (ac, bc, vc) = (a.clone(), b.clone(), v.clone());
            assert_same(
                move |g| {
                    let (a, b) = (g.constant(ac.clone()), g.constant(bc.clone()));
                    let v = g.constant(vc.clone());
                    gop(g, a, b, v)
                },
                |e| {
                    let a = e.input(a.shape(), |x| x.data_mut().copy_from_slice(a.data()));
                    let b = e.input(b.shape(), |x| x.data_mut().copy_from_slice(b.data()));
                    let v = e.input(v.shape(), |x| x.data_mut().copy_from_slice(v.data()));
                    eop(e, a, b, v)
                },
            );
        }
    }

    #[test]
    fn matmul_dot_gather_softmax_match_the_tape_bitwise() {
        let a = t(&[4, 6], 7);
        let b = t(&[6, 5], 8);
        let mut mask = Mask::trues(&[4, 4]);
        mask.set(&[0, 3], false);
        mask.set(&[2, 0], false);
        mask.set(&[3, 0], false);
        mask.set(&[3, 1], false);
        mask.set(&[3, 2], false);
        mask.set(&[3, 3], false); // fully masked row
        let sc = t(&[4, 4], 9);
        let r1 = t(&[6], 10);
        let r2 = t(&[6], 11);

        assert_same(
            |g| {
                let (av, bv) = (g.constant(a.clone()), g.constant(b.clone()));
                g.matmul(av, bv)
            },
            |e| {
                let av = e.input(a.shape(), |x| x.data_mut().copy_from_slice(a.data()));
                let bv = e.input(b.shape(), |x| x.data_mut().copy_from_slice(b.data()));
                e.matmul(av, bv)
            },
        );
        assert_same(
            |g| {
                let (x, y) = (g.constant(r1.clone()), g.constant(r2.clone()));
                g.dot(x, y)
            },
            |e| {
                let x = e.input(r1.shape(), |t| t.data_mut().copy_from_slice(r1.data()));
                let y = e.input(r2.shape(), |t| t.data_mut().copy_from_slice(r2.data()));
                e.dot(x, y)
            },
        );
        assert_same(
            |g| {
                let tb = g.constant(a.clone());
                g.gather_rows(tb, &[3, 0, 0, 2])
            },
            |e| {
                let tb = e.input(a.shape(), |x| x.data_mut().copy_from_slice(a.data()));
                e.gather_rows(tb, &[3, 0, 0, 2])
            },
        );
        assert_same(
            |g| {
                let s = g.constant(sc.clone());
                g.masked_softmax_rows(s, &mask)
            },
            |e| {
                let s = e.input(sc.shape(), |x| x.data_mut().copy_from_slice(sc.data()));
                e.masked_softmax_rows(s, &mask)
            },
        );
    }

    #[test]
    fn params_bind_by_sharing_and_layers_match_across_backends() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Linear::new(&mut store, &mut rng, "l", 6, 4);
        let x = glorot(&mut rng, 3, 6);

        let mut g = Graph::new();
        let xg = g.constant(x.clone());
        let yg = layer.forward(&mut g, &store, xg);

        let mut e = Eval::new();
        let xe = e.input(x.shape(), |t| t.data_mut().copy_from_slice(x.data()));
        let ye = layer.forward(&mut e, &store, xe);

        assert_eq!(
            g.value(yg).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            e.value(ye).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        // The bound parameter shares the store's allocation, byte for byte.
        let pw = e.param(&store, layer.w);
        assert!(std::ptr::eq(e.value(pw).data().as_ptr(), store.value(layer.w).data().as_ptr()));
    }

    #[test]
    fn recycle_reaches_a_zero_allocation_steady_state() {
        let mut e = Eval::new();
        for pass in 0..3 {
            e.recycle();
            let a = e.input(&[4, 4], |t| t.data_mut().iter_mut().for_each(|x| *x = 1.5));
            let b = e.transpose(a);
            let c = e.matmul(a, b);
            let s = e.sum(c);
            assert_eq!(e.value(s).at(0), 4.0 * 4.0 * 4.0 * 1.5 * 1.5, "pass {pass}");
        }
        // The pool holds exactly the four live buffers, reused across passes.
        assert_eq!(e.pool.len(), 4);
        assert_eq!(e.pool_used, 4);
    }
}
