//! The differentiation tape and its operator set.

use crate::params::{ParamId, ParamStore};
use mvi_linalg::ops as la;
use mvi_tensor::{Mask, Tensor};
use std::sync::Arc;

/// Index of a node on the tape.
pub type VarId = usize;

/// Backward closure: given the gradient flowing into this node and the values of its
/// parents, produce the gradient contribution for each parent (same order/shapes).
type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor]) -> Vec<Tensor>>;

/// A node's value: owned for computed intermediates, shared for parameter
/// leaves (binding a parameter is a refcount bump on the store's `Arc`, not a
/// tensor clone — the store only copies-on-write at the next optimizer step).
enum NodeValue {
    Owned(Tensor),
    Param(Arc<Tensor>),
}

impl NodeValue {
    #[inline]
    fn get(&self) -> &Tensor {
        match self {
            NodeValue::Owned(t) => t,
            NodeValue::Param(t) => t,
        }
    }
}

struct Node {
    value: NodeValue,
    parents: Vec<VarId>,
    backward: Option<BackwardFn>,
}

/// Gradients produced by [`Graph::backward`], indexed by [`VarId`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. the given variable, if it was reached.
    pub fn get(&self, id: VarId) -> Option<&Tensor> {
        self.grads.get(id).and_then(|g| g.as_ref())
    }
}

/// A write-once computation tape. Build one per forward pass.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    param_binds: Vec<(VarId, ParamId)>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape for reuse, keeping the node and binding vectors'
    /// capacity. Inference paths that evaluate many small forward passes
    /// (one per window task) recycle one `Graph` instead of reallocating the
    /// tape spine per pass; all previously issued [`VarId`]s are invalidated.
    pub fn recycle(&mut self) {
        self.nodes.clear();
        self.param_binds.clear();
    }

    fn push(&mut self, value: Tensor, parents: Vec<VarId>, backward: Option<BackwardFn>) -> VarId {
        debug_assert!(value.all_finite(), "non-finite value entered the tape");
        let id = self.nodes.len();
        self.nodes.push(Node { value: NodeValue::Owned(value), parents, backward });
        id
    }

    /// Leaf holding a constant (no gradient will be requested for it, but one is
    /// still accumulated so constants can be promoted to parameters in tests).
    pub fn constant(&mut self, value: Tensor) -> VarId {
        self.push(value, vec![], None)
    }

    /// Convenience: rank-1 constant from a slice.
    pub fn constant_slice(&mut self, v: &[f64]) -> VarId {
        self.constant(Tensor::from_slice(v))
    }

    /// Convenience: `[1]`-shaped scalar constant.
    pub fn scalar(&mut self, v: f64) -> VarId {
        self.constant(Tensor::scalar(v))
    }

    /// Binds a parameter from the store as a leaf, recording the association so
    /// [`Graph::param_grads`] can route its gradient back after `backward`.
    /// Binding shares the store's tensor (`Arc` clone) — no data is copied,
    /// no matter how large the parameter or how often it is bound.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        debug_assert!(
            store.value(id).all_finite(),
            "non-finite parameter `{}` entered the tape",
            store.name(id)
        );
        let v = self.nodes.len();
        self.nodes.push(Node {
            value: NodeValue::Param(Arc::clone(store.value_arc(id))),
            parents: vec![],
            backward: None,
        });
        self.param_binds.push((v, id));
        v
    }

    /// Value of a node.
    pub fn value(&self, id: VarId) -> &Tensor {
        self.nodes[id].value.get()
    }

    /// Shape of a node's value.
    pub fn shape(&self, id: VarId) -> &[usize] {
        self.nodes[id].value.get().shape()
    }

    // ==================================================================
    // Arithmetic
    // ==================================================================

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.get().zip_map(self.nodes[b].value.get(), |x, y| x + y);
        self.push(v, vec![a, b], Some(Box::new(|g, _| vec![g.clone(), g.clone()])))
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.get().zip_map(self.nodes[b].value.get(), |x, y| x - y);
        self.push(v, vec![a, b], Some(Box::new(|g, _| vec![g.clone(), g.map(|x| -x)])))
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.get().zip_map(self.nodes[b].value.get(), |x, y| x * y);
        self.push(
            v,
            vec![a, b],
            Some(Box::new(|g, p| {
                vec![g.zip_map(p[1], |gi, bi| gi * bi), g.zip_map(p[0], |gi, ai| gi * ai)]
            })),
        )
    }

    /// Elementwise `a / b` (same shape). The caller is responsible for keeping `b`
    /// away from zero (use [`Graph::add_scalar`] for an epsilon).
    pub fn div(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a].value.get().zip_map(self.nodes[b].value.get(), |x, y| x / y);
        self.push(
            v,
            vec![a, b],
            Some(Box::new(|g, p| {
                let da = g.zip_map(p[1], |gi, bi| gi / bi);
                let mut db = g.zip_map(p[0], |gi, ai| gi * ai);
                for (d, &bi) in db.data_mut().iter_mut().zip(p[1].data()) {
                    *d = -*d / (bi * bi);
                }
                vec![da, db]
            })),
        )
    }

    /// `a * c` for a compile-time scalar `c`.
    pub fn scale(&mut self, a: VarId, c: f64) -> VarId {
        let v = self.nodes[a].value.get().map(|x| x * c);
        self.push(v, vec![a], Some(Box::new(move |g, _| vec![g.map(|x| x * c)])))
    }

    /// `a + c` for a compile-time scalar `c`.
    pub fn add_scalar(&mut self, a: VarId, c: f64) -> VarId {
        let v = self.nodes[a].value.get().map(|x| x + c);
        self.push(v, vec![a], Some(Box::new(|g, _| vec![g.clone()])))
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: VarId) -> VarId {
        self.scale(a, -1.0)
    }

    /// Broadcast add of a row vector: `a[m,n] + v[n]`.
    pub fn add_rowvec(&mut self, a: VarId, v: VarId) -> VarId {
        let (m, n) = (self.nodes[a].value.get().rows(), self.nodes[a].value.get().cols());
        assert_eq!(self.nodes[v].value.get().shape(), &[n], "add_rowvec dim mismatch");
        let mut out = self.nodes[a].value.get().clone();
        let vv = self.nodes[v].value.get().data().to_vec();
        for i in 0..m {
            for (o, &b) in out.row_mut(i).iter_mut().zip(&vv) {
                *o += b;
            }
        }
        self.push(
            out,
            vec![a, v],
            Some(Box::new(move |g, _| {
                let mut gv = vec![0.0; n];
                for i in 0..m {
                    for (s, &gi) in gv.iter_mut().zip(g.row(i)) {
                        *s += gi;
                    }
                }
                vec![g.clone(), Tensor::from_vec(vec![n], gv)]
            })),
        )
    }

    /// Broadcast subtract of a row vector: `a[m,n] - v[n]`.
    pub fn sub_rowvec(&mut self, a: VarId, v: VarId) -> VarId {
        let nv = self.neg(v);
        self.add_rowvec(a, nv)
    }

    /// Scales each row `i` of `a[m,n]` by `v[i]`.
    pub fn mul_colvec(&mut self, a: VarId, v: VarId) -> VarId {
        let (m, n) = (self.nodes[a].value.get().rows(), self.nodes[a].value.get().cols());
        assert_eq!(self.nodes[v].value.get().shape(), &[m], "mul_colvec dim mismatch");
        let mut out = self.nodes[a].value.get().clone();
        for i in 0..m {
            let vi = self.nodes[v].value.get().at(i);
            for o in out.row_mut(i) {
                *o *= vi;
            }
        }
        self.push(
            out,
            vec![a, v],
            Some(Box::new(move |g, p| {
                let mut da = g.clone();
                let mut dv = vec![0.0; m];
                for i in 0..m {
                    let vi = p[1].at(i);
                    let arow = p[0].row(i);
                    for (j, d) in da.row_mut(i).iter_mut().enumerate() {
                        dv[i] += *d * arow[j];
                        *d *= vi;
                    }
                }
                let _ = n;
                vec![da, Tensor::from_vec(vec![m], dv)]
            })),
        )
    }

    // ==================================================================
    // Linear algebra
    // ==================================================================

    /// Matrix product `a[m,k] · b[k,n]`.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = la::matmul(self.nodes[a].value.get(), self.nodes[b].value.get());
        self.push(
            v,
            vec![a, b],
            Some(Box::new(|g, p| vec![la::matmul_nt(g, p[1]), la::matmul_tn(p[0], g)])),
        )
    }

    /// Transpose of a rank-2 value.
    pub fn transpose(&mut self, a: VarId) -> VarId {
        let v = la::transpose(self.nodes[a].value.get());
        self.push(v, vec![a], Some(Box::new(|g, _| vec![la::transpose(g)])))
    }

    /// Dot product of two rank-1 values, yielding a `[1]` scalar.
    pub fn dot(&mut self, a: VarId, b: VarId) -> VarId {
        assert_eq!(
            self.nodes[a].value.get().shape(),
            self.nodes[b].value.get().shape(),
            "dot shape"
        );
        let v: f64 = la::dot(self.nodes[a].value.get().data(), self.nodes[b].value.get().data());
        self.push(
            Tensor::scalar(v),
            vec![a, b],
            Some(Box::new(|g, p| {
                let gs = g.at(0);
                vec![p[1].map(|x| gs * x), p[0].map(|x| gs * x)]
            })),
        )
    }

    // ==================================================================
    // Nonlinearities
    // ==================================================================

    /// Rectified linear unit.
    pub fn relu(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.get().map(|x| x.max(0.0));
        self.push(
            v,
            vec![a],
            Some(Box::new(|g, p| vec![g.zip_map(p[0], |gi, xi| if xi > 0.0 { gi } else { 0.0 })])),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.get().map(|x| 1.0 / (1.0 + (-x).exp()));
        let saved = v.clone();
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, _| vec![g.zip_map(&saved, |gi, si| gi * si * (1.0 - si))])),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.get().map(f64::tanh);
        let saved = v.clone();
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, _| vec![g.zip_map(&saved, |gi, ti| gi * (1.0 - ti * ti))])),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.get().map(f64::exp);
        let saved = v.clone();
        self.push(v, vec![a], Some(Box::new(move |g, _| vec![g.zip_map(&saved, |gi, ei| gi * ei)])))
    }

    /// `ln(x + eps)` — epsilon keeps the log finite at zero.
    pub fn ln_eps(&mut self, a: VarId, eps: f64) -> VarId {
        let v = self.nodes[a].value.get().map(|x| (x + eps).ln());
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, p| vec![g.zip_map(p[0], |gi, xi| gi / (xi + eps))])),
        )
    }

    /// Elementwise square.
    pub fn square(&mut self, a: VarId) -> VarId {
        let v = self.nodes[a].value.get().map(|x| x * x);
        self.push(v, vec![a], Some(Box::new(|g, p| vec![g.zip_map(p[0], |gi, xi| 2.0 * gi * xi)])))
    }

    /// `sqrt(x + eps)`.
    pub fn sqrt_eps(&mut self, a: VarId, eps: f64) -> VarId {
        let v = self.nodes[a].value.get().map(|x| (x + eps).sqrt());
        let saved = v.clone();
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, _| vec![g.zip_map(&saved, |gi, si| gi / (2.0 * si))])),
        )
    }

    // ==================================================================
    // Reductions
    // ==================================================================

    /// Sum of all elements, `[1]`-shaped.
    pub fn sum(&mut self, a: VarId) -> VarId {
        let shape = self.nodes[a].value.get().shape().to_vec();
        let v = self.nodes[a].value.get().sum();
        self.push(
            Tensor::scalar(v),
            vec![a],
            Some(Box::new(move |g, _| vec![Tensor::full(&shape, g.at(0))])),
        )
    }

    /// Mean of all elements, `[1]`-shaped.
    pub fn mean(&mut self, a: VarId) -> VarId {
        let n = self.nodes[a].value.get().len().max(1) as f64;
        let s = self.sum(a);
        self.scale(s, 1.0 / n)
    }

    /// Row sums of `a[m,n]`, yielding `[m]`.
    pub fn sum_axis1(&mut self, a: VarId) -> VarId {
        let (m, n) = (self.nodes[a].value.get().rows(), self.nodes[a].value.get().cols());
        let mut out = vec![0.0; m];
        for i in 0..m {
            out[i] = self.nodes[a].value.get().row(i).iter().sum();
        }
        self.push(
            Tensor::from_vec(vec![m], out),
            vec![a],
            Some(Box::new(move |g, _| {
                let mut da = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    let gi = g.at(i);
                    for d in da.row_mut(i) {
                        *d = gi;
                    }
                }
                vec![da]
            })),
        )
    }

    // ==================================================================
    // Structure: concat / slicing / gather / shifting / reshape
    // ==================================================================

    /// Concatenates rank-1 values into one rank-1 value.
    pub fn concat1d(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat1d of nothing");
        let mut data = Vec::new();
        let mut lens = Vec::with_capacity(parts.len());
        for &p in parts {
            let v = self.nodes[p].value.get();
            assert_eq!(v.ndim(), 1, "concat1d needs rank-1 parts");
            lens.push(v.len());
            data.extend_from_slice(v.data());
        }
        let total = data.len();
        self.push(
            Tensor::from_vec(vec![total], data),
            parts.to_vec(),
            Some(Box::new(move |g, _| {
                let mut out = Vec::with_capacity(lens.len());
                let mut off = 0;
                for &l in &lens {
                    out.push(Tensor::from_slice(&g.data()[off..off + l]));
                    off += l;
                }
                out
            })),
        )
    }

    /// Concatenates rank-2 values with equal row counts along the column axis.
    pub fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let m = self.nodes[parts[0]].value.get().rows();
        let widths: Vec<usize> = parts
            .iter()
            .map(|&p| {
                assert_eq!(self.nodes[p].value.get().rows(), m, "concat_cols row mismatch");
                self.nodes[p].value.get().cols()
            })
            .collect();
        let total: usize = widths.iter().sum();
        let mut out = Tensor::zeros(&[m, total]);
        for i in 0..m {
            let orow = out.row_mut(i);
            let mut off = 0;
            for (&p, &w) in parts.iter().zip(&widths) {
                orow[off..off + w].copy_from_slice(self.nodes[p].value.get().row(i));
                off += w;
            }
        }
        self.push(
            out,
            parts.to_vec(),
            Some(Box::new(move |g, _| {
                let mut outs: Vec<Tensor> =
                    widths.iter().map(|&w| Tensor::zeros(&[m, w])).collect();
                for i in 0..m {
                    let grow = g.row(i);
                    let mut off = 0;
                    for (t, &w) in outs.iter_mut().zip(&widths) {
                        t.row_mut(i).copy_from_slice(&grow[off..off + w]);
                        off += w;
                    }
                }
                outs
            })),
        )
    }

    /// Row `i` of a rank-2 value, as a rank-1 value.
    pub fn row(&mut self, a: VarId, i: usize) -> VarId {
        let (m, n) = (self.nodes[a].value.get().rows(), self.nodes[a].value.get().cols());
        assert!(i < m, "row {i} out of {m}");
        let v = Tensor::from_slice(self.nodes[a].value.get().row(i));
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, _| {
                let mut da = Tensor::zeros(&[m, n]);
                da.row_mut(i).copy_from_slice(g.data());
                vec![da]
            })),
        )
    }

    /// Element `i` of a rank-1 value, as a `[1]` scalar.
    pub fn index1d(&mut self, a: VarId, i: usize) -> VarId {
        let n = self.nodes[a].value.get().len();
        assert!(i < n, "index {i} out of {n}");
        let v = Tensor::scalar(self.nodes[a].value.get().at(i));
        self.push(
            v,
            vec![a],
            Some(Box::new(move |g, _| {
                let mut da = Tensor::zeros(&[n]);
                da.data_mut()[i] = g.at(0);
                vec![da]
            })),
        )
    }

    /// Gathers rows of `table[v,d]` by index, yielding `[idx.len(), d]`. Backward
    /// scatter-adds, which makes this the embedding-lookup primitive.
    pub fn gather_rows(&mut self, table: VarId, idx: &[usize]) -> VarId {
        let (vocab, d) =
            (self.nodes[table].value.get().rows(), self.nodes[table].value.get().cols());
        let mut out = Tensor::zeros(&[idx.len(), d]);
        for (r, &i) in idx.iter().enumerate() {
            assert!(i < vocab, "gather index {i} out of vocabulary {vocab}");
            out.row_mut(r).copy_from_slice(self.nodes[table].value.get().row(i));
        }
        let idx = idx.to_vec();
        self.push(
            out,
            vec![table],
            Some(Box::new(move |g, _| {
                let mut dt = Tensor::zeros(&[vocab, d]);
                for (r, &i) in idx.iter().enumerate() {
                    for (acc, &gv) in dt.row_mut(i).iter_mut().zip(g.row(r)) {
                        *acc += gv;
                    }
                }
                vec![dt]
            })),
        )
    }

    /// Shifts the rows of `a[m,n]` by `offset` (positive = down), zero-filling.
    ///
    /// `shift_rows(Y, 1)` yields `Y_{j-1}` at row `j` — the "left window" of Eq 8;
    /// `shift_rows(Y, -1)` yields `Y_{j+1}` — the "right window".
    pub fn shift_rows(&mut self, a: VarId, offset: i64) -> VarId {
        let (m, n) = (self.nodes[a].value.get().rows(), self.nodes[a].value.get().cols());
        let mut out = Tensor::zeros(&[m, n]);
        crate::vops::shift_rows_into(self.nodes[a].value.get(), offset, &mut out);
        self.push(
            out,
            vec![a],
            Some(Box::new(move |g, _| {
                let mut da = Tensor::zeros(&[m, n]);
                for j in 0..m as i64 {
                    let src = j - offset;
                    if src >= 0 && src < m as i64 {
                        da.row_mut(src as usize).copy_from_slice(g.row(j as usize));
                    }
                }
                vec![da]
            })),
        )
    }

    /// Reinterprets the value under a new shape (same volume).
    pub fn reshape(&mut self, a: VarId, new_shape: &[usize]) -> VarId {
        let old_shape = self.nodes[a].value.get().shape().to_vec();
        let v = self.nodes[a].value.get().clone().reshape(new_shape);
        self.push(v, vec![a], Some(Box::new(move |g, _| vec![g.clone().reshape(&old_shape)])))
    }

    // ==================================================================
    // Attention & losses
    // ==================================================================

    /// Row-wise softmax over `scores[m,n]` with entries where `mask` is `false`
    /// excluded (their output weight is exactly zero). Rows whose mask is entirely
    /// `false` produce an all-zero row (and propagate zero gradient), which encodes
    /// "no available key window" (Eq 9).
    pub fn masked_softmax_rows(&mut self, scores: VarId, mask: &Mask) -> VarId {
        let (m, n) = (self.nodes[scores].value.get().rows(), self.nodes[scores].value.get().cols());
        let mut out = Tensor::zeros(&[m, n]);
        // Shared with the value-only evaluator so the two backends cannot
        // drift (see `crate::vops`).
        crate::vops::masked_softmax_rows_into(self.nodes[scores].value.get(), mask, &mut out);
        let saved = out.clone();
        self.push(
            out,
            vec![scores],
            Some(Box::new(move |g, _| {
                // d s_j = y_j (g_j - Σ_k g_k y_k) per row; masked entries have y = 0.
                let mut ds = Tensor::zeros(&[m, n]);
                for i in 0..m {
                    let yrow = saved.row(i);
                    let grow = g.row(i);
                    let inner: f64 = yrow.iter().zip(grow).map(|(&y, &gv)| y * gv).sum();
                    for (j, d) in ds.row_mut(i).iter_mut().enumerate() {
                        *d = yrow[j] * (grow[j] - inner);
                    }
                }
                vec![ds]
            })),
        )
    }

    /// Mean squared error between a prediction and a constant target, `[1]`-shaped.
    pub fn mse(&mut self, pred: VarId, target: &Tensor) -> VarId {
        let t = self.constant(target.clone());
        let d = self.sub(pred, t);
        let sq = self.square(d);
        self.mean(sq)
    }

    // ==================================================================
    // Backward
    // ==================================================================

    /// Reverse pass from a `[1]`-shaped loss node. Returns all accumulated
    /// gradients; leaves keep theirs so parameters and constants can be inspected.
    pub fn backward(&self, loss: VarId) -> Gradients {
        assert_eq!(self.nodes[loss].value.get().shape(), &[1], "loss must be a [1] scalar");
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss] = Some(Tensor::scalar(1.0));
        for id in (0..=loss).rev() {
            let node = &self.nodes[id];
            let Some(backward) = node.backward.as_ref() else { continue };
            let Some(g) = grads[id].take() else { continue };
            let parent_vals: Vec<&Tensor> =
                node.parents.iter().map(|&p| self.nodes[p].value.get()).collect();
            let pgrads = backward(&g, &parent_vals);
            debug_assert_eq!(pgrads.len(), node.parents.len());
            for (&p, pg) in node.parents.iter().zip(pgrads) {
                debug_assert_eq!(
                    pg.shape(),
                    self.nodes[p].value.get().shape(),
                    "gradient shape mismatch"
                );
                match &mut grads[p] {
                    Some(acc) => acc.add_assign(&pg),
                    slot => *slot = Some(pg),
                }
            }
        }
        Gradients { grads }
    }

    /// Extracts the gradients of all bound parameters as `(ParamId, grad)` pairs.
    /// Parameters bound multiple times (shared weights) appear once per binding;
    /// [`ParamStore::accumulate`] sums them.
    pub fn param_grads(&self, grads: &Gradients) -> Vec<(ParamId, Tensor)> {
        self.param_binds
            .iter()
            .filter_map(|&(vid, pid)| grads.get(vid).map(|g| (pid, g.clone())))
            .collect()
    }
}

/// The tape is one of the two forward backends (the recording one): model
/// forward code written against [`crate::eval::Evaluator`] runs on the tape
/// during training — gaining a backward pass — and on [`crate::eval::Eval`]
/// during inference, with bitwise-identical values.
impl crate::eval::Evaluator for Graph {
    type Var = VarId;

    fn param(&mut self, store: &ParamStore, id: ParamId) -> VarId {
        Graph::param(self, store, id)
    }

    fn input(&mut self, shape: &[usize], fill: impl FnOnce(&mut Tensor)) -> VarId {
        let mut t = Tensor::zeros(shape);
        fill(&mut t);
        Graph::constant(self, t)
    }

    fn scalar(&mut self, v: f64) -> VarId {
        Graph::scalar(self, v)
    }

    fn constant_slice(&mut self, v: &[f64]) -> VarId {
        Graph::constant_slice(self, v)
    }

    fn value(&self, v: VarId) -> &Tensor {
        Graph::value(self, v)
    }

    fn shape(&self, v: VarId) -> &[usize] {
        Graph::shape(self, v)
    }

    fn add(&mut self, a: VarId, b: VarId) -> VarId {
        Graph::add(self, a, b)
    }

    fn div(&mut self, a: VarId, b: VarId) -> VarId {
        Graph::div(self, a, b)
    }

    fn scale(&mut self, a: VarId, c: f64) -> VarId {
        Graph::scale(self, a, c)
    }

    fn add_scalar(&mut self, a: VarId, c: f64) -> VarId {
        Graph::add_scalar(self, a, c)
    }

    fn add_rowvec(&mut self, a: VarId, v: VarId) -> VarId {
        Graph::add_rowvec(self, a, v)
    }

    fn sub_rowvec(&mut self, a: VarId, v: VarId) -> VarId {
        Graph::sub_rowvec(self, a, v)
    }

    fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        Graph::matmul(self, a, b)
    }

    fn transpose(&mut self, a: VarId) -> VarId {
        Graph::transpose(self, a)
    }

    fn dot(&mut self, a: VarId, b: VarId) -> VarId {
        Graph::dot(self, a, b)
    }

    fn relu(&mut self, a: VarId) -> VarId {
        Graph::relu(self, a)
    }

    fn exp(&mut self, a: VarId) -> VarId {
        Graph::exp(self, a)
    }

    fn square(&mut self, a: VarId) -> VarId {
        Graph::square(self, a)
    }

    fn sum(&mut self, a: VarId) -> VarId {
        Graph::sum(self, a)
    }

    fn sum_axis1(&mut self, a: VarId) -> VarId {
        Graph::sum_axis1(self, a)
    }

    fn concat1d(&mut self, parts: &[VarId]) -> VarId {
        Graph::concat1d(self, parts)
    }

    fn concat_cols(&mut self, parts: &[VarId]) -> VarId {
        Graph::concat_cols(self, parts)
    }

    fn row(&mut self, a: VarId, i: usize) -> VarId {
        Graph::row(self, a, i)
    }

    fn gather_rows(&mut self, table: VarId, idx: &[usize]) -> VarId {
        Graph::gather_rows(self, table, idx)
    }

    fn shift_rows(&mut self, a: VarId, offset: i64) -> VarId {
        Graph::shift_rows(self, a, offset)
    }

    fn reshape(&mut self, a: VarId, new_shape: &[usize]) -> VarId {
        Graph::reshape(self, a, new_shape)
    }

    fn masked_softmax_rows(&mut self, scores: VarId, mask: &Mask) -> VarId {
        Graph::masked_softmax_rows(self, scores, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_compose() {
        let mut g = Graph::new();
        let a = g.constant_slice(&[1.0, 2.0, 3.0]);
        let b = g.constant_slice(&[4.0, 5.0, 6.0]);
        let s = g.add(a, b);
        let p = g.mul(s, b);
        assert_eq!(g.value(p).data(), &[20.0, 35.0, 54.0]);
    }

    #[test]
    fn backward_through_chain() {
        // loss = mean((a*b - c)^2), a=[2], b=[3], c=[5] -> pred=6, d=1, loss=1
        let mut g = Graph::new();
        let a = g.constant_slice(&[2.0]);
        let b = g.constant_slice(&[3.0]);
        let p = g.mul(a, b);
        let loss = g.mse(p, &Tensor::scalar(5.0));
        assert!((g.value(loss).at(0) - 1.0).abs() < 1e-12);
        let grads = g.backward(loss);
        // dL/dp = 2(p-c) = 2 ; dL/da = 2*b = 6 ; dL/db = 2*a = 4
        assert!((grads.get(a).unwrap().at(0) - 6.0).abs() < 1e-12);
        assert!((grads.get(b).unwrap().at(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_backward_shapes() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_fn(&[2, 3], |i| (i[0] + i[1]) as f64));
        let b = g.constant(Tensor::from_fn(&[3, 4], |i| (i[0] * 2 + i[1]) as f64));
        let c = g.matmul(a, b);
        let s = g.sum(c);
        let grads = g.backward(s);
        assert_eq!(grads.get(a).unwrap().shape(), &[2, 3]);
        assert_eq!(grads.get(b).unwrap().shape(), &[3, 4]);
    }

    #[test]
    fn shift_rows_moves_and_zero_fills() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_vec(vec![3, 1], vec![1.0, 2.0, 3.0]));
        let down = g.shift_rows(a, 1);
        assert_eq!(g.value(down).data(), &[0.0, 1.0, 2.0]);
        let up = g.shift_rows(a, -1);
        assert_eq!(g.value(up).data(), &[2.0, 3.0, 0.0]);
    }

    #[test]
    fn masked_softmax_excludes_and_handles_empty_rows() {
        let mut g = Graph::new();
        let s = g.constant(Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0]));
        let mut mask = Mask::trues(&[2, 3]);
        mask.set(&[0, 2], false); // exclude the largest entry of row 0
        mask.set(&[1, 0], false);
        mask.set(&[1, 1], false);
        mask.set(&[1, 2], false); // row 1 fully masked
        let y = g.masked_softmax_rows(s, &mask);
        let v = g.value(y);
        assert_eq!(v.m(0, 2), 0.0);
        assert!((v.m(0, 0) + v.m(0, 1) - 1.0).abs() < 1e-12);
        assert!(v.m(0, 1) > v.m(0, 0));
        assert_eq!(v.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_rows_scatter_adds_duplicates() {
        let mut g = Graph::new();
        let table = g.constant(Tensor::from_fn(&[3, 2], |i| (i[0] * 2 + i[1]) as f64));
        let picked = g.gather_rows(table, &[1, 1, 2]);
        let s = g.sum(picked);
        let grads = g.backward(s);
        let dt = grads.get(table).unwrap();
        assert_eq!(dt.row(0), &[0.0, 0.0]);
        assert_eq!(dt.row(1), &[2.0, 2.0]); // gathered twice
        assert_eq!(dt.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn concat_cols_roundtrip_gradient() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_fn(&[2, 2], |_| 1.0));
        let b = g.constant(Tensor::from_fn(&[2, 3], |_| 2.0));
        let c = g.concat_cols(&[a, b]);
        assert_eq!(g.shape(c), &[2, 5]);
        let s = g.sum(c);
        let grads = g.backward(s);
        assert_eq!(grads.get(a).unwrap().shape(), &[2, 2]);
        assert_eq!(grads.get(b).unwrap().shape(), &[2, 3]);
        assert!(grads.get(a).unwrap().data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn fan_out_gradients_accumulate() {
        // y = a + a  =>  dy/da = 2
        let mut g = Graph::new();
        let a = g.constant_slice(&[1.5]);
        let y = g.add(a, a);
        let s = g.sum(y);
        let grads = g.backward(s);
        assert_eq!(grads.get(a).unwrap().at(0), 2.0);
    }
}
