//! Tape-based reverse-mode automatic differentiation over dense `f64` tensors.
//!
//! DeepMVI and the deep baselines (BRITS, GP-VAE, vanilla Transformer) are all
//! gradient-trained; this crate is the from-scratch substrate that trains them.
//!
//! Design: a [`graph::Graph`] is a write-once tape of [`graph::VarId`]-indexed nodes.
//! Every operator records its parents and a boxed backward closure; calling
//! [`graph::Graph::backward`] walks the tape in reverse and accumulates gradients.
//! Model parameters live *outside* the tape in a [`params::ParamStore`]; a forward
//! pass binds them in with [`graph::Graph::param`], and after `backward` the
//! per-parameter gradients are routed back with [`graph::Graph::param_grads`]. One
//! graph is built per training sample, which makes data-parallel gradient
//! accumulation trivial (each worker thread owns its graph; gradients are summed into
//! the shared store under a lock).
//!
//! The operator set is exactly what the reproduced models need — matmul, broadcast
//! arithmetic, pointwise nonlinearities, reductions, row gather/scatter for
//! embeddings, row shifting for the left/right-window features of Eq 8–9, and masked
//! row softmax for availability-aware attention (Eq 9/11).
//!
//! Everything is validated against finite differences by [`check::check_gradients`].
//!
//! Inference does not need the tape at all: the [`eval`] module defines the
//! [`eval::Evaluator`] trait (the forward operator set, implemented by both
//! [`graph::Graph`] and the tape-free [`eval::Eval`] backend) so the serving
//! hot path executes the same forward pass value-only, into recycled scratch
//! buffers, with bitwise-identical results.

pub mod check;
pub mod eval;
pub mod graph;
pub mod nn;
pub mod params;
pub(crate) mod vops;

pub use check::check_gradients;
pub use eval::{Eval, EvalVar, Evaluator};
pub use graph::{Graph, VarId};
pub use nn::{fill_positional_encoding, glorot, positional_encoding, randn};
pub use nn::{Embedding, GruCell, Linear};
pub use params::{AdamConfig, ParamId, ParamStore};
