//! Tape-based reverse-mode automatic differentiation over dense `f64` tensors.
//!
//! DeepMVI and the deep baselines (BRITS, GP-VAE, vanilla Transformer) are all
//! gradient-trained; this crate is the from-scratch substrate that trains them.
//!
//! Design: a [`graph::Graph`] is a write-once tape of [`graph::VarId`]-indexed nodes.
//! Every operator records its parents and a boxed backward closure; calling
//! [`graph::Graph::backward`] walks the tape in reverse and accumulates gradients.
//! Model parameters live *outside* the tape in a [`params::ParamStore`]; a forward
//! pass binds them in with [`graph::Graph::param`], and after `backward` the
//! per-parameter gradients are routed back with [`graph::Graph::param_grads`]. One
//! graph is built per training sample, which makes data-parallel gradient
//! accumulation trivial (each worker thread owns its graph; gradients are summed into
//! the shared store under a lock).
//!
//! The operator set is exactly what the reproduced models need — matmul, broadcast
//! arithmetic, pointwise nonlinearities, reductions, row gather/scatter for
//! embeddings, row shifting for the left/right-window features of Eq 8–9, and masked
//! row softmax for availability-aware attention (Eq 9/11).
//!
//! Everything is validated against finite differences by [`check::check_gradients`].

pub mod check;
pub mod graph;
pub mod nn;
pub mod params;

pub use check::check_gradients;
pub use graph::{Graph, VarId};
pub use nn::{glorot, positional_encoding, randn, Embedding, GruCell, Linear};
pub use params::{AdamConfig, ParamId, ParamStore};
