//! Neural-network building blocks: initializers, layers and the positional encoding.

use crate::eval::Evaluator;
use crate::graph::{Graph, VarId};
use crate::params::{ParamId, ParamStore};
use mvi_tensor::Tensor;
use rand::Rng;

/// Standard-normal sample via the Box–Muller transform (the `rand` crate alone ships
/// no Gaussian distribution; `rand_distr` is outside the sanctioned dependency set).
pub fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Glorot/Xavier-normal initialization for a `[fan_in, fan_out]` weight matrix.
pub fn glorot(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / (fan_in + fan_out) as f64).sqrt();
    Tensor::from_fn(&[fan_in, fan_out], |_| randn(rng) * std)
}

/// The sinusoidal positional encoding of Eq 2 for the given (window) positions.
///
/// `e_{t,r} = sin(t / 10000^{r/p})` for even `r`, `cos(t / 10000^{(r-1)/p})` for odd.
pub fn positional_encoding(positions: &[usize], dim: usize) -> Tensor {
    let p = dim as f64;
    Tensor::from_fn(&[positions.len(), dim], |idx| {
        let t = positions[idx[0]] as f64;
        let r = idx[1];
        if r % 2 == 0 {
            (t / 10000f64.powf(r as f64 / p)).sin()
        } else {
            (t / 10000f64.powf((r - 1) as f64 / p)).cos()
        }
    })
}

/// [`positional_encoding`] for the contiguous positions `first..first+rows`,
/// written into a pre-shaped `[rows, dim]` buffer — the allocation-free form
/// the forward pass feeds through [`Evaluator::input`]. Same values, bit for
/// bit, as the allocating variant: the per-column `10000^{r/p}` denominator
/// is hoisted out of the row loop (it is a pure function of the column), not
/// reassociated.
pub fn fill_positional_encoding(out: &mut Tensor, first: usize) {
    let (rows, dim) = (out.rows(), out.cols());
    let p = dim as f64;
    for r in 0..dim {
        let denom = if r % 2 == 0 {
            10000f64.powf(r as f64 / p)
        } else {
            10000f64.powf((r - 1) as f64 / p)
        };
        for i in 0..rows {
            let t = (first + i) as f64;
            out.row_mut(i)[r] = if r % 2 == 0 { (t / denom).sin() } else { (t / denom).cos() };
        }
    }
}

/// A dense layer `x ↦ x·W + b` with `W: [in, out]`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    /// Weight parameter `[in_dim, out_dim]`.
    pub w: ParamId,
    /// Optional bias parameter `[out_dim]`.
    pub b: Option<ParamId>,
}

impl Linear {
    /// Registers a Glorot-initialized layer with bias.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), glorot(rng, in_dim, out_dim));
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[out_dim]));
        Self { w, b: Some(b) }
    }

    /// Registers a bias-free layer.
    pub fn new_no_bias(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), glorot(rng, in_dim, out_dim));
        Self { w, b: None }
    }

    /// Applies the layer to a `[m, in]` value, yielding `[m, out]`. Generic
    /// over the forward backend: the tape during training, the value-only
    /// evaluator during inference (which fuses the bias add into the GEMM
    /// epilogue, bitwise-identically — see [`Evaluator::affine`]).
    pub fn forward<E: Evaluator>(&self, g: &mut E, store: &ParamStore, x: E::Var) -> E::Var {
        g.affine(store, self.w, self.b, x)
    }

    /// Applies the layer to a rank-1 `[in]` value, yielding `[out]`. Lowers
    /// to [`Evaluator::affine_vec`], whose value-only backend fuses the whole
    /// reshape→matmul→bias chain into one pass (bitwise-identically).
    pub fn forward_vec<E: Evaluator>(&self, g: &mut E, store: &ParamStore, x: E::Var) -> E::Var {
        g.affine_vec(store, self.w, self.b, x)
    }
}

/// A learned embedding table for the members of one categorical dimension (§4.2).
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// Table parameter `[vocabulary, dim]`.
    pub table: ParamId,
}

impl Embedding {
    /// Registers a table of `vocab` embeddings of width `dim`, N(0, 1/√dim) init.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let std = 1.0 / (dim as f64).sqrt();
        let table = store
            .add(format!("{name}.table"), Tensor::from_fn(&[vocab, dim], |_| randn(rng) * std));
        Self { table }
    }

    /// Looks up a batch of member indices, yielding `[idx.len(), dim]`.
    /// Backend-generic like [`Linear::forward`].
    pub fn lookup<E: Evaluator>(&self, g: &mut E, store: &ParamStore, idx: &[usize]) -> E::Var {
        let t = g.param(store, self.table);
        g.gather_rows(t, idx)
    }
}

/// A gated recurrent unit cell (used by the BRITS baseline's recurrent component).
#[derive(Clone, Copy, Debug)]
pub struct GruCell {
    wz: Linear,
    wr: Linear,
    wh: Linear,
}

impl GruCell {
    /// Registers a GRU cell mapping `[input] × [hidden] -> [hidden]`.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        let cat = input + hidden;
        Self {
            wz: Linear::new(store, rng, &format!("{name}.z"), cat, hidden),
            wr: Linear::new(store, rng, &format!("{name}.r"), cat, hidden),
            wh: Linear::new(store, rng, &format!("{name}.h"), cat, hidden),
        }
    }

    /// One step: `h' = (1-z)·h + z·h̃` with update gate `z`, reset gate `r`,
    /// candidate `h̃ = tanh(W_h [x, r·h])`. `x: [input]`, `h: [hidden]` (rank-1).
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: VarId, h: VarId) -> VarId {
        let xh = g.concat1d(&[x, h]);
        let z_lin = self.wz.forward_vec(g, store, xh);
        let z = g.sigmoid(z_lin);
        let r_lin = self.wr.forward_vec(g, store, xh);
        let r = g.sigmoid(r_lin);
        let rh = g.mul(r, h);
        let xrh = g.concat1d(&[x, rh]);
        let cand_lin = self.wh.forward_vec(g, store, xrh);
        let cand = g.tanh(cand_lin);
        // h' = h + z * (cand - h)
        let delta = g.sub(cand, h);
        let zd = g.mul(z, delta);
        g.add(h, zd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn positional_encoding_matches_eq2() {
        let pe = positional_encoding(&[0, 1, 5], 4);
        assert_eq!(pe.shape(), &[3, 4]);
        // t = 0: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(pe.row(0), &[0.0, 1.0, 0.0, 1.0]);
        // t = 1, r = 0: sin(1).
        assert!((pe.m(1, 0) - 1f64.sin()).abs() < 1e-12);
        // t = 5, r = 2: sin(5 / 10000^(2/4)).
        assert!((pe.m(2, 2) - (5.0 / 100.0f64).sin()).abs() < 1e-12);
    }

    #[test]
    fn linear_forward_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(&mut store, &mut rng, "l", 3, 2);
        // Set known weights: W = ones, b = [10, 20].
        store.value_mut(layer.w).map_inplace(|_| 1.0);
        store.value_mut(layer.b.unwrap()).data_mut().copy_from_slice(&[10.0, 20.0]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1, 3], vec![1.0, 2.0, 3.0]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.value(y).data(), &[16.0, 26.0]);
    }

    #[test]
    fn embedding_lookup_rows() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Embedding::new(&mut store, &mut rng, "e", 5, 3);
        let mut g = Graph::new();
        let rows = emb.lookup(&mut g, &store, &[4, 0]);
        assert_eq!(g.shape(rows), &[2, 3]);
        assert_eq!(g.value(rows).row(0), store.value(emb.table).row(4));
    }

    #[test]
    fn gru_step_stays_bounded() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = GruCell::new(&mut store, &mut rng, "gru", 2, 4);
        let mut g = Graph::new();
        let x = g.constant_slice(&[0.5, -0.5]);
        let mut h = g.constant(Tensor::zeros(&[4]));
        for _ in 0..10 {
            h = cell.step(&mut g, &store, x, h);
        }
        // GRU state is a convex combination of tanh outputs: |h| <= 1.
        assert!(g.value(h).max_abs() <= 1.0 + 1e-9);
    }
}
