//! Parameter storage and the Adam optimizer.
//!
//! Parameters live outside the tape so that many per-sample [`crate::Graph`]s can be
//! built against one shared, read-only view of the weights. Worker threads return
//! `(ParamId, grad)` pairs (from [`crate::Graph::param_grads`]); the training loop
//! sums them with [`ParamStore::accumulate`] and applies one Adam step per batch.

use mvi_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// Values live behind an `Arc` so binding a parameter into a forward pass
/// (tape or value-only) is a reference-count bump instead of a full tensor
/// clone; the optimizer mutates through `Arc::make_mut`, which is in-place
/// whenever no forward pass still holds the value (always true between
/// training steps).
struct Entry {
    name: String,
    value: Arc<Tensor>,
    grad: Tensor,
    m: Tensor,
    v: Tensor,
}

/// Adam hyper-parameters. The paper trains with Adam at `lr = 1e-3` (§4.3).
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Denominator stabilizer.
    pub eps: f64,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip_norm: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: 5.0 }
    }
}

/// A flat registry of named parameter tensors with Adam state.
#[derive(Default)]
pub struct ParamStore {
    entries: Vec<Entry>,
    step: u64,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.entries.len());
        let grad = Tensor::zeros(value.shape());
        let m = Tensor::zeros(value.shape());
        let v = Tensor::zeros(value.shape());
        self.entries.push(Entry { name: name.into(), value: Arc::new(value), grad, m, v });
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].value
    }

    /// Shared handle to a parameter value — what forward passes bind instead
    /// of cloning the tensor (see [`crate::Graph::param`] and the value-only
    /// evaluator in [`crate::eval`]).
    pub fn value_arc(&self, id: ParamId) -> &Arc<Tensor> {
        &self.entries[id.0].value
    }

    /// Mutable value access (used by tests and by finite-difference checking).
    /// Copy-on-write: in-place unless a forward pass still shares the value.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        Arc::make_mut(&mut self.entries[id.0].value)
    }

    /// Current accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.entries[id.0].grad
    }

    /// All parameter ids, in registration order.
    pub fn ids(&self) -> Vec<ParamId> {
        (0..self.entries.len()).map(ParamId).collect()
    }

    /// Adds a batch of `(id, grad)` contributions into the store.
    pub fn accumulate(&mut self, grads: impl IntoIterator<Item = (ParamId, Tensor)>) {
        for (id, g) in grads {
            self.entries[id.0].grad.add_assign(&g);
        }
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.map_inplace(|_| 0.0);
        }
    }

    /// Global L2 norm of the accumulated gradients.
    pub fn grad_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.grad.data().iter().map(|&x| x * x).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Applies one Adam update from the accumulated gradients, then zeroes them.
    ///
    /// `scale` divides the gradients first (use `1 / batch_size` when gradients were
    /// summed over a batch).
    pub fn adam_step(&mut self, cfg: &AdamConfig, scale: f64) {
        self.step += 1;
        let t = self.step as i32;
        // Optional global-norm clipping (post-scaling).
        let mut clip = 1.0;
        if cfg.clip_norm > 0.0 {
            let norm = self.grad_norm() * scale;
            if norm > cfg.clip_norm {
                clip = cfg.clip_norm / norm;
            }
        }
        let bias1 = 1.0 - cfg.beta1.powi(t);
        let bias2 = 1.0 - cfg.beta2.powi(t);
        for e in &mut self.entries {
            let gdata = e.grad.data();
            let mdata = e.m.data_mut();
            let vdata = e.v.data_mut();
            let value = Arc::make_mut(&mut e.value).data_mut();
            for i in 0..gdata.len() {
                let g = gdata[i] * scale * clip;
                mdata[i] = cfg.beta1 * mdata[i] + (1.0 - cfg.beta1) * g;
                vdata[i] = cfg.beta2 * vdata[i] + (1.0 - cfg.beta2) * g * g;
                let mhat = mdata[i] / bias1;
                let vhat = vdata[i] / bias2;
                value[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        }
        self.zero_grads();
    }

    /// Plain SGD step (used by a few tests for analytic comparisons).
    pub fn sgd_step(&mut self, lr: f64, scale: f64) {
        for e in &mut self.entries {
            let gdata = e.grad.data().to_vec();
            for (v, g) in Arc::make_mut(&mut e.value).data_mut().iter_mut().zip(gdata) {
                *v -= lr * g * scale;
            }
        }
        self.zero_grads();
    }

    /// Snapshot of all parameter values (for early-stopping rollback). Shares
    /// the tensors — O(parameters) refcount bumps, no data copies; the next
    /// optimizer step's `Arc::make_mut` copies only what it actually updates.
    pub fn snapshot(&self) -> Vec<Arc<Tensor>> {
        self.entries.iter().map(|e| Arc::clone(&e.value)).collect()
    }

    /// Restores a snapshot taken with [`ParamStore::snapshot`].
    pub fn restore(&mut self, snap: &[Arc<Tensor>]) {
        assert_eq!(snap.len(), self.entries.len(), "snapshot/store size mismatch");
        for (e, s) in self.entries.iter_mut().zip(snap) {
            e.value = Arc::clone(s);
        }
    }

    /// Exports all parameter values by name (for model persistence).
    pub fn export(&self) -> StoreSnapshot {
        StoreSnapshot {
            params: self
                .entries
                .iter()
                .map(|e| (e.name.clone(), Tensor::clone(&e.value)))
                .collect(),
        }
    }

    /// Imports a snapshot previously produced by [`ParamStore::export`] into a
    /// store with the *same registration order, names and shapes* (i.e. a model
    /// rebuilt with the same configuration). Optimizer state is reset.
    ///
    /// # Errors
    /// Returns a description of the first mismatch.
    pub fn import(&mut self, snap: &StoreSnapshot) -> Result<(), String> {
        if snap.params.len() != self.entries.len() {
            return Err(format!(
                "snapshot has {} parameters, store has {}",
                snap.params.len(),
                self.entries.len()
            ));
        }
        for (e, (name, value)) in self.entries.iter().zip(&snap.params) {
            if &e.name != name {
                return Err(format!(
                    "parameter name mismatch: store '{}' vs snapshot '{name}'",
                    e.name
                ));
            }
            if e.value.shape() != value.shape() {
                return Err(format!(
                    "shape mismatch for '{name}': {:?} vs {:?}",
                    e.value.shape(),
                    value.shape()
                ));
            }
        }
        for (e, (_, value)) in self.entries.iter_mut().zip(&snap.params) {
            e.value = Arc::new(value.clone());
            e.grad.map_inplace(|_| 0.0);
            e.m.map_inplace(|_| 0.0);
            e.v.map_inplace(|_| 0.0);
        }
        self.step = 0;
        Ok(())
    }
}

/// A serializable dump of every parameter tensor, keyed by registration name.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreSnapshot {
    /// `(name, value)` pairs in registration order.
    pub params: Vec<(String, Tensor)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 from w = 0.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        let cfg = AdamConfig { lr: 0.1, ..Default::default() };
        for _ in 0..300 {
            let mut g = Graph::new();
            let wv = g.param(&store, w);
            let loss = g.mse(wv, &Tensor::scalar(3.0));
            let grads = g.backward(loss);
            store.accumulate(g.param_grads(&grads));
            store.adam_step(&cfg, 1.0);
        }
        assert!((store.value(w).at(0) - 3.0).abs() < 1e-2, "got {}", store.value(w).at(0));
    }

    #[test]
    fn sgd_matches_analytic_gradient_step() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(2.0));
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let sq = g.square(wv);
        let loss = g.mean(sq);
        let grads = g.backward(loss);
        store.accumulate(g.param_grads(&grads));
        store.sgd_step(0.25, 1.0);
        // d(w^2)/dw = 4 at w=2; w' = 2 - 0.25*4 = 1.
        assert!((store.value(w).at(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_sums_multiple_contributions() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_slice(&[1.0, 2.0]));
        store.accumulate(vec![
            (w, Tensor::from_slice(&[1.0, 1.0])),
            (w, Tensor::from_slice(&[0.5, -1.0])),
        ]);
        assert_eq!(store.grad(w).data(), &[1.5, 0.0]);
        store.zero_grads();
        assert_eq!(store.grad(w).data(), &[0.0, 0.0]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(1.0));
        let snap = store.snapshot();
        store.value_mut(w).data_mut()[0] = 99.0;
        store.restore(&snap);
        assert_eq!(store.value(w).at(0), 1.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        store.accumulate(vec![(w, Tensor::scalar(1e9))]);
        let cfg = AdamConfig { lr: 0.1, clip_norm: 1.0, ..Default::default() };
        store.adam_step(&cfg, 1.0);
        assert!(store.value(w).at(0).abs() <= 0.11);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = ParamStore::new();
        let w = a.add("w", Tensor::from_slice(&[1.0, 2.0]));
        let snap = a.export();
        let mut b = ParamStore::new();
        let wb = b.add("w", Tensor::from_slice(&[9.0, 9.0]));
        b.import(&snap).unwrap();
        assert_eq!(b.value(wb).data(), &[1.0, 2.0]);
        let _ = w;
    }

    #[test]
    fn import_rejects_mismatched_stores() {
        let mut a = ParamStore::new();
        a.add("w", Tensor::from_slice(&[1.0]));
        let snap = a.export();
        let mut wrong_name = ParamStore::new();
        wrong_name.add("v", Tensor::from_slice(&[1.0]));
        assert!(wrong_name.import(&snap).unwrap_err().contains("name mismatch"));
        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("w", Tensor::from_slice(&[1.0, 2.0]));
        assert!(wrong_shape.import(&snap).unwrap_err().contains("shape mismatch"));
        let mut wrong_len = ParamStore::new();
        assert!(wrong_len.import(&snap).unwrap_err().contains("parameters"));
    }

    #[test]
    fn snapshot_serializes_through_json() {
        let mut a = ParamStore::new();
        a.add("layer.w", Tensor::from_slice(&[0.5, -0.5]));
        let snap = a.export();
        let json = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.params[0].0, "layer.w");
        assert_eq!(back.params[0].1.data(), &[0.5, -0.5]);
    }

    #[test]
    fn num_scalars_counts_elements() {
        let mut store = ParamStore::new();
        store.add("a", Tensor::zeros(&[3, 4]));
        store.add("b", Tensor::zeros(&[5]));
        assert_eq!(store.num_scalars(), 17);
        assert_eq!(store.len(), 2);
    }
}
