//! Value-level forward kernels shared by the differentiation tape
//! ([`crate::Graph`]) and the tape-free evaluator ([`crate::eval::Eval`]).
//!
//! Anything with a non-obvious iteration order lives here so the two backends
//! cannot drift apart numerically: the bitwise tape/eval equivalence that
//! inference relies on (see `crates/core`'s evaluator tests) holds because
//! both execute *this* code, not two hand-kept copies.

use mvi_tensor::{Mask, Tensor};

/// Row-wise masked softmax (Eq 9/11): entries where `mask` is `false` get
/// weight exactly zero, and fully-masked rows stay all-zero. `out` must
/// arrive zeroed with the same `[m, n]` shape as `scores`.
pub(crate) fn masked_softmax_rows_into(scores: &Tensor, mask: &Mask, out: &mut Tensor) {
    let (m, n) = (scores.rows(), scores.cols());
    assert_eq!(mask.shape(), &[m, n], "mask shape mismatch");
    debug_assert_eq!(out.shape(), &[m, n], "out shape mismatch");
    for i in 0..m {
        let srow = scores.row(i);
        let mrow = &mask.data()[i * n..(i + 1) * n];
        let mut maxv = f64::NEG_INFINITY;
        for (&s, &ok) in srow.iter().zip(mrow) {
            if ok && s > maxv {
                maxv = s;
            }
        }
        if !maxv.is_finite() {
            continue; // fully masked row
        }
        let mut denom = 0.0;
        let orow = out.row_mut(i);
        for (j, (&s, &ok)) in srow.iter().zip(mrow).enumerate() {
            if ok {
                let e = (s - maxv).exp();
                orow[j] = e;
                denom += e;
            }
        }
        for o in orow.iter_mut() {
            *o /= denom;
        }
    }
}

/// Shifts the rows of `a` by `offset` (positive = down), zero-filling rows
/// that fall off either end. `out` must arrive zeroed at `a`'s shape.
pub(crate) fn shift_rows_into(a: &Tensor, offset: i64, out: &mut Tensor) {
    let m = a.rows() as i64;
    debug_assert_eq!(out.shape(), a.shape());
    for j in 0..m {
        let src = j - offset;
        if src >= 0 && src < m {
            out.row_mut(j as usize).copy_from_slice(a.row(src as usize));
        }
    }
}
