//! Property-based gradient verification: randomly-shaped compositions of tape
//! operators must always agree with central finite differences. This complements
//! the hand-picked cases in `src/check.rs` with adversarial shapes and values.

use mvi_autograd::{check_gradients, Graph, ParamStore, VarId};
use mvi_tensor::{Mask, Tensor};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded, well-conditioned entries.
fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.5f64..1.5, rows * cols)
        .prop_map(move |v| Tensor::from_vec(vec![rows, cols], v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_add_relu_chain(
        a in small_matrix(3, 4),
        b in small_matrix(4, 2),
        bias in proptest::collection::vec(-1.0f64..1.0, 2),
    ) {
        let mut store = ParamStore::new();
        let pa = store.add("a", a);
        let pb = store.add("b", b);
        let pbias = store.add("bias", Tensor::from_slice(&bias));
        check_gradients(
            &mut store,
            &mut |store, g| {
                let av = g.param(store, pa);
                let bv = g.param(store, pb);
                let biasv = g.param(store, pbias);
                let prod = g.matmul(av, bv);
                let with_bias = g.add_rowvec(prod, biasv);
                let act = g.relu(with_bias);
                let sq = g.square(act);
                g.mean(sq)
            },
            1e-6,
            1e-4,
        ).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn softmax_attention_chain(
        q in small_matrix(3, 3),
        v in small_matrix(3, 2),
        mask_bits in proptest::collection::vec(any::<bool>(), 9),
    ) {
        // Ensure at least one unmasked column so rows aren't all dead.
        let mut bits = mask_bits;
        bits[0] = true;
        bits[3] = true;
        bits[6] = true;
        let mask = Mask::from_vec(vec![3, 3], bits);
        let mut store = ParamStore::new();
        let pq = store.add("q", q);
        let pv = store.add("v", v);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let qv = g.param(store, pq);
                let vv = g.param(store, pv);
                let qt = g.transpose(qv);
                let scores = g.matmul(qv, qt);
                let attn = g.masked_softmax_rows(scores, &mask);
                let out = g.matmul(attn, vv);
                let sq = g.square(out);
                g.sum(sq)
            },
            1e-6,
            1e-4,
        ).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn kernel_regression_shape_chain(
        table in small_matrix(5, 3),
        values in proptest::collection::vec(-1.0f64..1.0, 4),
    ) {
        let mut store = ParamStore::new();
        let pt = store.add("table", table);
        let vals = Tensor::from_slice(&values);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let tv = g.param(store, pt);
                let own = g.gather_rows(tv, &[0]);
                let own_vec = g.reshape(own, &[3]);
                let sibs = g.gather_rows(tv, &[1, 2, 3, 4]);
                let diff = g.sub_rowvec(sibs, own_vec);
                let sq = g.square(diff);
                let dists = g.sum_axis1(sq);
                let neg = g.scale(dists, -1.0);
                let sim = g.exp(neg);
                let valc = g.constant(vals.clone());
                let num = g.dot(sim, valc);
                let den = g.sum(sim);
                let den = g.add_scalar(den, 1e-6);
                let u = g.div(num, den);
                g.square(u)
            },
            1e-6,
            1e-4,
        ).map_err(TestCaseError::fail)?;
    }

    #[test]
    fn shift_concat_mul_chain(
        a in small_matrix(4, 3),
        offset in -2i64..=2,
    ) {
        let mut store = ParamStore::new();
        let pa = store.add("a", a);
        check_gradients(
            &mut store,
            &mut |store, g| {
                let av = g.param(store, pa);
                let shifted = g.shift_rows(av, offset);
                let cat = g.concat_cols(&[av, shifted]);
                let t = g.tanh(cat);
                let s = g.sigmoid(t);
                g.mean(s)
            },
            1e-6,
            1e-4,
        ).map_err(TestCaseError::fail)?;
    }
}

/// Non-proptest structural checks for the tape itself.
#[test]
fn backward_only_visits_ancestors() {
    let mut g = Graph::new();
    let a = g.constant_slice(&[1.0, 2.0]);
    let b = g.constant_slice(&[3.0, 4.0]);
    let used = g.mul(a, a);
    let loss = g.mean(used);
    let _unused: VarId = g.mul(b, b); // after loss; must not disturb backward
    let grads = g.backward(loss);
    assert!(grads.get(a).is_some());
    assert!(grads.get(b).is_none(), "unrelated node received a gradient");
}

#[test]
fn gradient_accumulates_across_many_uses() {
    // y = sum over k uses of the same leaf: dy/da = k.
    let mut g = Graph::new();
    let a = g.constant_slice(&[1.0]);
    let mut acc = a;
    let k = 7;
    for _ in 0..k - 1 {
        acc = g.add(acc, a);
    }
    let loss = g.sum(acc);
    let grads = g.backward(loss);
    assert_eq!(grads.get(a).unwrap().at(0), k as f64);
}
