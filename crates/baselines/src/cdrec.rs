//! CDRec \[11\]: missing-block recovery via iterative truncated centroid
//! decomposition (Khayati, Cudré-Mauroux, Böhlen) — the strongest conventional
//! baseline in the paper's comparison.

use crate::common::{default_rank, refresh_missing, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::cd::centroid_decomposition;
use mvi_tensor::Tensor;

/// Iterative centroid-decomposition recovery.
///
/// Exactly the three-step loop of §2.2: (1) initialize missing values by
/// interpolation/extrapolation, (2) compute the centroid decomposition and keep the
/// first `k` columns of `L` and `R`, (3) refill the missing entries from `L·Rᵀ`;
/// repeat until the normalized Frobenius change falls below `tol`.
#[derive(Clone, Copy, Debug)]
pub struct CdRec {
    /// Truncation rank (`None`: [`default_rank`]).
    pub rank: Option<usize>,
    /// Iteration cap.
    pub max_iters: usize,
    /// Normalized-Frobenius convergence threshold.
    pub tol: f64,
}

impl Default for CdRec {
    fn default() -> Self {
        Self { rank: None, max_iters: 30, tol: 1e-4 }
    }
}

impl Imputer for CdRec {
    fn name(&self) -> String {
        "CDRec".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let (m, t) = (task.n_series(), task.t_len());
        let rank = self.rank.unwrap_or_else(|| default_rank(m, t));
        let mut work = task.init.clone();
        for _ in 0..self.max_iters {
            let cd = centroid_decomposition(&work, rank);
            let estimate = cd.reconstruct();
            let delta = refresh_missing(&mut work, &estimate, &task.init, &task.available);
            if delta < self.tol {
                break;
            }
        }
        task.finish(obs, &work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::{LinearInterpImputer, MeanImputer};
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    fn correlated(n: usize, t: usize) -> Dataset {
        let values = Tensor::from_fn(&[n, t], |idx| {
            let (s, tt) = (idx[0], idx[1]);
            let shared = (tt as f64 / 19.0).sin() + 0.5 * (tt as f64 / 47.0).cos();
            (0.5 + s as f64 * 0.3) * shared
        });
        Dataset::new("corr", vec![DimSpec::indexed("series", "s", n)], values)
    }

    #[test]
    fn cdrec_near_exact_on_rank_one_data() {
        let ds = correlated(8, 150);
        let inst = Scenario::mcar(1.0).apply(&ds, 17);
        let out = CdRec { rank: Some(1), ..Default::default() }.impute(&inst.observed());
        let err = mae(&ds.values, &out, &inst.missing);
        assert!(err < 0.02, "MAE {err} on rank-1 data");
    }

    #[test]
    fn cdrec_beats_mean_and_interp_on_correlated_data() {
        let ds = generate_with_shape(DatasetName::Temperature, &[10], 600, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 9);
        let obs = inst.observed();
        let cdrec = mae(&ds.values, &CdRec::default().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        let interp = mae(&ds.values, &LinearInterpImputer.impute(&obs), &inst.missing);
        assert!(cdrec < mean, "cdrec {cdrec} vs mean {mean}");
        assert!(cdrec < interp, "cdrec {cdrec} vs interp {interp}");
    }

    #[test]
    fn cdrec_handles_missdisj_and_overlap() {
        let ds = correlated(6, 240);
        for scenario in [Scenario::MissDisj, Scenario::MissOver] {
            let inst = scenario.apply(&ds, 3);
            let out = CdRec::default().impute(&inst.observed());
            assert!(out.all_finite());
            let err = mae(&ds.values, &out, &inst.missing);
            assert!(err < 0.5, "{scenario:?} MAE {err}");
        }
    }

    #[test]
    fn blackout_degrades_to_interpolation_like_output() {
        // During a blackout no cross-series signal exists; CDRec must still return
        // finite values (the paper's Fig 4 shows it linearly interpolating).
        let ds = correlated(5, 300);
        let inst = Scenario::Blackout { block_len: 50 }.apply(&ds, 7);
        let out = CdRec::default().impute(&inst.observed());
        assert!(out.all_finite());
    }
}
