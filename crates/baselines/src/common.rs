//! Machinery shared by the conventional baselines.

use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::interpolate_series;
use mvi_tensor::{Mask, Tensor};

/// The flattened `series × time` matrix view used by all matrix-based baselines,
/// with missing entries pre-filled by per-series linear interpolation (the paper
/// notes CDRec "first uses interpolation/extrapolation to initialize the missing
/// values"; the SVD family does the same in the benchmark of \[12\]).
pub struct MatrixTask {
    /// Interpolation-initialized matrix `[n_series, T]`.
    pub init: Tensor,
    /// Availability mask `[n_series, T]`.
    pub available: Mask,
}

impl MatrixTask {
    /// Builds the flattened, interpolation-initialized view of an observed dataset.
    pub fn new(obs: &ObservedDataset) -> Self {
        let flat = obs.flattened();
        let mut init = flat.values.clone();
        for s in 0..flat.n_series() {
            let avail = flat.available.series(s).to_vec();
            interpolate_series(init.series_mut(s), &avail);
        }
        Self { init, available: flat.available }
    }

    /// Number of series (rows).
    pub fn n_series(&self) -> usize {
        self.init.rows()
    }

    /// Series length (columns).
    pub fn t_len(&self) -> usize {
        self.init.cols()
    }

    /// Writes `filled`'s entries at missing positions into a copy of the observed
    /// matrix (observed entries always keep their original values), reshaped back to
    /// the dataset's tensor shape.
    pub fn finish(&self, obs: &ObservedDataset, filled: &Tensor) -> Tensor {
        let mut out = obs.values.clone();
        for (i, (o, &a)) in out.data_mut().iter_mut().zip(self.available.data()).enumerate() {
            if !a {
                *o = filled.at(i);
            }
        }
        out
    }
}

/// Replaces the missing entries of `work` with those of `estimate` (observed
/// entries are restored from `observed`), returning the normalized Frobenius
/// distance between the old and new missing entries — the convergence criterion the
/// CDRec/SVDImp iterations use.
pub fn refresh_missing(
    work: &mut Tensor,
    estimate: &Tensor,
    observed: &Tensor,
    available: &Mask,
) -> f64 {
    let mut diff2 = 0.0;
    let mut norm2 = 0.0;
    for i in 0..work.len() {
        if available.at(i) {
            work.data_mut()[i] = observed.at(i);
        } else {
            let old = work.at(i);
            let new = estimate.at(i);
            diff2 += (new - old) * (new - old);
            norm2 += new * new;
            work.data_mut()[i] = new;
        }
    }
    if norm2 > 0.0 {
        (diff2 / norm2).sqrt()
    } else {
        0.0
    }
}

/// Pearson correlation between two series restricted to co-observed positions.
/// Returns 0 when fewer than 3 entries are co-observed or a variance vanishes.
pub fn pearson_co_observed(a: &[f64], b: &[f64], avail_a: &[bool], avail_b: &[bool]) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..a.len() {
        if avail_a[i] && avail_b[i] {
            xs.push(a[i]);
            ys.push(b[i]);
        }
    }
    if xs.len() < 3 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let mut num = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(&ys) {
        num += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    let denom = (vx * vy).sqrt();
    if denom < 1e-12 {
        0.0
    } else {
        num / denom
    }
}

/// Default factorization rank used by the SVD/CD family: a third of the smaller
/// matrix dimension, clamped to `[1, 10]` (the regime the benchmark of \[12\] tunes
/// these methods in).
pub fn default_rank(m: usize, n: usize) -> usize {
    (m.min(n) / 3).clamp(1, 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::scenarios::Scenario;

    fn toy_obs() -> ObservedDataset {
        let ds = Dataset::new(
            "t",
            vec![DimSpec::indexed("series", "s", 4)],
            Tensor::from_fn(&[4, 50], |idx| ((idx[0] + 1) * (idx[1] + 1)) as f64 / 50.0),
        );
        Scenario::mcar(1.0).apply(&ds, 5).observed()
    }

    #[test]
    fn matrix_task_interpolates_missing() {
        let obs = toy_obs();
        let task = MatrixTask::new(&obs);
        assert_eq!(task.n_series(), 4);
        assert_eq!(task.t_len(), 50);
        assert!(task.init.all_finite());
        // No zeros left at interior missing positions of a strictly positive series.
        for s in 0..4 {
            for (t, &a) in task.available.series(s).iter().enumerate() {
                if !a {
                    assert!(task.init.series(s)[t] > 0.0, "series {s} t {t} not interpolated");
                }
            }
        }
    }

    #[test]
    fn finish_keeps_observed_entries() {
        let obs = toy_obs();
        let task = MatrixTask::new(&obs);
        let fake = Tensor::full(&[4, 50], -99.0);
        let out = task.finish(&obs, &fake);
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            } else {
                assert_eq!(out.at(i), -99.0);
            }
        }
    }

    #[test]
    fn refresh_missing_converges_to_zero_on_fixed_point() {
        let obs = toy_obs();
        let task = MatrixTask::new(&obs);
        let mut work = task.init.clone();
        let estimate = work.clone();
        let delta = refresh_missing(&mut work, &estimate, &task.init, &task.available);
        assert!(delta < 1e-12);
    }

    #[test]
    fn pearson_handles_perfect_and_anti_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [4.0, 3.0, 2.0, 1.0];
        let all = [true; 4];
        assert!((pearson_co_observed(&a, &b, &all, &all) - 1.0).abs() < 1e-12);
        assert!((pearson_co_observed(&a, &c, &all, &all) + 1.0).abs() < 1e-12);
        // Too few co-observed points -> 0.
        let sparse = [true, true, false, false];
        assert_eq!(pearson_co_observed(&a, &b, &sparse, &all), 0.0);
    }

    #[test]
    fn default_rank_is_clamped() {
        assert_eq!(default_rank(10, 1000), 3);
        assert_eq!(default_rank(2, 1000), 1);
        assert_eq!(default_rank(100, 1000), 10);
    }
}
