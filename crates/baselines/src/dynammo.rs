//! DynaMMO \[14\]: mining and summarization of co-evolving sequences with missing
//! values (Li, McCann, Pollard, Faloutsos).
//!
//! Groups similar series, fits a linear dynamical system per group with
//! Expectation–Maximization (Kalman filter + RTS smoother in the E-step, closed-form
//! parameter updates in the M-step, observation rows dropped at missing positions),
//! and imputes missing entries from the smoothed latent states.

use crate::common::{pearson_co_observed, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::ops::{matmul, matmul_nt, matmul_tn, matvec, transpose};
use mvi_linalg::solve::inverse;
use mvi_tensor::Tensor;

/// Kalman-EM imputation over groups of co-evolving series.
#[derive(Clone, Copy, Debug)]
pub struct DynaMmo {
    /// Latent dimension (`None`: `min(group_size + 1, 5)`).
    pub hidden: Option<usize>,
    /// EM iterations per group.
    pub em_iters: usize,
    /// Maximum series per group.
    pub max_group: usize,
    /// Minimum mean |correlation| to join an existing group.
    pub corr_threshold: f64,
}

impl Default for DynaMmo {
    fn default() -> Self {
        Self { hidden: None, em_iters: 8, max_group: 6, corr_threshold: 0.5 }
    }
}

impl Imputer for DynaMmo {
    fn name(&self) -> String {
        "DynaMMO".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let groups = group_series(&task, self.max_group, self.corr_threshold);
        let mut filled = task.init.clone();
        for group in &groups {
            let h = self.hidden.unwrap_or_else(|| (group.len() + 1).min(5));
            if let Some(est) = fit_group(&task, group, h, self.em_iters) {
                for (gi, &s) in group.iter().enumerate() {
                    for tt in 0..task.t_len() {
                        if !task.available.series(s)[tt] {
                            filled.set_m(s, tt, est.m(gi, tt));
                        }
                    }
                }
            }
            // On EM failure the interpolation init is kept for this group.
        }
        task.finish(obs, &filled)
    }
}

/// Greedy correlation grouping: join the best-matching group above the threshold,
/// otherwise open a new one.
fn group_series(task: &MatrixTask, max_group: usize, threshold: f64) -> Vec<Vec<usize>> {
    let m = task.n_series();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for s in 0..m {
        let mut best: Option<(usize, f64)> = None;
        for (gi, group) in groups.iter().enumerate() {
            if group.len() >= max_group {
                continue;
            }
            let mean_corr = group
                .iter()
                .map(|&o| {
                    pearson_co_observed(
                        task.init.row(s),
                        task.init.row(o),
                        task.available.series(s),
                        task.available.series(o),
                    )
                    .abs()
                })
                .sum::<f64>()
                / group.len() as f64;
            if mean_corr >= threshold && best.is_none_or(|(_, b)| mean_corr > b) {
                best = Some((gi, mean_corr));
            }
        }
        match best {
            Some((gi, _)) => groups[gi].push(s),
            None => groups.push(vec![s]),
        }
    }
    groups
}

/// EM-fitted LDS state for one group; returns the smoothed reconstruction
/// `[group_size, T]`, or `None` if the numerics broke down.
fn fit_group(task: &MatrixTask, group: &[usize], h: usize, em_iters: usize) -> Option<Tensor> {
    let mg = group.len();
    let t_len = task.t_len();
    // Observations with availability, in group-local row order.
    let x = {
        let mut x = Tensor::zeros(&[mg, t_len]);
        for (gi, &s) in group.iter().enumerate() {
            x.row_mut(gi).copy_from_slice(task.init.row(s));
        }
        x
    };
    let avail: Vec<Vec<bool>> = group.iter().map(|&s| task.available.series(s).to_vec()).collect();

    // Initial parameters: slow rotation-free dynamics, pseudo-random observation map.
    let mut a = Tensor::from_fn(&[h, h], |idx| if idx[0] == idx[1] { 0.95 } else { 0.0 });
    let mut c = Tensor::from_fn(&[mg, h], |idx| {
        let v = (idx[0] * 31 + idx[1] * 17 + 7) % 13;
        v as f64 / 13.0 - 0.5
    });
    let mut q = 0.1f64;
    let mut r = 0.1f64;
    let mut mu0 = vec![0.0f64; h];

    let mut recon = None;
    for _ in 0..em_iters {
        let e = e_step(&x, &avail, &a, &c, q, r, &mu0)?;
        // M-step.
        let (s11, s10, s00) = sufficient_stats(&e, h);
        let s00_inv = inverse(&regularized(&s00, 1e-6))?;
        a = matmul(&s10, &s00_inv);
        let aq = {
            // q = trace(S11 - A·S10ᵀ) / ((T-1)·h)
            let as10t = matmul_nt(&a, &s10);
            let mut tr = 0.0;
            for d in 0..h {
                tr += s11.m(d, d) - as10t.m(d, d);
            }
            (tr / ((t_len - 1).max(1) as f64 * h as f64)).max(1e-6)
        };
        q = aq;
        // C rows over each series' observed times.
        let mut r_acc = 0.0;
        let mut r_count = 0usize;
        for gi in 0..mg {
            let mut num = vec![0.0; h];
            let mut den = Tensor::zeros(&[h, h]);
            for tt in 0..t_len {
                if !avail[gi][tt] {
                    continue;
                }
                let z = &e.z_smooth[tt];
                let p = &e.p_full[tt];
                for aa in 0..h {
                    num[aa] += x.m(gi, tt) * z[aa];
                    for bb in 0..h {
                        let v = den.m(aa, bb) + p.m(aa, bb);
                        den.set_m(aa, bb, v);
                    }
                }
            }
            let den_inv = inverse(&regularized(&den, 1e-6))?;
            let crow = matvec(&den_inv, &num);
            c.row_mut(gi).copy_from_slice(&crow);
        }
        for gi in 0..mg {
            for tt in 0..t_len {
                if !avail[gi][tt] {
                    continue;
                }
                let z = &e.z_smooth[tt];
                let p = &e.p_full[tt];
                let pred: f64 = c.row(gi).iter().zip(z).map(|(&ci, &zi)| ci * zi).sum();
                let cvar: f64 = {
                    let cp = matvec(p, c.row(gi));
                    c.row(gi).iter().zip(&cp).map(|(&ci, &v)| ci * v).sum()
                };
                let resid = x.m(gi, tt) - pred;
                r_acc += resid * resid + (cvar - pred * pred).max(0.0);
                r_count += 1;
            }
        }
        r = (r_acc / r_count.max(1) as f64).max(1e-6);
        mu0 = e.z_smooth[0].clone();
        // Reconstruction from the smoothed states.
        let mut out = Tensor::zeros(&[mg, t_len]);
        for tt in 0..t_len {
            let z = &e.z_smooth[tt];
            for gi in 0..mg {
                let v: f64 = c.row(gi).iter().zip(z).map(|(&ci, &zi)| ci * zi).sum();
                out.set_m(gi, tt, v);
            }
        }
        if !out.all_finite() {
            return recon; // keep the last good reconstruction
        }
        recon = Some(out);
    }
    recon
}

struct EStep {
    z_smooth: Vec<Vec<f64>>,
    /// `E[z_t z_tᵀ] = P̂_t + ẑ_t ẑ_tᵀ`.
    p_full: Vec<Tensor>,
    /// `E[z_t z_{t-1}ᵀ]` for `t ≥ 1`.
    p_cross: Vec<Tensor>,
}

/// Kalman filter + RTS smoother with observation rows dropped at missing entries.
fn e_step(
    x: &Tensor,
    avail: &[Vec<bool>],
    a: &Tensor,
    c: &Tensor,
    q: f64,
    r: f64,
    mu0: &[f64],
) -> Option<EStep> {
    let (mg, t_len) = (x.rows(), x.cols());
    let h = a.rows();
    let eye = mvi_linalg::ops::identity(h);

    let mut z_filt: Vec<Vec<f64>> = Vec::with_capacity(t_len);
    let mut p_filt: Vec<Tensor> = Vec::with_capacity(t_len);
    let mut z_pred_all: Vec<Vec<f64>> = Vec::with_capacity(t_len);
    let mut p_pred_all: Vec<Tensor> = Vec::with_capacity(t_len);

    for tt in 0..t_len {
        let (z_pred, p_pred) = if tt == 0 {
            (mu0.to_vec(), eye.clone())
        } else {
            let zp = matvec(a, &z_filt[tt - 1]);
            let mut pp = matmul_nt(&matmul(a, &p_filt[tt - 1]), a);
            for d in 0..h {
                let v = pp.m(d, d) + q;
                pp.set_m(d, d, v);
            }
            (zp, pp)
        };
        let observed: Vec<usize> = (0..mg).filter(|&gi| avail[gi][tt]).collect();
        let (z_new, p_new) = if observed.is_empty() {
            (z_pred.clone(), p_pred.clone())
        } else {
            let o = observed.len();
            let mut c_t = Tensor::zeros(&[o, h]);
            let mut y = vec![0.0; o];
            for (row, &gi) in observed.iter().enumerate() {
                c_t.row_mut(row).copy_from_slice(c.row(gi));
                y[row] = x.m(gi, tt);
            }
            // S = C P Cᵀ + r·I ; K = P Cᵀ S⁻¹.
            let pct = matmul_nt(&p_pred, &c_t);
            let mut s = matmul(&c_t, &pct);
            for d in 0..o {
                let v = s.m(d, d) + r;
                s.set_m(d, d, v);
            }
            let s_inv = inverse(&s)?;
            let k = matmul(&pct, &s_inv);
            let innov: Vec<f64> = {
                let cz = matvec(&c_t, &z_pred);
                y.iter().zip(&cz).map(|(&yi, &ci)| yi - ci).collect()
            };
            let corr = matvec(&k, &innov);
            let z_new: Vec<f64> = z_pred.iter().zip(&corr).map(|(&z, &d)| z + d).collect();
            let kc = matmul(&k, &c_t);
            let mut ikc = eye.clone();
            for aa in 0..h {
                for bb in 0..h {
                    let v = ikc.m(aa, bb) - kc.m(aa, bb);
                    ikc.set_m(aa, bb, v);
                }
            }
            (z_new, matmul(&ikc, &p_pred))
        };
        z_filt.push(z_new);
        p_filt.push(p_new);
        z_pred_all.push(z_pred);
        p_pred_all.push(p_pred);
    }

    // RTS smoother.
    let mut z_smooth = z_filt.clone();
    let mut p_smooth = p_filt.clone();
    let mut j_all: Vec<Tensor> = Vec::with_capacity(t_len.saturating_sub(1));
    for tt in (0..t_len - 1).rev() {
        let p_pred_next_inv = inverse(&regularized(&p_pred_all[tt + 1], 1e-9))?;
        let j = matmul(&matmul_nt(&p_filt[tt], a), &p_pred_next_inv);
        let dz: Vec<f64> =
            z_smooth[tt + 1].iter().zip(&z_pred_all[tt + 1]).map(|(&s, &p)| s - p).collect();
        let corr = matvec(&j, &dz);
        for (zi, &ci) in z_smooth[tt].iter_mut().zip(&corr) {
            *zi += ci;
        }
        let dp = p_smooth[tt + 1].zip_map(&p_pred_all[tt + 1], |s, p| s - p);
        let jd = matmul(&matmul(&j, &dp), &transpose(&j));
        p_smooth[tt] = p_filt[tt].zip_map(&jd, |a, b| a + b);
        j_all.push(j);
    }
    j_all.reverse(); // j_all[tt] is J_t for tt in 0..T-1

    let p_full: Vec<Tensor> = (0..t_len)
        .map(|tt| {
            let z = &z_smooth[tt];
            Tensor::from_fn(&[h, h], |idx| p_smooth[tt].m(idx[0], idx[1]) + z[idx[0]] * z[idx[1]])
        })
        .collect();
    let p_cross: Vec<Tensor> = (1..t_len)
        .map(|tt| {
            // E[z_t z_{t-1}ᵀ] ≈ P̂_t J_{t-1}ᵀ + ẑ_t ẑ_{t-1}ᵀ.
            let base = matmul_nt(&p_smooth[tt], &j_all[tt - 1]);
            let (zt, ztm1) = (&z_smooth[tt], &z_smooth[tt - 1]);
            Tensor::from_fn(&[h, h], |idx| base.m(idx[0], idx[1]) + zt[idx[0]] * ztm1[idx[1]])
        })
        .collect();
    Some(EStep { z_smooth, p_full, p_cross })
}

fn sufficient_stats(e: &EStep, h: usize) -> (Tensor, Tensor, Tensor) {
    let t_len = e.z_smooth.len();
    let mut s11 = Tensor::zeros(&[h, h]);
    let mut s10 = Tensor::zeros(&[h, h]);
    let mut s00 = Tensor::zeros(&[h, h]);
    for tt in 1..t_len {
        s11.add_assign(&e.p_full[tt]);
        s10.add_assign(&e.p_cross[tt - 1]);
        s00.add_assign(&e.p_full[tt - 1]);
    }
    (s11, s10, s00)
}

fn regularized(m: &Tensor, eps: f64) -> Tensor {
    let n = m.rows();
    let mut out = m.clone();
    for d in 0..n {
        let v = out.m(d, d) + eps;
        out.set_m(d, d, v);
    }
    out
}

// matmul_tn currently unused but kept for parity with the EM derivation notes.
#[allow(unused_imports)]
use matmul_tn as _matmul_tn_keepalive;

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn grouping_separates_uncorrelated_series() {
        // Two correlated pairs and one loner.
        let values = Tensor::from_fn(&[5, 120], |idx| {
            let (s, tt) = (idx[0], idx[1]);
            match s {
                0 | 1 => (tt as f64 / 9.0).sin() * (1.0 + s as f64 * 0.1),
                2 | 3 => (tt as f64 / 4.0).cos() * (1.0 + s as f64 * 0.1),
                _ => ((tt * 37 % 101) as f64 / 101.0) - 0.5,
            }
        });
        let ds = Dataset::new("g", vec![DimSpec::indexed("series", "s", 5)], values);
        let inst = Scenario::mcar(0.5).apply(&ds, 2);
        let task = MatrixTask::new(&inst.observed());
        let groups = group_series(&task, 6, 0.5);
        let find = |s: usize| groups.iter().position(|g| g.contains(&s)).unwrap();
        assert_eq!(find(0), find(1));
        assert_eq!(find(2), find(3));
        assert_ne!(find(0), find(2));
    }

    #[test]
    fn dynammo_tracks_coevolving_series() {
        let ds = generate_with_shape(DatasetName::Temperature, &[8], 300, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 6);
        let obs = inst.observed();
        let dyn_err = mae(&ds.values, &DynaMmo::default().impute(&obs), &inst.missing);
        let mean_err = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(dyn_err < mean_err, "dynammo {dyn_err} vs mean {mean_err}");
    }

    #[test]
    fn dynammo_finite_on_blackout() {
        let ds = generate_with_shape(DatasetName::Chlorine, &[6], 250, 3);
        let inst = Scenario::Blackout { block_len: 30 }.apply(&ds, 8);
        let out = DynaMmo::default().impute(&inst.observed());
        assert!(out.all_finite());
    }

    #[test]
    fn kalman_smoother_recovers_smooth_latent() {
        // A single noiseless AR(1) series: the smoothed reconstruction should be
        // close to the data itself at observed points.
        let t_len = 150;
        let mut x = vec![1.0f64];
        for i in 1..t_len {
            x.push(0.9 * x[i - 1] + 0.05 * ((i % 7) as f64 - 3.0) / 3.0);
        }
        let values = Tensor::from_vec(vec![1, t_len], x);
        let ds = Dataset::new("ar1", vec![DimSpec::indexed("series", "s", 1)], values.clone());
        let inst = Scenario::mcar(1.0).apply(&ds, 12);
        let out = DynaMmo::default().impute(&inst.observed());
        let err = mae(&values, &out, &inst.missing);
        assert!(err < 0.25, "MAE {err}");
    }
}
