//! The seven conventional imputation baselines of §5.1.3 / §2.2.
//!
//! All methods view the (possibly multidimensional) dataset as a flattened
//! `series × time` matrix, exactly as the paper notes ("all these prior methods are
//! for single-dimensional series", §2.2):
//!
//! * [`svdimp`] — SVDImp \[24\]: iterative truncated-SVD refinement.
//! * [`softimpute`] — SoftImpute \[19\]: iterative soft-thresholded SVD.
//! * [`svt`] — SVT \[2\]: singular value thresholding on a gradient sweep.
//! * [`cdrec`] — CDRec \[11\]: iterative truncated centroid decomposition.
//! * [`trmf`] — TRMF \[28\]: matrix factorization with autoregressive temporal
//!   regularization, solved by alternating ridge regressions.
//! * [`stmvl`] — STMVL: four-view spatio-temporal collaborative filtering with a
//!   least-squares view combiner (correlation-derived distances replace the missing
//!   sensor coordinates; see `DESIGN.md` §2).
//! * [`dynammo`] — DynaMMO \[14\]: Kalman-filter/EM over groups of co-evolving series
//!   with missing-aware observations.
//!
//! [`common`] holds shared machinery (interpolation init, Pearson correlation on
//! co-observed entries, convergence driver).

pub mod cdrec;
pub mod common;
pub mod dynammo;
pub mod softimpute;
pub mod stmvl;
pub mod svdimp;
pub mod svt;
pub mod trmf;

pub use cdrec::CdRec;
pub use dynammo::DynaMmo;
pub use softimpute::SoftImpute;
pub use stmvl::Stmvl;
pub use svdimp::SvdImp;
pub use svt::Svt;
pub use trmf::Trmf;
