//! SoftImpute \[19\]: spectral-regularized matrix completion via iterative
//! soft-thresholded SVD (Mazumder, Hastie, Tibshirani).

use crate::common::{refresh_missing, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::svd::svd;
use mvi_tensor::Tensor;

/// Iterative soft-thresholded SVD.
///
/// Each iteration computes the SVD of the current completion, shrinks every
/// singular value by `λ = lambda_frac · σ_max(init)` (soft-thresholding — the
/// proximal step of nuclear-norm regularization) and refills the missing entries
/// from the shrunk reconstruction.
#[derive(Clone, Copy, Debug)]
pub struct SoftImpute {
    /// Shrinkage as a fraction of the initial largest singular value.
    pub lambda_frac: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on the missing entries.
    pub tol: f64,
}

impl Default for SoftImpute {
    fn default() -> Self {
        Self { lambda_frac: 0.15, max_iters: 30, tol: 1e-4 }
    }
}

impl Imputer for SoftImpute {
    fn name(&self) -> String {
        "SoftImpute".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let mut work = task.init.clone();
        let mut lambda = None;
        for _ in 0..self.max_iters {
            let dec = svd(&work);
            let lam =
                *lambda.get_or_insert(self.lambda_frac * dec.s.first().copied().unwrap_or(0.0));
            let estimate = dec.reconstruct_with(|s| (s - lam).max(0.0));
            let delta = refresh_missing(&mut work, &estimate, &task.init, &task.available);
            if delta < self.tol {
                break;
            }
        }
        task.finish(obs, &work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    fn noisy_low_rank(n: usize, t: usize) -> Dataset {
        let values = Tensor::from_fn(&[n, t], |idx| {
            let (s, tt) = (idx[0], idx[1]);
            let b1 = (tt as f64 / 13.0).sin();
            let b2 = (tt as f64 / 29.0).cos();
            let noise = (((s * 7919 + tt * 104729) % 1000) as f64 / 1000.0 - 0.5) * 0.1;
            (1.0 + s as f64 * 0.5) * b1 + (1.0 + (n - s) as f64 * 0.3) * b2 + noise
        });
        Dataset::new("noisy", vec![DimSpec::indexed("series", "s", n)], values)
    }

    #[test]
    fn beats_mean_imputation() {
        let ds = noisy_low_rank(10, 250);
        let inst = Scenario::mcar(1.0).apply(&ds, 8);
        let obs = inst.observed();
        let soft = mae(&ds.values, &SoftImpute::default().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(soft < mean, "soft {soft} vs mean {mean}");
    }

    #[test]
    fn stronger_shrinkage_gives_lower_rank_behaviour() {
        // With lambda ~ sigma_max, all but the leading component is suppressed; the
        // result should still be finite and observed entries intact.
        let ds = noisy_low_rank(6, 120);
        let inst = Scenario::mcar(1.0).apply(&ds, 4);
        let obs = inst.observed();
        let out = SoftImpute { lambda_frac: 0.9, ..Default::default() }.impute(&obs);
        assert!(out.all_finite());
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }

    #[test]
    fn handles_missdisj() {
        let ds = noisy_low_rank(5, 200);
        let inst = Scenario::MissDisj.apply(&ds, 2);
        let out = SoftImpute::default().impute(&inst.observed());
        let err = mae(&ds.values, &out, &inst.missing);
        assert!(out.all_finite());
        assert!(err < 1.5, "MAE {err}");
    }
}
