//! STMVL: spatio-temporal multi-view learning for missing value recovery.
//!
//! Four single-view estimators — global temporal (exponential smoothing), global
//! spatial (inverse-distance weighting), local temporal (timestamp collaborative
//! filtering) and local spatial (series collaborative filtering) — combined by a
//! least-squares regression fitted on observed cells (leave-one-out, so the combiner
//! never sees the target value through any view).
//!
//! The original method requires sensor coordinates for its spatial views; the
//! datasets here have none, so spatial distance is derived from Pearson correlation
//! on co-observed entries (`d = 1 − ρ`), the standard coordinate-free adaptation
//! (see `DESIGN.md` §2).

use crate::common::{pearson_co_observed, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::solve::solve_spd;
use mvi_tensor::Tensor;

/// Four-view spatio-temporal imputation with a learned view combiner.
#[derive(Clone, Copy, Debug)]
pub struct Stmvl {
    /// Half-width of the local temporal window.
    pub window: usize,
    /// Exponential decay per step of temporal distance.
    pub decay: f64,
    /// Number of most-similar series used by the spatial CF view.
    pub top_k: usize,
    /// Cap on combiner training cells (sampled deterministically).
    pub max_train_cells: usize,
}

impl Default for Stmvl {
    fn default() -> Self {
        Self { window: 20, decay: 0.85, top_k: 5, max_train_cells: 8000 }
    }
}

struct Views<'a> {
    task: &'a MatrixTask,
    /// Pairwise series correlation on co-observed entries.
    corr: Tensor,
    /// Per-series list of top-k most correlated series (by |ρ|).
    top: Vec<Vec<usize>>,
    cfg: Stmvl,
}

impl<'a> Views<'a> {
    fn new(task: &'a MatrixTask, obs: &ObservedDataset, cfg: Stmvl) -> Self {
        let m = task.n_series();
        let flat = obs.flattened();
        let mut corr = Tensor::zeros(&[m, m]);
        for i in 0..m {
            corr.set_m(i, i, 1.0);
            for j in (i + 1)..m {
                let rho = pearson_co_observed(
                    flat.values.series(i),
                    flat.values.series(j),
                    flat.available.series(i),
                    flat.available.series(j),
                );
                corr.set_m(i, j, rho);
                corr.set_m(j, i, rho);
            }
        }
        let top = (0..m)
            .map(|i| {
                let mut order: Vec<usize> = (0..m).filter(|&j| j != i).collect();
                order
                    .sort_by(|&a, &b| corr.m(i, b).abs().partial_cmp(&corr.m(i, a).abs()).unwrap());
                order.truncate(cfg.top_k);
                order
            })
            .collect();
        Self { task, corr, top, cfg }
    }

    /// Global temporal view: exponentially decayed mean of the series' own observed
    /// neighbours (self excluded).
    fn ses(&self, i: usize, t: usize) -> f64 {
        let t_len = self.task.t_len();
        let w = self.cfg.window;
        let lo = t.saturating_sub(w);
        let hi = (t + w + 1).min(t_len);
        let avail = self.task.available.series(i);
        let vals = self.task.init.row(i);
        let mut num = 0.0;
        let mut den = 0.0;
        for tt in lo..hi {
            if tt == t || !avail[tt] {
                continue;
            }
            let wgt = self.cfg.decay.powi((tt as i64 - t as i64).unsigned_abs() as i32);
            num += wgt * vals[tt];
            den += wgt;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Global spatial view: inverse-(correlation-)distance weighting over all other
    /// series observed at `t`.
    fn idw(&self, i: usize, t: usize) -> f64 {
        let m = self.task.n_series();
        let mut num = 0.0;
        let mut den = 0.0;
        for j in 0..m {
            if j == i || !self.task.available.series(j)[t] {
                continue;
            }
            let d = (1.0 - self.corr.m(i, j)).max(0.05);
            let w = 1.0 / (d * d);
            num += w * self.task.init.m(j, t);
            den += w;
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Local spatial CF: signed-correlation weighted average over the top-k similar
    /// series observed at `t` (negative correlation flips the contribution).
    fn ucf(&self, i: usize, t: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for &j in &self.top[i] {
            if !self.task.available.series(j)[t] {
                continue;
            }
            let rho = self.corr.m(i, j);
            num += rho * self.task.init.m(j, t);
            den += rho.abs();
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    /// Local temporal CF: correlation between time *columns* inside the window,
    /// weighting the series' own values at similar timestamps.
    fn icf(&self, i: usize, t: usize) -> f64 {
        let t_len = self.task.t_len();
        let m = self.task.n_series();
        let w = self.cfg.window;
        let lo = t.saturating_sub(w);
        let hi = (t + w + 1).min(t_len);
        let avail_i = self.task.available.series(i);
        let mut num = 0.0;
        let mut den = 0.0;
        for tt in lo..hi {
            if tt == t || !avail_i[tt] {
                continue;
            }
            // Column similarity over series co-observed at both timestamps.
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for j in 0..m {
                if j != i && self.task.available.series(j)[t] && self.task.available.series(j)[tt] {
                    xs.push(self.task.init.m(j, t));
                    ys.push(self.task.init.m(j, tt));
                }
            }
            if xs.len() < 3 {
                continue;
            }
            let all = vec![true; xs.len()];
            let rho = pearson_co_observed(&xs, &ys, &all, &all);
            num += rho * self.task.init.m(i, tt);
            den += rho.abs();
        }
        if den > 0.0 {
            num / den
        } else {
            0.0
        }
    }

    fn features(&self, i: usize, t: usize) -> [f64; 5] {
        [self.ses(i, t), self.idw(i, t), self.ucf(i, t), self.icf(i, t), 1.0]
    }
}

impl Imputer for Stmvl {
    fn name(&self) -> String {
        "STMVL".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let views = Views::new(&task, obs, *self);
        let (m, t_len) = (task.n_series(), task.t_len());

        // Fit the view combiner on a deterministic sample of observed cells.
        let observed_cells: Vec<(usize, usize)> = {
            let mut cells = Vec::new();
            for i in 0..m {
                for t in 0..t_len {
                    if task.available.series(i)[t] {
                        cells.push((i, t));
                    }
                }
            }
            let stride = (cells.len() / self.max_train_cells).max(1);
            cells.into_iter().step_by(stride).collect()
        };
        let mut gram = Tensor::zeros(&[5, 5]);
        let mut rhs = [0.0f64; 5];
        for &(i, t) in &observed_cells {
            let f = views.features(i, t);
            let y = task.init.m(i, t);
            for a in 0..5 {
                rhs[a] += f[a] * y;
                for b in a..5 {
                    let v = gram.m(a, b) + f[a] * f[b];
                    gram.set_m(a, b, v);
                }
            }
        }
        for a in 0..5 {
            for b in 0..a {
                gram.set_m(a, b, gram.m(b, a));
            }
            let v = gram.m(a, a) + 1e-6;
            gram.set_m(a, a, v);
        }
        // Equal-weight fallback if the normal equations are degenerate.
        let weights = solve_spd(&gram, &rhs).unwrap_or([0.25, 0.25, 0.25, 0.25, 0.0].to_vec());

        let mut filled = task.init.clone();
        for i in 0..m {
            for t in 0..t_len {
                if task.available.series(i)[t] {
                    continue;
                }
                let f = views.features(i, t);
                let est: f64 = f.iter().zip(&weights).map(|(&x, &w)| x * w).sum();
                filled.set_m(i, t, est);
            }
        }
        task.finish(obs, &filled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn stmvl_beats_mean_on_correlated_data() {
        let ds = generate_with_shape(DatasetName::AirQ, &[8], 300, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 6);
        let obs = inst.observed();
        let stmvl = mae(&ds.values, &Stmvl::default().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(stmvl < mean, "stmvl {stmvl} vs mean {mean}");
    }

    #[test]
    fn views_are_leave_one_out() {
        // On observed cells the SES view must not read the cell itself: plant one
        // extreme value and check the view at that cell ignores it.
        let ds = generate_with_shape(DatasetName::Gas, &[5], 200, 1);
        let inst = Scenario::mcar(0.5).apply(&ds, 2);
        let obs = inst.observed();
        let task = MatrixTask::new(&obs);
        let views = Views::new(&task, &obs, Stmvl::default());
        let est = views.ses(0, 100);
        // The estimate is a weighted mean of neighbours, so it must differ from the
        // exact centre value in general.
        assert!(est.is_finite());
        assert!((est - task.init.m(0, 100)).abs() > 1e-12 || est == 0.0);
    }

    #[test]
    fn stmvl_finite_on_blackout() {
        let ds = generate_with_shape(DatasetName::AirQ, &[6], 250, 9);
        let inst = Scenario::Blackout { block_len: 60 }.apply(&ds, 4);
        let out = Stmvl::default().impute(&inst.observed());
        assert!(out.all_finite());
    }

    #[test]
    fn combiner_prefers_informative_views() {
        // On strongly cross-correlated data, the spatial views carry signal; the
        // method should comfortably beat a pure temporal-mean imputation.
        let ds = generate_with_shape(DatasetName::Temperature, &[10], 300, 7);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let err = mae(&ds.values, &Stmvl::default().impute(&obs), &inst.missing);
        assert!(err < 0.6, "MAE {err}");
    }
}
