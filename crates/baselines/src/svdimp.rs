//! SVDImp \[24\]: iterative truncated-SVD imputation (Troyanskaya et al.).

use crate::common::{default_rank, refresh_missing, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::svd::svd;
use mvi_tensor::Tensor;

/// Iterative truncated-SVD imputation.
///
/// Initializes missing values by interpolation, then alternates (1) rank-`k` SVD of
/// the completed matrix and (2) replacing the missing entries with the low-rank
/// reconstruction, until the normalized change of the missing entries drops below
/// `tol` (or `max_iters`).
#[derive(Clone, Copy, Debug)]
pub struct SvdImp {
    /// Truncation rank (`None`: [`default_rank`] of the matrix).
    pub rank: Option<usize>,
    /// Iteration cap.
    pub max_iters: usize,
    /// Normalized-Frobenius convergence threshold on the missing entries.
    pub tol: f64,
}

impl Default for SvdImp {
    fn default() -> Self {
        Self { rank: None, max_iters: 30, tol: 1e-4 }
    }
}

impl Imputer for SvdImp {
    fn name(&self) -> String {
        "SVDImp".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let (m, t) = (task.n_series(), task.t_len());
        let rank = self.rank.unwrap_or_else(|| default_rank(m, t));
        let mut work = task.init.clone();
        for _ in 0..self.max_iters {
            let dec = svd(&work);
            let estimate = dec.reconstruct(rank);
            let delta = refresh_missing(&mut work, &estimate, &task.init, &task.available);
            if delta < self.tol {
                break;
            }
        }
        task.finish(obs, &work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    /// Exactly low-rank data: series are scalar multiples of two basis curves.
    fn low_rank_dataset(n: usize, t: usize) -> Dataset {
        let values = Tensor::from_fn(&[n, t], |idx| {
            let (s, tt) = (idx[0], idx[1]);
            let b1 = (tt as f64 / 17.0).sin();
            let b2 = (tt as f64 / 5.0).cos();
            (1.0 + s as f64) * b1 + (n - s) as f64 * 0.5 * b2
        });
        Dataset::new("lowrank", vec![DimSpec::indexed("series", "s", n)], values)
    }

    #[test]
    fn recovers_low_rank_data_almost_exactly() {
        let ds = low_rank_dataset(8, 200);
        let inst = Scenario::mcar(1.0).apply(&ds, 11);
        let out = SvdImp { rank: Some(2), ..Default::default() }.impute(&inst.observed());
        let err = mae(&ds.values, &out, &inst.missing);
        assert!(err < 0.05, "MAE {err} on exactly rank-2 data");
    }

    #[test]
    fn beats_mean_imputation_on_correlated_data() {
        let ds = low_rank_dataset(8, 200);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let svd_err = mae(&ds.values, &SvdImp::default().impute(&obs), &inst.missing);
        let mean_err = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(svd_err < mean_err, "svd {svd_err} vs mean {mean_err}");
    }

    #[test]
    fn preserves_observed_entries() {
        let ds = low_rank_dataset(5, 100);
        let inst = Scenario::mcar(1.0).apply(&ds, 1);
        let obs = inst.observed();
        let out = SvdImp::default().impute(&obs);
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), ds.values.at(i));
            }
        }
    }

    #[test]
    fn survives_blackout() {
        let ds = low_rank_dataset(6, 300);
        let inst = Scenario::Blackout { block_len: 30 }.apply(&ds, 2);
        let out = SvdImp::default().impute(&inst.observed());
        assert!(out.all_finite());
    }
}
