//! SVT \[2\]: singular value thresholding for matrix completion (Cai, Candès, Shen).

use crate::common::MatrixTask;
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::svd::svd;
use mvi_tensor::Tensor;

/// Singular value thresholding.
///
/// Maintains a dual matrix `Y` (zero-initialized) and iterates
/// `Z = shrink_τ(SVD(Y))`, `Y ← Y + δ · P_Ω(X − Z)` where `P_Ω` projects onto the
/// observed entries. `τ` is set relative to the observed matrix's top singular
/// value and `δ` follows the standard `1.2 · mn/|Ω|` step-size rule.
#[derive(Clone, Copy, Debug)]
pub struct Svt {
    /// Threshold as a fraction of `σ_max` of the interpolation-initialized matrix.
    pub tau_frac: f64,
    /// Step-size multiplier on top of `mn/|Ω|`.
    pub delta_scale: f64,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on the relative observed-entry residual.
    pub tol: f64,
}

impl Default for Svt {
    fn default() -> Self {
        Self { tau_frac: 0.4, delta_scale: 1.2, max_iters: 60, tol: 1e-3 }
    }
}

impl Imputer for Svt {
    fn name(&self) -> String {
        "SVT".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let (m, t) = (task.n_series(), task.t_len());
        let n_obs = task.available.count().max(1);
        let delta = self.delta_scale * (m * t) as f64 / n_obs as f64;
        let tau = self.tau_frac * svd(&task.init).s.first().copied().unwrap_or(1.0);

        let observed = &task.init; // observed entries are exact here
        let obs_norm: f64 = {
            let mut acc = 0.0;
            for i in 0..observed.len() {
                if task.available.at(i) {
                    acc += observed.at(i) * observed.at(i);
                }
            }
            acc.sqrt().max(1e-12)
        };

        let mut y = Tensor::zeros(&[m, t]);
        let mut z = Tensor::zeros(&[m, t]);
        for _ in 0..self.max_iters {
            let dec = svd(&y);
            z = dec.reconstruct_with(|s| (s - tau).max(0.0));
            // Y += delta * P_obs(X - Z); track the observed residual for convergence.
            let mut resid2 = 0.0;
            for i in 0..y.len() {
                if task.available.at(i) {
                    let r = observed.at(i) - z.at(i);
                    resid2 += r * r;
                    y.data_mut()[i] += delta * r;
                }
            }
            if resid2.sqrt() / obs_norm < self.tol {
                break;
            }
        }
        task.finish(obs, &z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    fn rank2(n: usize, t: usize) -> Dataset {
        let values = Tensor::from_fn(&[n, t], |idx| {
            let (s, tt) = (idx[0], idx[1]);
            (s as f64 + 1.0) * (tt as f64 / 23.0).sin() + (tt as f64 / 7.0).cos() * 0.8
        });
        Dataset::new("rank2", vec![DimSpec::indexed("series", "s", n)], values)
    }

    #[test]
    fn svt_recovers_low_rank_structure() {
        let ds = rank2(8, 180);
        let inst = Scenario::mcar(1.0).apply(&ds, 13);
        let obs = inst.observed();
        let svt_err = mae(&ds.values, &Svt::default().impute(&obs), &inst.missing);
        let mean_err = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(svt_err < mean_err, "svt {svt_err} vs mean {mean_err}");
    }

    #[test]
    fn output_is_finite_under_blackout() {
        let ds = rank2(6, 200);
        let inst = Scenario::Blackout { block_len: 40 }.apply(&ds, 5);
        let out = Svt::default().impute(&inst.observed());
        assert!(out.all_finite());
    }

    #[test]
    fn observed_entries_untouched() {
        let ds = rank2(5, 120);
        let inst = Scenario::mcar(0.5).apply(&ds, 21);
        let obs = inst.observed();
        let out = Svt::default().impute(&obs);
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }
}
