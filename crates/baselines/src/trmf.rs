//! TRMF \[28\]: temporal regularized matrix factorization (Yu, Rao, Dhillon).
//!
//! Factorizes the observed matrix as `X ≈ F · Hᵀ` (`F`: series factors `[m,k]`,
//! `H`: temporal embeddings `[T,k]`) while constraining each temporal factor to an
//! autoregressive structure `h_{t,f} ≈ Σ_l w_{l,f} · h_{t-l,f}` over a lag set
//! `{1, L}` with `L` auto-detected from the data's autocorrelation. Solved by
//! alternating ridge regressions: series factors in closed form, temporal factors by
//! Gauss–Seidel sweeps over `t`, AR weights by per-factor least squares.

use crate::common::{default_rank, MatrixTask};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_linalg::solve::solve_spd;
use mvi_tensor::Tensor;

/// Temporal regularized matrix factorization.
#[derive(Clone, Copy, Debug)]
pub struct Trmf {
    /// Factorization rank (`None`: [`default_rank`]).
    pub rank: Option<usize>,
    /// Ridge weight on the series factors.
    pub lambda_f: f64,
    /// Weight of the autoregressive temporal penalty.
    pub lambda_x: f64,
    /// Ridge weight on the AR coefficients.
    pub lambda_w: f64,
    /// Number of alternating iterations.
    pub iters: usize,
    /// Gauss–Seidel sweeps over the temporal factors per iteration.
    pub sweeps: usize,
}

impl Default for Trmf {
    fn default() -> Self {
        Self { rank: None, lambda_f: 0.5, lambda_x: 0.5, lambda_w: 0.1, iters: 8, sweeps: 2 }
    }
}

/// Detects the dominant repetition lag from the mean autocorrelation of the
/// interpolation-initialized series (scanning lags `2..min(T/3, 400)`); falls back
/// to lag 2 when nothing repeats.
fn detect_seasonal_lag(init: &Tensor) -> usize {
    let (m, t) = (init.rows(), init.cols());
    let max_lag = (t / 3).min(400);
    if max_lag < 3 {
        return 2;
    }
    let mut best_lag = 2;
    let mut best_val = f64::NEG_INFINITY;
    for lag in 2..max_lag {
        let mut acc = 0.0;
        for s in 0..m {
            let x = init.row(s);
            let n = (t - lag) as f64;
            let mut num = 0.0;
            for i in 0..t - lag {
                num += x[i] * x[i + lag];
            }
            acc += num / n;
        }
        let val = acc / m as f64;
        if val > best_val {
            best_val = val;
            best_lag = lag;
        }
    }
    if best_val < 0.1 {
        2
    } else {
        best_lag
    }
}

impl Imputer for Trmf {
    fn name(&self) -> String {
        "TRMF".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let task = MatrixTask::new(obs);
        let (m, t) = (task.n_series(), task.t_len());
        let k = self.rank.unwrap_or_else(|| default_rank(m, t));
        let lags = {
            let season = detect_seasonal_lag(&task.init);
            if season <= 1 {
                vec![1]
            } else {
                vec![1, season]
            }
        };
        let lmax = *lags.iter().max().unwrap();

        // Deterministic pseudo-random init keeps the method reproducible.
        let mut f = Tensor::from_fn(&[m, k], |idx| {
            let h = (idx[0] as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(idx[1] as u64);
            ((h >> 33) % 1000) as f64 / 1000.0 - 0.5
        });
        let mut h = Tensor::from_fn(&[t, k], |idx| {
            let hh = (idx[0] as u64).wrapping_mul(0xD1B54A32D192ED03).wrapping_add(idx[1] as u64);
            ((hh >> 33) % 1000) as f64 / 1000.0 - 0.5
        });
        let mut w = Tensor::zeros(&[lags.len(), k]); // AR coefficients per (lag, factor)

        let x = &task.init;
        let avail = &task.available;
        for _ in 0..self.iters {
            update_series_factors(&mut f, &h, x, avail, self.lambda_f, k);
            for _ in 0..self.sweeps {
                update_temporal_factors(&mut h, &f, &w, x, avail, &lags, lmax, self.lambda_x, k);
            }
            update_ar_weights(&mut w, &h, &lags, lmax, self.lambda_w, k);
        }

        // Reconstruct the missing entries from F · Hᵀ.
        let mut filled = task.init.clone();
        for i in 0..m {
            for tt in 0..t {
                if !avail.series(i)[tt] {
                    let mut v = 0.0;
                    for kk in 0..k {
                        v += f.m(i, kk) * h.m(tt, kk);
                    }
                    filled.set_m(i, tt, v);
                }
            }
        }
        task.finish(obs, &filled)
    }
}

/// Ridge update of each series factor `f_i` over that series' observed entries.
fn update_series_factors(
    f: &mut Tensor,
    h: &Tensor,
    x: &Tensor,
    avail: &mvi_tensor::Mask,
    lambda_f: f64,
    k: usize,
) {
    let (m, t) = (x.rows(), x.cols());
    for i in 0..m {
        let mut gram = Tensor::zeros(&[k, k]);
        let mut rhs = vec![0.0; k];
        for tt in 0..t {
            if !avail.series(i)[tt] {
                continue;
            }
            let hrow = h.row(tt);
            for a in 0..k {
                rhs[a] += x.m(i, tt) * hrow[a];
                for b in a..k {
                    let v = gram.m(a, b) + hrow[a] * hrow[b];
                    gram.set_m(a, b, v);
                }
            }
        }
        for a in 0..k {
            for b in 0..a {
                gram.set_m(a, b, gram.m(b, a));
            }
            let v = gram.m(a, a) + lambda_f;
            gram.set_m(a, a, v);
        }
        if let Some(sol) = solve_spd(&gram, &rhs) {
            f.row_mut(i).copy_from_slice(&sol);
        }
    }
}

/// One Gauss–Seidel sweep over the temporal factors: each `h_t` solves a `k × k`
/// ridge system combining the data term with the AR penalties in which `h_t`
/// appears as target (`τ = t`) or as regressor (`τ = t + l`).
#[allow(clippy::too_many_arguments)]
fn update_temporal_factors(
    h: &mut Tensor,
    f: &Tensor,
    w: &Tensor,
    x: &Tensor,
    avail: &mvi_tensor::Mask,
    lags: &[usize],
    lmax: usize,
    lambda_x: f64,
    k: usize,
) {
    let (m, t) = (x.rows(), x.cols());
    for tt in 0..t {
        let mut gram = Tensor::zeros(&[k, k]);
        let mut rhs = vec![0.0; k];
        for i in 0..m {
            if !avail.series(i)[tt] {
                continue;
            }
            let frow = f.row(i);
            for a in 0..k {
                rhs[a] += x.m(i, tt) * frow[a];
                for b in a..k {
                    let v = gram.m(a, b) + frow[a] * frow[b];
                    gram.set_m(a, b, v);
                }
            }
        }
        for a in 0..k {
            for b in 0..a {
                gram.set_m(a, b, gram.m(b, a));
            }
        }
        // AR contributions are diagonal per factor because the coefficients are
        // per-factor scalars.
        for kk in 0..k {
            let mut diag = 1e-8; // numerical floor
            let mut r = 0.0;
            // τ = t: (h_t - Σ_l w_l h_{t-l})².
            if tt >= lmax {
                diag += lambda_x;
                let mut pred = 0.0;
                for (li, &l) in lags.iter().enumerate() {
                    pred += w.m(li, kk) * h.m(tt - l, kk);
                }
                r += lambda_x * pred;
            }
            // τ = t + l: h_t enters as a regressor with weight w_l.
            for (li, &l) in lags.iter().enumerate() {
                let tau = tt + l;
                if tau >= lmax && tau < t {
                    let wl = w.m(li, kk);
                    diag += lambda_x * wl * wl;
                    let mut others = 0.0;
                    for (lj, &l2) in lags.iter().enumerate() {
                        if lj != li && tau >= l2 {
                            others += w.m(lj, kk) * h.m(tau - l2, kk);
                        }
                    }
                    r += lambda_x * wl * (h.m(tau, kk) - others);
                }
            }
            let v = gram.m(kk, kk) + diag;
            gram.set_m(kk, kk, v);
            rhs[kk] += r;
        }
        if let Some(sol) = solve_spd(&gram, &rhs) {
            h.row_mut(tt).copy_from_slice(&sol);
        }
    }
}

/// Per-factor least-squares refresh of the AR coefficients.
fn update_ar_weights(
    w: &mut Tensor,
    h: &Tensor,
    lags: &[usize],
    lmax: usize,
    lambda_w: f64,
    k: usize,
) {
    let t = h.rows();
    let nl = lags.len();
    for kk in 0..k {
        let mut gram = Tensor::zeros(&[nl, nl]);
        let mut rhs = vec![0.0; nl];
        for tau in lmax..t {
            let target = h.m(tau, kk);
            for (a, &la) in lags.iter().enumerate() {
                let xa = h.m(tau - la, kk);
                rhs[a] += target * xa;
                for (b, &lb) in lags.iter().enumerate().skip(a) {
                    let v = gram.m(a, b) + xa * h.m(tau - lb, kk);
                    gram.set_m(a, b, v);
                }
            }
        }
        for a in 0..nl {
            for b in 0..a {
                gram.set_m(a, b, gram.m(b, a));
            }
            let v = gram.m(a, a) + lambda_w;
            gram.set_m(a, a, v);
        }
        if let Some(sol) = solve_spd(&gram, &rhs) {
            for (a, &v) in sol.iter().enumerate() {
                w.set_m(a, kk, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn detects_planted_seasonality() {
        let period = 25usize;
        let init = Tensor::from_fn(&[4, 300], |idx| {
            (std::f64::consts::TAU * idx[1] as f64 / period as f64 + idx[0] as f64).sin()
        });
        let lag = detect_seasonal_lag(&init);
        assert!(
            lag.is_multiple_of(period) || (lag as i64 - period as i64).abs() <= 2,
            "detected {lag}, planted {period}"
        );
    }

    #[test]
    fn trmf_beats_mean_on_seasonal_correlated_data() {
        let ds = generate_with_shape(DatasetName::Chlorine, &[10], 400, 3);
        let inst = Scenario::mcar(1.0).apply(&ds, 4);
        let obs = inst.observed();
        let trmf = mae(&ds.values, &Trmf::default().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(trmf < mean, "trmf {trmf} vs mean {mean}");
    }

    #[test]
    fn trmf_output_finite_on_blackout() {
        let ds = generate_with_shape(DatasetName::Gas, &[8], 300, 9);
        let inst = Scenario::Blackout { block_len: 40 }.apply(&ds, 1);
        let out = Trmf::default().impute(&inst.observed());
        assert!(out.all_finite());
    }

    #[test]
    fn trmf_reconstructs_exact_factor_model() {
        // Data follows the TRMF generative model exactly: AR(1) temporal factor.
        let t_len = 200;
        let mut factor = vec![1.0f64];
        for i in 1..t_len {
            factor.push(0.95 * factor[i - 1] + 0.1 * ((i * 31 % 17) as f64 / 17.0 - 0.5));
        }
        let values = Tensor::from_fn(&[5, t_len], |idx| (idx[0] as f64 + 0.5) * factor[idx[1]]);
        let ds = Dataset::new("ar", vec![DimSpec::indexed("series", "s", 5)], values);
        let inst = Scenario::mcar(1.0).apply(&ds, 8);
        // Light regularization: the generative model matches TRMF exactly.
        let cfg = Trmf {
            rank: Some(1),
            lambda_f: 0.05,
            lambda_x: 0.1,
            iters: 20,
            sweeps: 3,
            ..Default::default()
        };
        let out = cfg.impute(&inst.observed());
        let err = mae(&ds.values, &out, &inst.missing);
        assert!(err < 0.15, "MAE {err} on exact factor model");
    }
}
