//! Contract properties every imputer in the workspace must satisfy, checked
//! over randomized and degenerate inputs:
//!
//! 1. the output tensor has the input shape;
//! 2. observed entries pass through unchanged (the `Imputer` contract — every
//!    method here restores observed values via `MatrixTask::finish` or writes
//!    only missing entries);
//! 3. the output is NaN/inf-free, including on degenerate inputs where the
//!    underlying factorizations collapse (constant series, a single series,
//!    fully observed data, fully missing series).

use mvi_baselines::{CdRec, DynaMmo, SoftImpute, Stmvl, SvdImp, Svt, Trmf};
use mvi_data::dataset::{Dataset, DimSpec, ObservedDataset};
use mvi_data::imputer::{Imputer, LinearInterpImputer, MeanImputer};
use mvi_tensor::{Mask, Tensor};
use proptest::prelude::*;

/// Every imputer under contract, freshly constructed (they are stateless).
fn all_imputers() -> Vec<Box<dyn Imputer>> {
    vec![
        Box::new(MeanImputer),
        Box::new(LinearInterpImputer),
        Box::new(SvdImp::default()),
        Box::new(SoftImpute::default()),
        Box::new(Svt::default()),
        Box::new(CdRec::default()),
        Box::new(Trmf::default()),
        Box::new(Stmvl::default()),
        Box::new(DynaMmo::default()),
    ]
}

/// Deterministic pseudo-random values: enough structure (per-series phase,
/// shared season) for the factorization methods to have something to fit.
fn synth_values(n: usize, t: usize, seed: u64) -> Tensor {
    Tensor::from_fn(&[n, t], |idx| {
        let (s, tt) = (idx[0] as f64, idx[1] as f64);
        let jitter = {
            let h = (idx[0] * 131 + idx[1]).wrapping_mul(0x9E37_79B9).wrapping_add(seed as usize)
                % 1000;
            h as f64 / 1000.0 - 0.5
        };
        (tt / 7.0 + s).sin() + 0.3 * (tt / 3.0).cos() + 0.1 * jitter
    })
}

/// A seeded missing mask mixing point misses and a block per series, leaving
/// at least two observed entries per series.
fn synth_missing(n: usize, t: usize, seed: u64) -> Mask {
    let mut m = Mask::falses(&[n, t]);
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    for s in 0..n {
        let block_len = 1 + next(t / 3 + 1);
        let block_at = next(t - block_len);
        m.set_range(s, block_at, block_at + block_len, true);
        for _ in 0..t / 10 {
            m.set(&[s, next(t)], true);
        }
        // Keep two anchors observed so every method has in-series signal.
        m.set(&[s, next(t / 2)], false);
        m.set(&[s, t / 2 + next(t - t / 2)], false);
    }
    m
}

fn observed_from(values: Tensor, missing: Mask) -> ObservedDataset {
    let n = values.shape()[0];
    Dataset::new("prop", vec![DimSpec::indexed("series", "s", n)], values)
        .with_missing(missing)
        .observed()
}

/// Asserts the three contract properties for one imputer on one instance.
fn check_contract(imp: &dyn Imputer, obs: &ObservedDataset) -> Result<(), TestCaseError> {
    let out = imp.impute(obs);
    prop_assert!(
        out.shape() == obs.values.shape(),
        "{} changed the shape: {:?} vs {:?}",
        imp.name(),
        out.shape(),
        obs.values.shape()
    );
    for i in 0..out.len() {
        let v = out.at(i);
        prop_assert!(v.is_finite(), "{} produced non-finite {} at {}", imp.name(), v, i);
        if obs.available.at(i) {
            prop_assert!(
                v == obs.values.at(i),
                "{} modified observed entry {}: {} vs {}",
                imp.name(),
                i,
                v,
                obs.values.at(i)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn contract_holds_on_randomized_instances(
        n in 1usize..5,
        t in 24usize..60,
        seed in any::<u64>(),
    ) {
        let obs = observed_from(synth_values(n, t, seed), synth_missing(n, t, seed));
        for imp in all_imputers() {
            check_contract(imp.as_ref(), &obs)?;
        }
    }
}

#[test]
fn contract_holds_on_constant_series() {
    // Zero variance collapses correlations, SVD spectra and AR fits.
    let values = Tensor::full(&[3, 40], 2.5);
    let missing = synth_missing(3, 40, 99);
    let obs = observed_from(values, missing);
    for imp in all_imputers() {
        check_contract(imp.as_ref(), &obs).unwrap();
    }
}

#[test]
fn contract_holds_on_a_single_series() {
    // One row: no siblings, rank-1 matrices, empty correlation neighbourhoods.
    let obs = observed_from(synth_values(1, 50, 7), synth_missing(1, 50, 7));
    for imp in all_imputers() {
        check_contract(imp.as_ref(), &obs).unwrap();
    }
}

#[test]
fn fully_observed_input_passes_through_unchanged() {
    let values = synth_values(4, 30, 3);
    let obs = observed_from(values.clone(), Mask::falses(&[4, 30]));
    for imp in all_imputers() {
        let out = imp.impute(&obs);
        assert_eq!(out, values, "{} rewrote a fully observed dataset", imp.name());
    }
}

#[test]
fn fully_missing_series_still_yields_finite_output() {
    let values = synth_values(3, 40, 5);
    let mut missing = synth_missing(3, 40, 5);
    missing.set_range(1, 0, 40, true); // series 1 entirely hidden
    let obs = observed_from(values, missing);
    for imp in all_imputers() {
        check_contract(imp.as_ref(), &obs).unwrap();
    }
}
