//! Criterion benchmark for the runtime cost of each DeepMVI module (the time side
//! of the §5.5 design-choice ablations): full model vs no-transformer vs
//! no-kernel-regression vs flattened kernel regression.

use criterion::{criterion_group, criterion_main, Criterion};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_eval::{Method, MethodBudget};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let ds = generate_with_shape(DatasetName::JanataHack, &[8, 6], 134, 9);
    let inst = Scenario::mcar(1.0).apply(&ds, 4);
    let obs = inst.observed();

    let mut group = c.benchmark_group("deepmvi_module_cost");
    group.sample_size(10);
    for method in [
        Method::DeepMvi,
        Method::DeepMviNoTt,
        Method::DeepMviNoKr,
        Method::DeepMviNoContext,
        Method::DeepMvi1D,
    ] {
        let imputer = method.build(MethodBudget::Quick);
        group.bench_function(imputer.name(), |b| {
            b.iter(|| black_box(imputer.impute(black_box(&obs))))
        });
    }
    group.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation
);
criterion_main!(ablation);
