//! Criterion benchmark over the imputation methods themselves — the wall-clock
//! side of Fig 10a at a reduced, Criterion-friendly size. The expected shape:
//! the SVD/CD family fastest, DynaMMO slowest by orders of magnitude, DeepMVI
//! between them and faster than the per-point vanilla Transformer.

use criterion::{criterion_group, criterion_main, Criterion};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_eval::{Method, MethodBudget};
use std::hint::black_box;

fn bench_imputers(c: &mut Criterion) {
    let ds = generate_with_shape(DatasetName::AirQ, &[6], 250, 11);
    let inst = Scenario::mcar(1.0).apply(&ds, 5);
    let obs = inst.observed();

    let mut group = c.benchmark_group("imputers_airq_6x250");
    group.sample_size(10);
    for method in [
        Method::SvdImp,
        Method::SoftImpute,
        Method::Svt,
        Method::CdRec,
        Method::Trmf,
        Method::Stmvl,
        Method::DynaMmo,
        Method::Brits,
        Method::GpVae,
        Method::Mrnn,
        Method::Transformer,
        Method::DeepMvi,
    ] {
        let imputer = method.build(MethodBudget::Quick);
        group.bench_function(imputer.name(), |b| {
            b.iter(|| black_box(imputer.impute(black_box(&obs))))
        });
    }
    group.finish();
}

criterion_group!(
    name = imputers;
    config = Criterion::default().sample_size(10);
    targets = bench_imputers
);
criterion_main!(imputers);
