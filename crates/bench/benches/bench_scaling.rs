//! Criterion benchmark for DeepMVI's runtime scaling in series length — the
//! Fig 10b shape (sub-linear growth because training sees a bounded number of
//! pattern samples regardless of length).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deepmvi::DeepMvi;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::Imputer;
use mvi_data::scenarios::Scenario;
use mvi_eval::MethodBudget;
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("deepmvi_length_scaling");
    group.sample_size(10);
    for &len in &[500usize, 1000, 2000] {
        let ds = generate_with_shape(DatasetName::Climate, &[10], len, 3);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let obs = inst.observed();
        let imputer = DeepMvi::new(MethodBudget::Quick.deepmvi_config());
        group.bench_with_input(BenchmarkId::from_parameter(len), &obs, |b, obs| {
            b.iter(|| black_box(imputer.impute(black_box(obs))))
        });
    }
    group.finish();
}

criterion_group!(
    name = scaling;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
);
criterion_main!(scaling);
