//! Criterion microbenchmarks for the numerical substrates: the matmul/SVD/CD
//! kernels every baseline is built on, and the autodiff attention block at the
//! heart of DeepMVI's temporal transformer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mvi_autograd::{Graph, Linear, ParamStore};
use mvi_linalg::{centroid_decomposition, matmul, svd};
use mvi_tensor::{Mask, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn pseudo(m: usize, n: usize, seed: u64) -> Tensor {
    Tensor::from_fn(&[m, n], |idx| {
        let h = (idx[0] as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((idx[1] as u64).wrapping_mul(0xD1B54A32D192ED03))
            .wrapping_add(seed);
        ((h >> 32) % 1000) as f64 / 500.0 - 1.0
    })
}

fn bench_linalg(c: &mut Criterion) {
    let a = pseudo(64, 64, 1);
    let b = pseudo(64, 64, 2);
    c.bench_function("linalg/matmul_64x64", |bench| {
        bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });

    let tall = pseudo(200, 10, 3);
    c.bench_function("linalg/svd_200x10", |bench| bench.iter(|| black_box(svd(black_box(&tall)))));

    c.bench_function("linalg/centroid_decomposition_200x10_k3", |bench| {
        bench.iter(|| black_box(centroid_decomposition(black_box(&tall), 3)))
    });
}

fn bench_attention(c: &mut Criterion) {
    // One DeepMVI-shaped attention head: 64 windows, key width 64, value width 32.
    let mut store = ParamStore::new();
    let mut rng = StdRng::seed_from_u64(5);
    let wq = Linear::new_no_bias(&mut store, &mut rng, "q", 64, 64);
    let wk = Linear::new_no_bias(&mut store, &mut rng, "k", 64, 64);
    let wv = Linear::new_no_bias(&mut store, &mut rng, "v", 32, 32);
    let qk_in = pseudo(64, 64, 7);
    let y = pseudo(64, 32, 8);
    let mask = Mask::trues(&[64, 64]);

    c.bench_function("autograd/attention_head_fwd_64w", |bench| {
        bench.iter_batched(
            Graph::new,
            |mut g| {
                let qkv = g.constant(qk_in.clone());
                let yv = g.constant(y.clone());
                let q = wq.forward(&mut g, &store, qkv);
                let k = wk.forward(&mut g, &store, qkv);
                let v = wv.forward(&mut g, &store, yv);
                let kt = g.transpose(k);
                let scores = g.matmul(q, kt);
                let attn = g.masked_softmax_rows(scores, &mask);
                black_box(g.matmul(attn, v))
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("autograd/attention_head_fwd_bwd_64w", |bench| {
        bench.iter_batched(
            Graph::new,
            |mut g| {
                let qkv = g.constant(qk_in.clone());
                let yv = g.constant(y.clone());
                let q = wq.forward(&mut g, &store, qkv);
                let k = wk.forward(&mut g, &store, qkv);
                let v = wv.forward(&mut g, &store, yv);
                let kt = g.transpose(k);
                let scores = g.matmul(q, kt);
                let attn = g.masked_softmax_rows(scores, &mask);
                let out = g.matmul(attn, v);
                let s = g.sum(out);
                black_box(g.backward(s))
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_linalg, bench_attention
);
criterion_main!(substrates);
