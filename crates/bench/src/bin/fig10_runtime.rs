//! Regenerates Figure 10: (a) absolute runtime of each method per dataset and
//! (b) DeepMVI runtime vs series length.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::{fig10a_runtime, fig10b_scaling};

fn main() {
    let args = BenchArgs::parse();
    let lengths: Vec<usize> = [1000usize, 5000, 10_000, 50_000]
        .iter()
        .map(|&l| ((l as f64 * args.exp.scale) as usize).max(256))
        .collect();
    args.emit(&[fig10a_runtime(&args.exp), fig10b_scaling(&args.exp, &lengths)]);
}
