//! Regenerates Figure 11: impact on downstream aggregate analytics —
//! MAE(DropCell) − MAE(method) on dimension-averaged series.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig11_analytics;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&[fig11_analytics(&args.exp)]);
}
