//! Regenerates Figure 4: per-timestep imputations (ground truth vs CDRec vs
//! DynaMMO vs DeepMVI) on Electricity under MCAR and Blackout.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig4_visual;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&fig4_visual(&args.exp));
}
