//! Regenerates Figure 5: MAE of the conventional methods and DeepMVI on five
//! datasets under all four missing scenarios (x = 10% incomplete series).

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig5_conventional;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&fig5_conventional(&args.exp));
}
