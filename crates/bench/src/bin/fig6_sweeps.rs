//! Regenerates Figure 6: MAE sweeps (percent incomplete series; Blackout block
//! size) on AirQ, Climate and Electricity.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig6_sweeps;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&fig6_sweeps(&args.exp, &args.pct_points(), &args.blackout_sizes()));
}
