//! Regenerates Figure 7: the module ablation study (no temporal transformer, no
//! context window, no kernel regression vs full DeepMVI).

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig7_ablation;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&fig7_ablation(&args.exp, &args.pct_points()));
}
