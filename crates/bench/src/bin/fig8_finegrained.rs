//! Regenerates Figure 8: the fine-grained local signal's benefit vs missing block
//! size on Climate.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig8_finegrained;

fn main() {
    let args = BenchArgs::parse();
    let sizes: Vec<usize> =
        if args.exp.scale < 0.15 { vec![1, 5, 10] } else { vec![1, 2, 4, 6, 8, 10] };
    args.emit(&[fig8_finegrained(&args.exp, &sizes)]);
}
