//! Regenerates Figure 9: multidimensional kernel regression (DeepMVI) vs the
//! flattened DeepMVI1D and conventional methods on JanataHack.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::fig9_multidim;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&[fig9_multidim(&args.exp, &args.pct_points())]);
}
