//! Cold-window forward-throughput harness: the tape path versus the tape-free
//! value-only evaluator, as a machine-readable `BENCH_4.json` artifact.
//!
//! Both arms answer the same cold-window query set (every query re-runs the
//! full window forward pass — no serving cache in either arm, so this
//! isolates exactly the execution backend):
//!
//! * **tape** — `predict_window_tape`: the pre-evaluator serving path, one
//!   recycled autograd `Graph` per pass (tape nodes, boxed backward closures,
//!   per-op tensors);
//! * **eval** — `predict_window_into`: the value-only evaluator (recycled
//!   slot arena, zero steady-state allocation, params by `Arc` share).
//!
//! The two arms are **bitwise identical** in output (asserted here and
//! property-tested in `tests/eval_equivalence.rs`); the artifact's headline
//! `cold_window_speedup_vs_tape` is eval-to-tape window throughput, floor 3×.
//! A second scenario measures the `(series, window)` grouping in
//! `predict_batch`: a batch with 4× duplicated window queries versus the
//! same batch evaluated query-by-query.
//!
//! ```text
//! cargo run -p mvi-bench --release --bin infer_bench -- \
//!     [--threads=N] [--passes=N] [--out=PATH] [--quick]
//! ```

use deepmvi::{DeepMviConfig, DeepMviModel, InferScratch, TapeScratch, WindowQuery};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use std::fmt::Write as _;
use std::time::Instant;

const SERIES: usize = 8;
const T: usize = 400;

struct Arm {
    name: &'static str,
    windows: usize,
    wall_secs: f64,
}

impl Arm {
    fn wps(&self) -> f64 {
        self.windows as f64 / self.wall_secs
    }
}

fn main() {
    let mut out_path = String::from("BENCH_4.json");
    let mut quick = false;
    let mut passes = 40usize;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => mvi_parallel::configure_threads(n),
                _ => {
                    eprintln!("--threads needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--passes=") {
            passes = match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--passes needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if arg == "--quick" {
            quick = true;
        } else {
            eprintln!("usage: infer_bench [--threads=N] [--passes=N] [--out=PATH] [--quick]");
            std::process::exit(2);
        }
    }
    if quick {
        passes = passes.min(4);
    }
    let threads = mvi_parallel::current_threads();

    // The serving fixture (same shape as serve_bench): untrained weights —
    // throughput depends on shapes and control flow, not parameter values.
    let ds = generate_with_shape(DatasetName::Electricity, &[SERIES], T, 7);
    let obs = Scenario::mcar(1.0).apply(&ds, 3).observed();

    // Two model scales: the serving config the engine benches run at, and the
    // paper's default sizing (p = 32, 4 heads, 64-window context).
    let scales: [(&str, DeepMviConfig); 2] = [
        ("serving_tiny", DeepMviConfig::tiny()),
        ("paper_default", DeepMviConfig { threads: 1, ..DeepMviConfig::default() }),
    ];

    let mut scale_jsons = Vec::new();
    // Headline = the serving-scale speedup: that is the shape the engine's
    // cold-window path actually runs (BENCH_2/BENCH_3 fixtures). The paper
    // scale is reported alongside — there the forward pass is GEMM-bound, so
    // the backend overhead it removes is a smaller share of the wall clock.
    let mut headline_speedup = f64::NAN;
    for (scale_name, cfg) in &scales {
        let model = DeepMviModel::new(cfg, &obs);
        let queries = model.missing_queries(&obs);
        let positions: usize = queries.iter().map(|q| q.positions.len()).sum();
        eprintln!(
            "infer_bench[{scale_name}]: {SERIES}x{T}, {} cold windows ({positions} positions), \
             {passes} passes, {threads} worker threads",
            queries.len()
        );

        // Warm both scratches, and pin down bitwise agreement while at it.
        let mut tape = TapeScratch::new();
        let mut eval = InferScratch::new();
        let mut out = Vec::new();
        for q in &queries {
            let expect = model.predict_window_tape(&mut tape, &obs, q);
            out.clear();
            model.predict_window_into(&mut eval, &obs, q, &mut out);
            let same = expect.iter().zip(&out).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "tape/eval divergence on s={} w={}", q.s, q.window_j);
        }

        // Best-of-3 repetitions per arm (the same best-of-N wall-clock
        // methodology as the kernel harness) so a noisy neighbour on the
        // shared reference container cannot skew one arm.
        const REPS: usize = 3;
        let mut tape_secs = f64::INFINITY;
        let mut eval_secs = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for _ in 0..passes {
                for q in &queries {
                    std::hint::black_box(model.predict_window_tape(&mut tape, &obs, q));
                }
            }
            tape_secs = tape_secs.min(t0.elapsed().as_secs_f64());

            let t0 = Instant::now();
            for _ in 0..passes {
                for q in &queries {
                    out.clear();
                    model.predict_window_into(&mut eval, &obs, q, &mut out);
                    std::hint::black_box(out.last());
                }
            }
            eval_secs = eval_secs.min(t0.elapsed().as_secs_f64());
        }
        let tape_arm = Arm { name: "tape", windows: passes * queries.len(), wall_secs: tape_secs };
        let eval_arm = Arm { name: "eval", windows: passes * queries.len(), wall_secs: eval_secs };

        for arm in [&tape_arm, &eval_arm] {
            eprintln!(
                "  {:>4}: {} window passes in {:.3}s = {:>9.1} windows/s ({:.1} us/window)",
                arm.name,
                arm.windows,
                arm.wall_secs,
                arm.wps(),
                1e6 * arm.wall_secs / arm.windows as f64
            );
        }
        let speedup = eval_arm.wps() / tape_arm.wps();
        eprintln!("  cold-window speedup vs tape: {speedup:.2}x");
        if *scale_name == "serving_tiny" {
            headline_speedup = speedup;
        }

        // Grouping scenario: every query duplicated 4x (overlapping request
        // shapes), grouped batch vs per-query evaluation of the same batch.
        let dup = 4usize;
        let batch: Vec<WindowQuery> =
            queries.iter().flat_map(|q| std::iter::repeat_with(|| q.clone()).take(dup)).collect();
        let group_passes = passes.div_ceil(4).max(1);
        let t0 = Instant::now();
        for _ in 0..group_passes {
            for q in &batch {
                out.clear();
                model.predict_window_into(&mut eval, &obs, q, &mut out);
                std::hint::black_box(out.last());
            }
        }
        let ungrouped_secs = t0.elapsed().as_secs_f64();
        // One worker on the grouped arm too: both arms are serial, so the
        // ratio isolates window grouping from thread fan-out.
        let t0 = Instant::now();
        for _ in 0..group_passes {
            std::hint::black_box(model.predict_batch(&obs, &batch, 1));
        }
        let grouped_secs = t0.elapsed().as_secs_f64();
        let group_speedup = ungrouped_secs / grouped_secs;
        eprintln!(
            "  grouped predict_batch over {dup}x duplicated windows: {:.3}s vs {:.3}s ungrouped \
             = {group_speedup:.2}x",
            grouped_secs, ungrouped_secs
        );

        let mut sj = String::new();
        let _ = writeln!(sj, "    {{\"scale\": \"{scale_name}\",");
        let _ = writeln!(
            sj,
            "     \"model\": {{\"p\": {}, \"n_heads\": {}, \"ctx_windows\": {}, \"window\": {}}},",
            cfg.p,
            cfg.n_heads,
            cfg.ctx_windows,
            model.window()
        );
        let _ =
            writeln!(sj, "     \"cold_windows\": {}, \"positions\": {positions},", queries.len());
        let _ = writeln!(sj, "     \"arms\": [");
        for (i, arm) in [&tape_arm, &eval_arm].into_iter().enumerate() {
            let _ = write!(
                sj,
                "       {{\"name\": \"{}\", \"window_passes\": {}, \"wall_secs\": {:.6}, \
                 \"windows_per_sec\": {:.2}, \"us_per_window\": {:.3}}}",
                arm.name,
                arm.windows,
                arm.wall_secs,
                arm.wps(),
                1e6 * arm.wall_secs / arm.windows as f64
            );
            sj.push_str(if i == 1 { "\n" } else { ",\n" });
        }
        let _ = writeln!(sj, "     ],");
        let _ = writeln!(
            sj,
            "     \"grouped_batch\": {{\"duplicates\": {dup}, \"ungrouped_secs\": \
             {ungrouped_secs:.6}, \"grouped_secs\": {grouped_secs:.6}, \"speedup\": \
             {group_speedup:.3}}},"
        );
        let _ = write!(sj, "     \"cold_window_speedup_vs_tape\": {speedup:.3}}}");
        scale_jsons.push(sj);
    }

    let mut json = String::from("{\n  \"bench\": 4,\n  \"scenario\": \"tape_free_inference\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}}},\n  \"threads_used\": \
         {threads},\n  \"passes\": {passes},\n  \"bitwise_identical\": true,"
    );
    let _ = writeln!(json, "  \"scales\": [\n{}\n  ],", scale_jsons.join(",\n"));
    let _ = writeln!(
        json,
        "  \"headline_scale\": \"serving_tiny\",\n  \"cold_window_speedup_vs_tape\": \
         {headline_speedup:.3}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!(
        "wrote {out_path} (serving-scale cold-window speedup {headline_speedup:.2}x, floor 3x)"
    );
}
