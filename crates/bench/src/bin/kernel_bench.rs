//! Machine-readable throughput harness for the `mvi-kernels` layer.
//!
//! Measures GFLOP/s of the seed's naive `ikj` matmul versus the blocked
//! kernels (serial and parallel) across representative shapes, plus the
//! end-to-end DeepMVI train-step latency, and writes the results as JSON so
//! the performance trajectory is tracked across PRs (`BENCH_1.json` is this
//! PR's artifact; later PRs append `BENCH_<n>.json`).
//!
//! ```text
//! cargo run -p mvi-bench --release --bin kernel_bench -- [--threads=N] [--out=PATH] [--quick]
//! ```

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use std::fmt::Write as _;
use std::time::Instant;

/// Times `f` adaptively: repeats until ~`budget_secs` of samples, returns the
/// minimum wall-clock seconds over the runs (min is robust to scheduler noise).
fn best_secs(budget_secs: f64, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut runs = 0;
    while (spent < budget_secs && runs < 50) || runs < 3 {
        let start = Instant::now();
        f();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        spent += secs;
        runs += 1;
    }
    best
}

fn pseudo(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
            ((h >> 32) % 2000) as f64 / 500.0 - 2.0
        })
        .collect()
}

struct KernelRow {
    kernel: &'static str,
    variant: &'static str,
    m: usize,
    k: usize,
    n: usize,
    secs: f64,
    gflops: f64,
}

#[allow(clippy::type_complexity)]
fn measure_kernel(
    kernel: &'static str,
    variant: &'static str,
    (m, k, n): (usize, usize, usize),
    budget: f64,
    f: &dyn Fn(usize, usize, usize, &[f64], &[f64], &mut [f64]),
) -> KernelRow {
    let (a_len, b_len) = match kernel {
        "matmul" => (m * k, k * n),
        "matmul_tn" => (k * m, k * n),
        "matmul_nt" => (m * k, n * k),
        other => panic!("unknown kernel {other}"),
    };
    let a = pseudo(a_len, 1);
    let b = pseudo(b_len, 2);
    let mut c = vec![0.0; m * n];
    let secs = best_secs(budget, || {
        c.iter_mut().for_each(|x| *x = 0.0);
        f(m, k, n, &a, &b, &mut c);
        std::hint::black_box(&c);
    });
    let gflops = 2.0 * (m * k * n) as f64 / secs / 1e9;
    eprintln!(
        "{kernel:>10}/{variant:<16} {m:>4}x{k:<4}x{n:<4}  {:>9.3} ms  {gflops:>7.2} GFLOP/s",
        secs * 1e3
    );
    KernelRow { kernel, variant, m, k, n, secs, gflops }
}

/// One DeepMVI training-step latency measurement (quick config, small data).
fn measure_train_step(steps: usize) -> (usize, f64) {
    let ds = generate_with_shape(DatasetName::Chlorine, &[8], 400, 3);
    let inst = Scenario::mcar(1.0).apply(&ds, 5);
    let obs = inst.observed();
    let cfg = DeepMviConfig {
        max_steps: steps,
        val_instances: 0, // pure train-step timing, no eval pauses
        ..DeepMviConfig::tiny()
    };
    let cfg = DeepMviConfig { threads: mvi_parallel::current_threads(), batch_size: 16, ..cfg };
    let mut model = DeepMviModel::new(&cfg, &obs);
    let start = Instant::now();
    let report = model.fit(&obs);
    let secs = start.elapsed().as_secs_f64();
    (report.steps, secs / report.steps.max(1) as f64)
}

fn json_escape_free(rows: &[KernelRow], extra: &str) -> String {
    let mut out = String::from("{\n  \"bench\": 1,\n");
    let _ = writeln!(
        out,
        "  \"threads_available\": {},\n  \"threads_used\": {},",
        mvi_parallel::available_threads(),
        mvi_parallel::current_threads()
    );
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"secs\": {:.6e}, \"gflops\": {:.4}}}",
            r.kernel, r.variant, r.m, r.k, r.n, r.secs, r.gflops
        );
        out.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ],\n");
    out.push_str(extra);
    out.push_str("}\n");
    out
}

/// Pulls the 256³ `seed_ikj` seconds out of a previous kernel_bench JSON
/// (used by `scripts/bench.sh` to compare against a baseline-codegen build).
fn parse_baseline_secs(json: &str) -> Option<f64> {
    for line in json.lines() {
        if line.contains("\"variant\": \"seed_ikj\"") && line.contains("\"m\": 256") {
            let (_, rest) = line.split_once("\"secs\": ")?;
            let num: String = rest.chars().take_while(|c| !matches!(c, ',' | '}' | ' ')).collect();
            return num.parse().ok();
        }
    }
    None
}

fn main() {
    let mut out_path = String::from("BENCH_1.json");
    let mut quick = false;
    let mut baseline_path: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => mvi_parallel::configure_threads(n),
                _ => {
                    eprintln!("--threads needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--baseline=") {
            baseline_path = Some(v.to_string());
        } else if arg == "--quick" {
            quick = true;
        } else {
            eprintln!("usage: kernel_bench [--threads=N] [--out=PATH] [--baseline=JSON] [--quick]");
            std::process::exit(2);
        }
    }
    let budget = if quick { 0.05 } else { 0.3 };
    let threads = mvi_parallel::current_threads();
    eprintln!("kernel_bench: {threads} worker threads, budget {budget}s/measurement");

    let shapes = [(64, 64, 64), (128, 128, 128), (256, 256, 256), (512, 64, 512)];
    let mut rows = Vec::new();
    for &shape in &shapes {
        rows.push(measure_kernel("matmul", "seed_ikj", shape, budget, &|m, k, n, a, b, c| {
            mvi_kernels::reference::matmul_ikj(m, k, n, a, b, c)
        }));
        // Blocked kernel pinned to one worker: isolates the tiling win.
        mvi_parallel::configure_threads(1);
        rows.push(measure_kernel(
            "matmul",
            "blocked_serial",
            shape,
            budget,
            &|m, k, n, a, b, c| mvi_kernels::matmul(m, k, n, a, b, c),
        ));
        mvi_parallel::configure_threads(threads);
        rows.push(measure_kernel(
            "matmul",
            "blocked_parallel",
            shape,
            budget,
            &|m, k, n, a, b, c| mvi_kernels::matmul(m, k, n, a, b, c),
        ));
    }
    let big = (256, 256, 256);
    rows.push(measure_kernel("matmul_tn", "blocked_parallel", big, budget, &|m, k, n, a, b, c| {
        // measure_kernel passes (m, k, n); the kernel signature is (k, m, n).
        mvi_kernels::matmul_tn(k, m, n, a, b, c)
    }));
    rows.push(measure_kernel("matmul_nt", "blocked_parallel", big, budget, &|m, k, n, a, b, c| {
        mvi_kernels::matmul_nt(m, k, n, a, b, c)
    }));

    // Headline number: blocked+parallel vs the seed kernel at 256^3.
    let seed_256 = rows
        .iter()
        .find(|r| r.kernel == "matmul" && r.variant == "seed_ikj" && r.m == 256)
        .expect("seed 256 row");
    let par_256 = rows
        .iter()
        .find(|r| r.kernel == "matmul" && r.variant == "blocked_parallel" && r.m == 256)
        .expect("parallel 256 row");
    let speedup = seed_256.secs / par_256.secs;

    let (steps, secs_per_step) = measure_train_step(if quick { 8 } else { 30 });
    eprintln!("train_step: {steps} steps, {:.3} ms/step", secs_per_step * 1e3);
    eprintln!("matmul 256^3 speedup over seed ikj (same build): {speedup:.2}x");

    // Optional apples-to-the-seed comparison: the seed kernel measured from a
    // baseline-codegen build (how the repo actually ran before this layer).
    let shipped = baseline_path.and_then(|p| {
        let json = std::fs::read_to_string(&p).ok()?;
        let secs = parse_baseline_secs(&json)?;
        let s = secs / par_256.secs;
        eprintln!("matmul 256^3 speedup over seed ikj (seed's own build): {s:.2}x");
        Some(format!("  \"matmul_256_speedup_vs_seed_shipped\": {s:.3},\n"))
    });

    let extra = format!(
        "  \"matmul_256_speedup_vs_seed_same_build\": {speedup:.3},\n{}  \"train_step\": \
         {{\"steps\": {steps}, \"secs_per_step\": {secs_per_step:.6e}, \"threads\": \
         {threads}}}\n",
        shipped.unwrap_or_default()
    );
    let json = json_escape_free(&rows, &extra);
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");
}
