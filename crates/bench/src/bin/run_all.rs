//! Runs every table/figure regeneration in sequence (the full evaluation
//! section). With `--csv=DIR` the complete set of CSVs lands in one directory.

use mvi_bench::BenchArgs;
use mvi_eval::experiments as exp;

fn main() {
    let args = BenchArgs::parse();
    let mut tables = Vec::new();
    eprintln!("[1/9] Table 1 (datasets)...");
    tables.push(exp::table1_datasets(&args.exp));
    eprintln!("[2/9] Figure 4 (visual)...");
    tables.extend(exp::fig4_visual(&args.exp));
    eprintln!("[3/9] Figure 5 (conventional)...");
    tables.extend(exp::fig5_conventional(&args.exp));
    eprintln!("[4/9] Figure 6 (sweeps)...");
    tables.extend(exp::fig6_sweeps(&args.exp, &args.pct_points(), &args.blackout_sizes()));
    eprintln!("[5/9] Table 2 (deep methods)...");
    tables.push(exp::table2_deep(&args.exp));
    eprintln!("[6/9] Figure 7 (ablations)...");
    tables.extend(exp::fig7_ablation(&args.exp, &args.pct_points()));
    eprintln!("[7/9] Figures 8 & 9...");
    let sizes: Vec<usize> =
        if args.exp.scale < 0.15 { vec![1, 5, 10] } else { vec![1, 2, 4, 6, 8, 10] };
    tables.push(exp::fig8_finegrained(&args.exp, &sizes));
    tables.push(exp::fig9_multidim(&args.exp, &args.pct_points()));
    eprintln!("[8/9] Figure 10 (runtime)...");
    let lengths: Vec<usize> = [1000usize, 5000, 10_000, 50_000]
        .iter()
        .map(|&l| ((l as f64 * args.exp.scale) as usize).max(256))
        .collect();
    tables.push(exp::fig10a_runtime(&args.exp));
    tables.push(exp::fig10b_scaling(&args.exp, &lengths));
    eprintln!("[9/9] Figure 11 (analytics)...");
    tables.push(exp::fig11_analytics(&args.exp));
    args.emit(&tables);
}
