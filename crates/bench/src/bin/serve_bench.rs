//! Serving-throughput harness: the online engine versus naive per-request
//! batch imputation, as a machine-readable `BENCH_2.json` artifact.
//!
//! Both arms answer the same request trace (range queries over a trained
//! model, no retraining in either arm — the naive arm is already charitable):
//!
//! * **naive** — each request re-imputes the *full tensor* with the trained
//!   model and slices the requested range out, which is what
//!   `Imputer::impute`-shaped serving does today;
//! * **engine** — requests stream through concurrent [`mvi_serve::BatchClient`]
//!   threads into one [`mvi_serve::MicroBatcher`], which coalesces pending
//!   requests and imputes only stale windows (warm cache after first touch).
//!
//! Reported per arm: requests/sec and p50/p99 per-request latency. The
//! headline `speedup` is naive-to-engine throughput; the acceptance floor for
//! this artifact is 5x (see `PERFORMANCE.md` for methodology details).
//!
//! A third scenario measures **growth**: appends streaming past the trained
//! `t_len` (which used to hard-fail with `AppendOverflow`) into the growable
//! engine, reported as `BENCH_3.json` — append latency percentiles, values/s,
//! windows recomputed, and the tail-query sweep over the grown region.
//!
//! A fourth scenario (`--only=retention`, phase 5 of `scripts/bench.sh`)
//! measures the **retention ring**: a stream 20× the retention window long
//! runs through a bounded engine — the harness asserts resident storage
//! *never* exceeds the ring cap while logical time advances unboundedly —
//! followed by a **warm restart**: the engine snapshots its cache (wire v3),
//! a second engine restores from JSON, and the full retained query sweep is
//! answered with **zero forward passes** (asserted via the engine's
//! window-evaluation counter), timed against a cold restart that recomputes.
//! Reported as `BENCH_5.json`.
//!
//! A fifth scenario (`--only=faults`, phase 6 of `scripts/bench.sh`) prices
//! the **fault-tolerance layer** (PR 6): the same request trace as the
//! BENCH_2 engine arm runs through an *unguarded*, a *guarded* (value guard
//! installed) and a *guarded + per-request deadline* engine. The guarded hot
//! path must stay **within 5%** of unguarded throughput (asserted in full
//! mode; reported in `--quick` CI smoke); the deadline arm is reported but
//! not gated — a timed wait per request has an inherent price that is the
//! point of measuring it. A deterministic fault drill follows —
//! quarantined spikes, rejected NaN payloads, injected executor panics,
//! a bit-flipped durable snapshot walked back by `restore_with_fallback` —
//! asserting every injected fault surfaces as a **typed error** and the
//! engine keeps serving. Reported as `BENCH_6.json`.
//!
//! A sixth scenario (`--only=sharded`, phase 7 of `scripts/bench.sh`) measures
//! the **sharded read path** (PR 7): the same warm query trace runs against
//! the engine in its two read postures — `locked` (warm reads disabled, every
//! query through the core mutex: the pre-PR-7 build) and `sharded` (lock-free
//! per-series snapshots) — at 1/2/4/8 concurrent reader threads, reporting
//! aggregate queries/sec per point. A mixed-traffic probe follows: a writer
//! streams appends into series 0 while readers sweep the other series, and
//! the harness *asserts* (in every mode, on every host) that the sharded
//! readers accumulate **zero** core-lock wait — warm reads never block on,
//! nor are blocked by, unrelated appends. The ≥3× aggregate-throughput gate
//! at 8 readers is asserted only when the host actually has ≥8 cores
//! (`host_cores` and `asserted` are recorded in the artifact either way).
//! Reported as `BENCH_7.json`.
//!
//! A seventh scenario (`--only=net`, phase 8 of `scripts/bench.sh`) prices
//! the **network front door** (PR 9): the BENCH_2 engine-arm trace replayed
//! through in-process [`mvi_serve::BatchClient`]s and again through
//! [`mvi_net::NetClient`]s over framed TCP on loopback — sustained req/s and
//! p50/p99 per arm, with the wire overhead reported as their ratio. Two
//! fault drills follow and are *asserted in-harness*, not just reported: a
//! flood over a tiny queue behind a stalled evaluation must shed with the
//! typed `Overloaded` code (and a retrying client must eventually succeed),
//! and a graceful drain under in-flight load must answer **every** accepted
//! request with a reply frame — real values or the typed `Shutdown` code,
//! zero transport-level losses. Reported as `BENCH_8.json`.
//!
//! An eighth scenario (`--only=tenancy`, phase 9 of `scripts/bench.sh`)
//! prices **multi-model tenancy** (PR 10): the shared trace replayed through
//! one front door backed by a [`mvi_serve::ModelRegistry`] holding 1, 4 and
//! 16 tenants (req/s and p50/p99 per arm — the per-tenant micro-batcher
//! routing cost), a **cold-load** arm where a capacity-1 registry alternates
//! two tenants so every request pays a full evict→snapshot→reload cycle, and
//! two drills *asserted in-harness*: a hostile tenant armed to panic its own
//! model and flooding it must leave a victim tenant's replies bitwise
//! identical with a bounded p99, and an unknown tenant must be answered with
//! the typed `UnknownTenant` code on a connection that stays open. Reported
//! as `BENCH_9.json`.
//!
//! All `BENCH_<n>.json` schemas and host-comparability rules are documented
//! in `PERFORMANCE.md`.
//!
//! ```text
//! cargo run -p mvi-bench --release --bin serve_bench -- \
//!     [--threads=N] [--clients=N] [--requests=N] [--out=PATH] \
//!     [--growth-out=PATH] [--retention-out=PATH] [--faults-out=PATH] \
//!     [--sharded-out=PATH] [--net-out=PATH] [--tenancy-out=PATH] \
//!     [--only=retention|faults|sharded|net|tenancy] [--quick]
//! ```

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::Dataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{
    BatcherConfig, ImputationEngine, MicroBatcher, ServeError, ServeSnapshot, ValueGuard,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SERIES: usize = 8;
const T: usize = 400;
/// Ground truth extends this far past the trained length — the stream source
/// for the growth scenario.
const GROWTH_MAX: usize = 240;
/// Retention window of the bounded-memory scenario (time steps).
const RETENTION: usize = 150;
/// The long-stream scenario appends this many multiples of the retention
/// window past the trained length (the acceptance floor is 20×).
const RETENTION_STREAM_X: usize = 20;

struct ArmResult {
    name: &'static str,
    requests: usize,
    wall_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
}

impl ArmResult {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.wall_secs
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn summarize(name: &'static str, wall_secs: f64, mut latencies_ms: Vec<f64>) -> ArmResult {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let result = ArmResult {
        name,
        requests: latencies_ms.len(),
        wall_secs,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
    };
    eprintln!(
        "{name:>8}: {} requests in {:.3}s = {:>8.1} req/s  (p50 {:.3} ms, p99 {:.3} ms)",
        result.requests,
        wall_secs,
        result.rps(),
        result.p50_ms,
        result.p99_ms
    );
    result
}

/// The shared request trace: range queries cycling over series with varying
/// offsets/lengths, so consecutive requests overlap (the coalescing case) but
/// are not identical.
fn request_trace(n: usize) -> Vec<(usize, usize, usize)> {
    (0..n)
        .map(|i| {
            let s = i % SERIES;
            let lo = (i * 13) % (T - 80);
            let len = 40 + (i * 7) % 40;
            (s, lo, (lo + len).min(T))
        })
        .collect()
}

fn main() {
    let mut out_path = String::from("BENCH_2.json");
    let mut growth_out_path = String::from("BENCH_3.json");
    let mut retention_out_path = String::from("BENCH_5.json");
    let mut faults_out_path = String::from("BENCH_6.json");
    let mut sharded_out_path = String::from("BENCH_7.json");
    let mut net_out_path = String::from("BENCH_8.json");
    let mut tenancy_out_path = String::from("BENCH_9.json");
    let mut only: Option<String> = None;
    let mut quick = false;
    let mut clients = 4usize;
    let mut n_requests = 400usize;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--threads=") {
            match v.parse::<usize>() {
                Ok(n) if n > 0 => mvi_parallel::configure_threads(n),
                _ => {
                    eprintln!("--threads needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--clients=") {
            clients = match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--clients needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = arg.strip_prefix("--requests=") {
            n_requests = match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("--requests needs a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--growth-out=") {
            growth_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--retention-out=") {
            retention_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--faults-out=") {
            faults_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--sharded-out=") {
            sharded_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--net-out=") {
            net_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--tenancy-out=") {
            tenancy_out_path = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--only=") {
            match v {
                "retention" | "faults" | "sharded" | "net" | "tenancy" => {
                    only = Some(v.to_string())
                }
                _ => {
                    eprintln!(
                        "--only accepts `retention`, `faults`, `sharded`, `net` or `tenancy`, \
                         got `{v}`"
                    );
                    std::process::exit(2);
                }
            }
        } else if arg == "--quick" {
            quick = true;
        } else {
            eprintln!(
                "usage: serve_bench [--threads=N] [--clients=N] [--requests=N] [--out=PATH] \
                 [--growth-out=PATH] [--retention-out=PATH] [--faults-out=PATH] \
                 [--sharded-out=PATH] [--net-out=PATH] [--tenancy-out=PATH] \
                 [--only=retention|faults|sharded|net|tenancy] [--quick]"
            );
            std::process::exit(2);
        }
    }
    if quick {
        n_requests = n_requests.min(40);
    }
    let threads = mvi_parallel::current_threads();
    eprintln!(
        "serve_bench: {SERIES}x{T} dataset, {n_requests} requests, {clients} client threads, \
         {threads} worker threads"
    );

    // One trained model feeds every arm. Ground truth runs past the trained
    // length so the growth scenario has a stream source; training only ever
    // sees the truncated prefix.
    let full = generate_with_shape(DatasetName::Electricity, &[SERIES], T + GROWTH_MAX, 7);
    let ds = Dataset::new("electricity-trained", full.dims.clone(), full.values.truncated_time(T));
    let inst = Scenario::mcar(1.0).apply(&ds, 3);
    let obs = inst.observed();
    let cfg =
        DeepMviConfig { max_steps: if quick { 10 } else { 60 }, threads, ..DeepMviConfig::tiny() };
    let mut model = DeepMviModel::new(&cfg, &obs);
    let t_train = Instant::now();
    model.fit(&obs);
    let train_secs = t_train.elapsed().as_secs_f64();
    eprintln!("trained in {train_secs:.2}s; missing fraction {:.3}", inst.missing_fraction());
    let trace = request_trace(n_requests);

    match only.as_deref() {
        Some("retention") => {
            run_retention_scenario(&model, &obs, quick, threads, &retention_out_path);
            return;
        }
        Some("faults") => {
            run_faults_scenario(
                &model,
                &obs,
                &full.values,
                &trace,
                clients,
                quick,
                threads,
                &faults_out_path,
            );
            return;
        }
        Some("sharded") => {
            run_sharded_scenario(&model, &obs, quick, threads, &sharded_out_path);
            return;
        }
        Some("net") => {
            run_net_scenario(&model, &obs, &trace, clients, quick, threads, &net_out_path);
            return;
        }
        Some("tenancy") => {
            run_tenancy_scenario(&model, &obs, &trace, clients, quick, threads, &tenancy_out_path);
            return;
        }
        _ => {}
    }

    // ---- Arm 1: naive per-request full impute (sequential server loop). ----
    // Charitably few requests: full imputes are slow, so the naive arm runs a
    // slice of the trace and extrapolates nothing — rps is measured directly.
    let naive_n = if quick { 5 } else { 25 };
    let mut naive_lat = Vec::with_capacity(naive_n);
    let t0 = Instant::now();
    for &(s, lo, hi) in trace.iter().take(naive_n) {
        let t = Instant::now();
        let full = model.impute(&obs);
        let _slice = full.series(s)[lo..hi].to_vec();
        naive_lat.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let naive = summarize("naive", t0.elapsed().as_secs_f64(), naive_lat);

    // ---- Arm 2: the online engine behind a micro-batcher. ----
    let frozen = ServeSnapshot::capture(&model, &obs).restore(&obs).expect("restore");
    let engine = Arc::new(ImputationEngine::new(frozen, obs.clone()).expect("engine"));
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), 64);
    let per_client = n_requests.div_ceil(clients);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let client = batcher.client();
        let part: Vec<(usize, usize, usize)> =
            trace.iter().skip(c * per_client).take(per_client).copied().collect();
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(part.len());
            for (s, lo, hi) in part {
                let t = Instant::now();
                client.query(s, lo, hi).expect("engine query");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut engine_lat = Vec::with_capacity(n_requests);
    for h in handles {
        engine_lat.extend(h.join().expect("client thread"));
    }
    let engine_arm = summarize("engine", t0.elapsed().as_secs_f64(), engine_lat);
    let stats = engine.stats();
    eprintln!(
        "engine internals: {} batches for {} requests ({:.1} req/batch), {} window passes, {} \
         cache hits",
        stats.batches,
        stats.requests,
        stats.requests as f64 / stats.batches.max(1) as f64,
        stats.windows_computed,
        stats.window_hits
    );

    let speedup = engine_arm.rps() / naive.rps();
    eprintln!("throughput speedup over naive per-request full impute: {speedup:.1}x");

    let mut json = String::from("{\n  \"bench\": 2,\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}, \"missing_fraction\": {:.4}}},",
        inst.missing_fraction()
    );
    let _ = writeln!(
        json,
        "  \"threads_used\": {threads},\n  \"client_threads\": {clients},\n  \"train_secs\": \
         {train_secs:.3},",
    );
    json.push_str("  \"arms\": [\n");
    for (i, arm) in [&naive, &engine_arm].into_iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"requests\": {}, \"wall_secs\": {:.6}, \"rps\": {:.2}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            arm.name,
            arm.requests,
            arm.wall_secs,
            arm.rps(),
            arm.p50_ms,
            arm.p99_ms
        );
        json.push_str(if i == 1 { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"engine\": {{\"batches\": {}, \"windows_computed\": {}, \"window_hits\": {}}},",
        stats.batches, stats.windows_computed, stats.window_hits
    );
    let _ = writeln!(json, "  \"throughput_speedup_vs_naive\": {speedup:.3}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write bench json");
    eprintln!("wrote {out_path}");

    // ---- Scenario 3: growth — stream past the trained capacity. ----
    // A fresh warm engine takes fixed-size appends round-robin over the
    // series until every one has grown `growth` steps past the trained
    // length; this exact flow was a hard `AppendOverflow` failure before
    // series storage became growable.
    let growth = if quick { 60 } else { GROWTH_MAX };
    let frozen = ServeSnapshot::capture(&model, &obs).restore(&obs).expect("restore");
    let engine = ImputationEngine::new(frozen, obs.clone()).expect("engine");
    engine.warm_up();
    let base = engine.stats();
    let target = T + growth;
    let chunk = 9usize;
    let mut append_lat = Vec::new();
    let t0 = Instant::now();
    loop {
        let mut all_done = true;
        for s in 0..SERIES {
            let wm = engine.watermark(s).expect("watermark");
            if wm >= target {
                continue;
            }
            all_done = false;
            let end = (wm + chunk).min(target);
            let t = Instant::now();
            engine.append(s, &full.values.series(s)[wm..end]).expect("append past capacity");
            append_lat.push(t.elapsed().as_secs_f64() * 1e3);
        }
        if all_done {
            break;
        }
    }
    let growth_wall = t0.elapsed().as_secs_f64();
    assert_eq!(engine.live_len(), target, "growth scenario must reach its target length");
    let gstats = engine.stats();
    let appends = gstats.appends - base.appends;
    let values = gstats.values_appended - base.values_appended;
    let windows = gstats.windows_computed - base.windows_computed;

    // Tail sweep: queries over the grown region (observed + rolled windows).
    let t0 = Instant::now();
    for s in 0..SERIES {
        engine.query(s, T, target).expect("tail query over the grown region");
    }
    let tail_sweep_ms = t0.elapsed().as_secs_f64() * 1e3;

    append_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&append_lat, 0.50), percentile(&append_lat, 0.99));
    eprintln!(
        "growth: {SERIES} series {T} -> {target} in {appends} appends over {growth_wall:.3}s = \
         {:.0} values/s (append p50 {p50:.3} ms, p99 {p99:.3} ms, {windows} window passes; tail \
         sweep {tail_sweep_ms:.2} ms)",
        values as f64 / growth_wall
    );

    let mut gjson = String::from("{\n  \"bench\": 3,\n  \"scenario\": \"append_past_capacity\",\n");
    let _ = writeln!(
        gjson,
        "  \"dataset\": {{\"series\": {SERIES}, \"trained_t_len\": {T}, \"final_live_len\": \
         {target}}},\n  \"threads_used\": {threads},\n  \"chunk\": {chunk},"
    );
    let _ = writeln!(
        gjson,
        "  \"appends\": {appends},\n  \"values_appended\": {values},\n  \
         \"windows_recomputed\": {windows},\n  \"wall_secs\": {growth_wall:.6},"
    );
    let _ = writeln!(
        gjson,
        "  \"appends_per_sec\": {:.2},\n  \"values_per_sec\": {:.2},\n  \"append_p50_ms\": \
         {p50:.4},\n  \"append_p99_ms\": {p99:.4},\n  \"tail_sweep_ms\": {tail_sweep_ms:.4}",
        appends as f64 / growth_wall,
        values as f64 / growth_wall
    );
    gjson.push_str("}\n");
    std::fs::write(&growth_out_path, &gjson).expect("write growth bench json");
    eprintln!("wrote {growth_out_path}");
}

/// Scenario 4 (`BENCH_5.json`): bounded-memory streaming through the
/// retention ring, then a warm restart from a v3 cache snapshot.
///
/// The harness *asserts* the two headline claims rather than merely reporting
/// them: storage capacity never exceeds the ring cap across a stream ≥ 20×
/// the retention window (quick mode shortens the stream but still evicts),
/// and the warm-restarted engine answers the full retained query sweep with
/// zero window evaluations.
fn run_retention_scenario(
    model: &DeepMviModel,
    obs: &mvi_data::dataset::ObservedDataset,
    quick: bool,
    threads: usize,
    out_path: &str,
) {
    let stream_x = if quick { 2 } else { RETENTION_STREAM_X };
    let stream_len = stream_x * RETENTION;
    let target = T + stream_len;
    // A fresh ground-truth horizon long enough to feed the whole stream.
    let full = generate_with_shape(DatasetName::Electricity, &[SERIES], target, 7);

    let frozen = ServeSnapshot::capture(model, obs).restore(obs).expect("restore");
    let engine =
        ImputationEngine::with_retention(frozen, obs.clone(), RETENTION).expect("ring engine");
    let ring_cap = engine.ring_capacity().expect("bounded engine");
    engine.warm_up();
    // One series goes dark at the trained end (a dead sensor): its retained
    // window is pure imputation work forever, so the ring always holds
    // missing entries — the realistic serving shape, and what makes the
    // warm-vs-cold restart comparison non-vacuous.
    let dark = SERIES - 1;
    eprintln!(
        "retention: {SERIES}x{T} trained, retention {RETENTION} (ring cap {ring_cap}), \
         streaming {stream_len} steps ({stream_x}x retention) per series (series {dark} dark)"
    );

    // ---- Long stream: capacity must stay flat while logical time runs. ----
    let chunk = 9usize;
    let mut append_lat = Vec::new();
    let mut max_capacity = engine.storage_capacity();
    let t0 = Instant::now();
    loop {
        let mut all_done = true;
        for s in 0..dark {
            let wm = engine.watermark(s).expect("watermark");
            if wm >= target {
                continue;
            }
            all_done = false;
            let end = (wm + chunk).min(target);
            let t = Instant::now();
            engine.append(s, &full.values.series(s)[wm..end]).expect("append");
            append_lat.push(t.elapsed().as_secs_f64() * 1e3);
            max_capacity = max_capacity.max(engine.storage_capacity());
        }
        if all_done {
            break;
        }
    }
    let stream_wall = t0.elapsed().as_secs_f64();
    assert!(
        max_capacity <= ring_cap,
        "resident storage ({max_capacity}) exceeded the ring cap ({ring_cap})"
    );
    assert_eq!(engine.live_len(), target);
    let stats = engine.stats();
    assert!(stats.evictions > 0, "the long stream must evict");
    let (base, live) = (engine.retained_start(), engine.live_len());
    append_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (p50, p99) = (percentile(&append_lat, 0.50), percentile(&append_lat, 0.99));
    eprintln!(
        "stream: {} appends ({} values) in {stream_wall:.3}s = {:.0} values/s, p50 {p50:.3} ms \
         p99 {p99:.3} ms; {} evictions ({} steps), storage flat at <= {max_capacity} of cap \
         {ring_cap}, live {live} retained from {base}",
        stats.appends,
        stats.values_appended,
        stats.values_appended as f64 / stream_wall,
        stats.evictions,
        stats.steps_evicted
    );

    // ---- Warm restart: snapshot the healed cache, restore, replay. ----
    for s in 0..SERIES {
        engine.query(s, base, live).expect("healing sweep");
    }
    let t_snap = Instant::now();
    let json = engine.snapshot().to_json();
    let snapshot_secs = t_snap.elapsed().as_secs_f64();
    let snapshot_bytes = json.len();

    let t_restore = Instant::now();
    let snap = ServeSnapshot::from_json(&json).expect("v3 parses");
    let warm = ImputationEngine::from_snapshot(&snap).expect("warm restart");
    let warm_restore_secs = t_restore.elapsed().as_secs_f64();
    let t_sweep = Instant::now();
    for s in 0..SERIES {
        warm.query(s, base, live).expect("warm sweep");
    }
    let warm_sweep_secs = t_sweep.elapsed().as_secs_f64();
    let warm_windows = warm.stats().windows_computed;
    assert_eq!(warm_windows, 0, "warm restart evaluated windows it had cached");

    // ---- Cold restart (the pre-v3 world): model-only restore, recompute. ----
    let t_cold = Instant::now();
    let cold_model = snap.restore(&engine.observed()).expect("model-only restore");
    let cold = ImputationEngine::with_retention(cold_model, engine.observed(), RETENTION)
        .expect("cold engine");
    let cold_restore_secs = t_cold.elapsed().as_secs_f64();
    let cold_base = cold.retained_start();
    let t_cold_sweep = Instant::now();
    for s in 0..SERIES {
        // The cold engine's dataset is the retained span standalone, so its
        // logical time starts at zero.
        cold.query(s, cold_base, cold_base + (live - base)).expect("cold sweep");
    }
    let cold_sweep_secs = t_cold_sweep.elapsed().as_secs_f64();
    let cold_windows = cold.stats().windows_computed;
    assert!(cold_windows > 0, "cold restart must recompute (else the comparison is vacuous)");
    let sweep_speedup = cold_sweep_secs / warm_sweep_secs.max(1e-9);
    eprintln!(
        "warm restart: {snapshot_bytes} B snapshot, restore {warm_restore_secs:.4}s, retained \
         sweep {warm_sweep_secs:.4}s with 0 window passes; cold restart sweep \
         {cold_sweep_secs:.4}s with {cold_windows} passes = {sweep_speedup:.1}x"
    );

    let mut json =
        String::from("{\n  \"bench\": 5,\n  \"scenario\": \"retention_ring_long_stream\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"trained_t_len\": {T}, \"retention_len\": \
         {RETENTION}, \"ring_cap\": {ring_cap}, \"stream_multiple_of_retention\": {stream_x}}},\n  \
         \"threads_used\": {threads},\n  \"chunk\": {chunk},"
    );
    let _ = writeln!(
        json,
        "  \"stream\": {{\"final_live_len\": {live}, \"retained_start\": {base}, \"appends\": \
         {}, \"values_appended\": {}, \"evictions\": {}, \"steps_evicted\": {}, \"wall_secs\": \
         {stream_wall:.6}, \"values_per_sec\": {:.2}, \"append_p50_ms\": {p50:.4}, \
         \"append_p99_ms\": {p99:.4}, \"max_storage_capacity\": {max_capacity}, \
         \"storage_within_ring_cap\": true}},",
        stats.appends,
        stats.values_appended,
        stats.evictions,
        stats.steps_evicted,
        stats.values_appended as f64 / stream_wall
    );
    let _ = writeln!(
        json,
        "  \"warm_restart\": {{\"snapshot_bytes\": {snapshot_bytes}, \"snapshot_secs\": \
         {snapshot_secs:.6}, \"restore_secs\": {warm_restore_secs:.6}, \"sweep_secs\": \
         {warm_sweep_secs:.6}, \"windows_computed\": {warm_windows}, \"cold_restore_secs\": \
         {cold_restore_secs:.6}, \"cold_sweep_secs\": {cold_sweep_secs:.6}, \
         \"cold_windows_computed\": {cold_windows}, \"warm_sweep_speedup_vs_cold\": \
         {sweep_speedup:.3}}}"
    );
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write retention bench json");
    eprintln!("wrote {out_path}");
}

/// Guard posture of one throughput arm.
#[derive(Clone, Copy)]
enum GuardArm {
    /// No guards: exactly the BENCH_2 engine arm.
    Unguarded,
    /// The always-on guard posture — [`ValueGuard`] installed (with bounds
    /// the trace never trips, so the cost measured is the *check*) plus the
    /// input/output finiteness guards that are never optional. This is the
    /// arm the 5% acceptance bound gates.
    Guarded,
    /// Guards plus a per-request deadline — opt-in, and inherently priced
    /// (a timed wait instead of a plain one per request), so it is reported
    /// as its own arm rather than gated.
    GuardedDeadline,
}

/// Runs the shared trace through a fresh engine + micro-batcher under the
/// given guard posture and returns the timed arm.
fn run_guard_arm(
    name: &'static str,
    snapshot: &ServeSnapshot,
    obs: &mvi_data::dataset::ObservedDataset,
    trace: &[(usize, usize, usize)],
    clients: usize,
    arm: GuardArm,
) -> (ArmResult, Arc<ImputationEngine>) {
    let frozen = snapshot.restore(obs).expect("restore");
    let engine = Arc::new(ImputationEngine::new(frozen, obs.clone()).expect("engine"));
    let deadline = match arm {
        GuardArm::Unguarded => None,
        GuardArm::Guarded => {
            engine.set_value_guard(Some(ValueGuard { abs_max: Some(1e6), max_jump: None }));
            None
        }
        GuardArm::GuardedDeadline => {
            engine.set_value_guard(Some(ValueGuard { abs_max: Some(1e6), max_jump: None }));
            Some(Duration::from_secs(30))
        }
    };
    let config = BatcherConfig { max_batch: 64, queue_cap: 1024, deadline };
    let batcher = MicroBatcher::spawn_with(Arc::clone(&engine), config);
    let per_client = trace.len().div_ceil(clients);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let client = batcher.client();
        let part: Vec<(usize, usize, usize)> =
            trace.iter().skip(c * per_client).take(per_client).copied().collect();
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(part.len());
            for (s, lo, hi) in part {
                let t = Instant::now();
                client.query(s, lo, hi).expect("engine query");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut lat = Vec::with_capacity(trace.len());
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    (summarize(name, t0.elapsed().as_secs_f64(), lat), engine)
}

/// Scenario 5 (`BENCH_6.json`): the price and the proof of the
/// fault-tolerance layer.
///
/// **Price** — the BENCH_2 engine-arm trace replayed through an unguarded,
/// a guarded, and a guarded+deadline engine (best of `reps` runs per arm so
/// the comparison is noise-resistant). In full mode the harness *asserts*
/// the guarded hot path holds ≥ 95% of unguarded throughput — the 5%
/// acceptance bound; `--quick` (the CI smoke) reports the ratio without
/// gating on wall-clock noise. The deadline arm is priced but not gated:
/// its timed wait per request is an opt-in cost.
///
/// **Proof** — a deterministic fault drill on the guarded engine: spiked
/// appends are quarantined to the count, NaN payloads are rejected typed
/// with nothing recorded, panics injected into the executor come back as
/// typed errors with the worker surviving and the engine healing, and a
/// bit-flipped durable snapshot fails typed then restores through
/// `restore_with_fallback`. Every assertion here is exact, not statistical.
#[allow(clippy::too_many_arguments)]
fn run_faults_scenario(
    model: &DeepMviModel,
    obs: &mvi_data::dataset::ObservedDataset,
    full_values: &mvi_tensor::Tensor,
    trace: &[(usize, usize, usize)],
    clients: usize,
    quick: bool,
    threads: usize,
    out_path: &str,
) {
    let snapshot = ServeSnapshot::capture(model, obs);
    // Untimed warmup pass: page in the code and allocator state so the first
    // timed arm is not penalized for going first.
    let _ = run_guard_arm(
        "warmup",
        &snapshot,
        obs,
        &trace[..trace.len().min(32)],
        clients,
        GuardArm::Unguarded,
    );

    // ---- Price: paired arms, best-of-reps, alternating order. ----
    let reps = if quick { 1 } else { 3 };
    let mut best_arms: [Option<ArmResult>; 3] = [None, None, None];
    for _ in 0..reps {
        let round = [
            run_guard_arm("unguarded", &snapshot, obs, trace, clients, GuardArm::Unguarded).0,
            run_guard_arm("guarded", &snapshot, obs, trace, clients, GuardArm::Guarded).0,
            run_guard_arm(
                "guarded_deadline",
                &snapshot,
                obs,
                trace,
                clients,
                GuardArm::GuardedDeadline,
            )
            .0,
        ];
        for (slot, new) in best_arms.iter_mut().zip(round) {
            match slot {
                Some(old) if old.rps() >= new.rps() => {}
                _ => *slot = Some(new),
            }
        }
    }
    let [unguarded, guarded, guarded_deadline] = best_arms.map(Option::unwrap);
    let ratio = guarded.rps() / unguarded.rps();
    let overhead_pct = (1.0 - ratio) * 100.0;
    let deadline_overhead_pct = (1.0 - guarded_deadline.rps() / unguarded.rps()) * 100.0;
    eprintln!(
        "guard overhead: {:.1} vs {:.1} req/s = {overhead_pct:.2}% ({} rep(s), best-of); with \
         per-request deadline: {:.1} req/s = {deadline_overhead_pct:.2}%",
        guarded.rps(),
        unguarded.rps(),
        reps,
        guarded_deadline.rps()
    );
    if !quick {
        assert!(
            ratio >= 0.95,
            "guarded hot path fell outside the 5% acceptance bound: {:.1} vs {:.1} req/s \
             ({overhead_pct:.2}% overhead)",
            guarded.rps(),
            unguarded.rps()
        );
    }

    // ---- Proof: deterministic fault drill on a guarded engine. ----
    let frozen = snapshot.restore(obs).expect("restore");
    let engine = Arc::new(ImputationEngine::new(frozen, obs.clone()).expect("engine"));
    engine.set_value_guard(Some(ValueGuard { abs_max: Some(1e6), max_jump: None }));
    engine.warm_up();

    // Quarantine drill: real stream values with every 8th replaced by an
    // absurd spike; the guard must drop exactly the spikes, nothing else.
    let drill_len = 64usize;
    let mut spikes_injected = 0usize;
    let t0 = Instant::now();
    for s in 0..SERIES {
        let wm = engine.watermark(s).expect("watermark");
        let mut payload = full_values.series(s)[wm..wm + drill_len].to_vec();
        for (i, v) in payload.iter_mut().enumerate() {
            if i.is_multiple_of(8) {
                *v = 1e9;
                spikes_injected += 1;
            }
        }
        let report = engine.append(s, &payload).expect("spiked append");
        assert_eq!(
            report.values_quarantined,
            drill_len.div_ceil(8),
            "quarantine must drop exactly the injected spikes"
        );
    }
    let quarantine_wall = t0.elapsed().as_secs_f64();
    let quarantined = engine.health().quarantined;
    assert_eq!(quarantined, spikes_injected as u64);

    // Poisoned-payload drill: NaN is refused typed, nothing recorded.
    let mut nan_rejections = 0u64;
    for s in 0..SERIES {
        let wm = engine.watermark(s).expect("watermark");
        match engine.append(s, &[0.0, f64::NAN]) {
            Err(ServeError::NonFiniteInput { .. }) => nan_rejections += 1,
            other => panic!("NaN append must fail typed, got {other:?}"),
        }
        assert_eq!(engine.watermark(s).expect("watermark"), wm, "rejected append advanced time");
    }

    // Panic drill: three injected executor panics through the batcher; every
    // caller gets a typed answer, the worker survives, the engine heals.
    let injected_panics = 3u64;
    let panics_left = Arc::new(std::sync::atomic::AtomicU64::new(injected_panics));
    let hook_count = Arc::clone(&panics_left);
    engine.set_eval_hook(Some(Box::new(move |_results| {
        if hook_count
            .fetch_update(
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
                |n| n.checked_sub(1),
            )
            .is_ok()
        {
            panic!("bench-injected executor fault");
        }
    })));
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), 16);
    let live = engine.live_len();
    let mut typed_panicked = 0u64;
    let mut answered = 0u64;
    let drill_handles: Vec<_> = (0..SERIES)
        .map(|s| {
            let client = batcher.client();
            std::thread::spawn(move || client.query(s, 0, live))
        })
        .collect();
    for h in drill_handles {
        match h.join().expect("drill client thread") {
            Ok(vals) => {
                assert_eq!(vals.len(), live);
                answered += 1;
            }
            Err(ServeError::Panicked) => typed_panicked += 1,
            Err(other) => panic!("unexpected drill error: {other}"),
        }
    }
    engine.set_eval_hook(None);
    let panics_caught = batcher.panics_caught();
    assert!(panics_caught >= 1, "the supervisor saw no injected panic");
    // Healed: the same batcher serves every series again, end to end.
    let client = batcher.client();
    for s in 0..SERIES {
        assert_eq!(client.query(s, 0, live).expect("post-drill query").len(), live);
    }
    let poison_recoveries = engine.health().poison_recoveries;

    // Durable-snapshot drill: atomic write, bit-flip, typed corruption,
    // fallback to the good generation.
    let dir = std::env::temp_dir();
    let good = dir.join(format!("mvi_bench6_{}_good.snap", std::process::id()));
    let bad = dir.join(format!("mvi_bench6_{}_bad.snap", std::process::id()));
    let t0 = Instant::now();
    engine.snapshot_to_path(&good).expect("durable write");
    let durable_write_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = std::fs::metadata(&good).expect("stat").len();
    let mut bytes = std::fs::read(&good).expect("read back");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&bad, &bytes).expect("write corrupt copy");
    let corrupt_detected =
        matches!(ImputationEngine::from_snapshot_path(&bad), Err(ServeError::Corrupt { .. }));
    assert!(corrupt_detected, "a bit-flipped snapshot must fail the integrity check");
    let t0 = Instant::now();
    let (restored, fallback_index) =
        ImputationEngine::restore_with_fallback(&[&bad, &good]).expect("fallback restore");
    let durable_restore_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fallback_index, 1, "fallback must walk past the corrupt generation");
    assert_eq!(restored.live_len(), live);
    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&bad);

    eprintln!(
        "fault drill: {quarantined} quarantined, {nan_rejections} NaN payloads rejected, \
         {panics_caught} panic(s) caught ({typed_panicked} typed / {answered} answered, \
         {poison_recoveries} poison recoveries), corrupt snapshot detected + fallback restore \
         {durable_restore_ms:.1} ms ({snapshot_bytes} B)"
    );

    // ---- Artifact. ----
    let mut json =
        String::from("{\n  \"bench\": 6,\n  \"scenario\": \"guarded_serving_and_fault_drill\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}}},\n  \"threads_used\": \
         {threads},\n  \"client_threads\": {clients},\n  \"reps_best_of\": {reps},"
    );
    json.push_str("  \"arms\": [\n");
    for (i, arm) in [&unguarded, &guarded, &guarded_deadline].into_iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"requests\": {}, \"wall_secs\": {:.6}, \"rps\": {:.2}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            arm.name,
            arm.requests,
            arm.wall_secs,
            arm.rps(),
            arm.p50_ms,
            arm.p99_ms
        );
        json.push_str(if i == 2 { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"guard_overhead_pct\": {overhead_pct:.3},\n  \"within_5pct\": {},\n  \
         \"deadline_overhead_pct\": {deadline_overhead_pct:.3},",
        ratio >= 0.95
    );
    let _ = writeln!(
        json,
        "  \"fault_drill\": {{\"quarantined\": {quarantined}, \"quarantine_values_per_sec\": \
         {:.2}, \"nan_payloads_rejected\": {nan_rejections}, \"injected_panics\": \
         {injected_panics}, \"panics_caught\": {panics_caught}, \"typed_panicked\": \
         {typed_panicked}, \"poison_recoveries\": {poison_recoveries}, \"snapshot_bytes\": \
         {snapshot_bytes}, \"durable_write_ms\": {durable_write_ms:.4}, \"durable_restore_ms\": \
         {durable_restore_ms:.4}, \"corrupt_detected\": true, \"fallback_index\": \
         {fallback_index}, \"all_faults_typed\": true}}",
        (SERIES * drill_len) as f64 / quarantine_wall
    );
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write faults bench json");
    eprintln!("wrote {out_path}");
}

/// Scenario 6 (`BENCH_7.json`): warm-read scaling of the sharded engine.
///
/// **Scaling sweep** — the same seeded warm-query trace runs at 1/2/4/8
/// concurrent reader threads against the engine in both read postures:
/// `locked` (warm reads off — every query takes the core mutex, i.e. the
/// single-lock build this PR replaces) and `sharded` (lock-free per-series
/// snapshot reads). Reader threads are spawned literally
/// ([`mvi_parallel::run_workers`]), deliberately ignoring the core count —
/// oversubscription *is* the serving shape being measured. The ≥3× gate on
/// sharded-vs-locked aggregate throughput at 8 readers is asserted only when
/// the host has ≥ 8 cores; below that the ratio is recorded but a scaling
/// claim would be dishonest, so `asserted: false` goes in the artifact.
///
/// **Mixed-traffic probe** — a writer streams appends into series 0 while
/// readers sweep the other series. The engine's `lock_wait_nanos` counter
/// prices every *contended* core-lock acquisition; the harness asserts the
/// sharded run's delta is exactly **zero** — warm reads never touch the core
/// lock, so they cannot block the writer nor be blocked by it. This holds on
/// any host, single-core included, so it is asserted unconditionally (the
/// locked posture's measured wait is reported alongside for contrast).
fn run_sharded_scenario(
    model: &DeepMviModel,
    obs: &mvi_data::dataset::ObservedDataset,
    quick: bool,
    threads: usize,
    out_path: &str,
) {
    let host_cores = mvi_parallel::available_threads();
    let ops_per_worker = if quick { 1_000 } else { 10_000 };
    let snapshot = ServeSnapshot::capture(model, obs);
    let build = |warm: bool| {
        let frozen = snapshot.restore(obs).expect("restore");
        let engine = ImputationEngine::new(frozen, obs.clone()).expect("engine");
        engine.set_warm_reads(warm);
        engine.warm_up();
        engine
    };
    // The seeded warm trace: pure function of (worker, op) so every point of
    // the sweep answers an identical workload.
    let query_of = |worker: usize, k: usize| {
        let x = worker.wrapping_mul(0x9E37_79B9).wrapping_add(k.wrapping_mul(2_654_435_761));
        let s = x % SERIES;
        let lo = (x / 7) % (T - 80);
        (s, lo, (lo + 40 + (x / 11) % 40).min(T))
    };

    // ---- Scaling sweep: aggregate warm rps at 1/2/4/8 readers per mode. ----
    struct ScalePoint {
        mode: &'static str,
        readers: usize,
        ops: usize,
        wall_secs: f64,
    }
    let mut points: Vec<ScalePoint> = Vec::new();
    for (mode, warm) in [("locked", false), ("sharded", true)] {
        let engine = build(warm);
        let shards = engine.shard_count();
        for readers in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let served = mvi_parallel::run_workers(readers, |w| {
                let mut n = 0usize;
                for k in 0..ops_per_worker {
                    let (s, lo, hi) = query_of(w, k);
                    let got = engine.query(s, lo, hi).expect("warm query");
                    assert_eq!(got.len(), hi - lo);
                    n += 1;
                }
                n
            });
            let wall_secs = t0.elapsed().as_secs_f64();
            let ops: usize = served.iter().sum();
            assert_eq!(ops, readers * ops_per_worker);
            eprintln!(
                "{mode:>8} x{readers}: {ops} warm queries in {wall_secs:.3}s = {:>9.0} q/s \
                 ({shards} shards)",
                ops as f64 / wall_secs
            );
            points.push(ScalePoint { mode, readers, ops, wall_secs });
        }
    }
    let rps_at = |mode: &str, readers: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.readers == readers)
            .map(|p| p.ops as f64 / p.wall_secs)
            .expect("sweep point")
    };
    let speedup_at_8 = rps_at("sharded", 8) / rps_at("locked", 8);
    let gate_asserted = host_cores >= 8;
    eprintln!(
        "sharded/locked aggregate throughput at 8 readers: {speedup_at_8:.2}x \
         (gate {} on {host_cores}-core host)",
        if gate_asserted { "asserted" } else { "recorded only" }
    );
    if gate_asserted {
        assert!(
            speedup_at_8 >= 3.0,
            "sharded read path must scale: {speedup_at_8:.2}x at 8 readers is below the 3x floor"
        );
    }

    // ---- Mixed traffic: the blocked-time probe. ----
    struct MixedResult {
        appends: usize,
        reads: usize,
        wall_secs: f64,
        lock_wait_ms: f64,
    }
    let n_appends = if quick { 20 } else { 60 };
    let mixed_readers = 4usize;
    let mut mixed: Vec<(&'static str, MixedResult)> = Vec::new();
    for (mode, warm) in [("locked", false), ("sharded", true)] {
        let engine = build(warm);
        let wait_before = engine.lock_wait_nanos();
        let stop = std::sync::atomic::AtomicBool::new(false);
        let t0 = Instant::now();
        let (appends, reads) = std::thread::scope(|scope| {
            let (engine, stop) = (&engine, &stop);
            let readers: Vec<_> = (0..mixed_readers)
                .map(|r| {
                    scope.spawn(move || {
                        let mut n = 0usize;
                        while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                            let (s, lo, hi) = query_of(r, n);
                            // Steer clear of the written series: these reads
                            // are the "unrelated" traffic the probe is about.
                            let s = 1 + s % (SERIES - 1);
                            let got = engine.query(s, lo, hi).expect("mixed warm query");
                            assert_eq!(got.len(), hi - lo);
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            for _ in 0..n_appends {
                let wm = engine.watermark(0).expect("watermark");
                let payload: Vec<f64> = (0..9).map(|k| (((wm + k) as f64) * 0.01).sin()).collect();
                engine.append(0, &payload).expect("mixed append");
            }
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            (n_appends, readers.into_iter().map(|h| h.join().expect("reader")).sum::<usize>())
        });
        let wall_secs = t0.elapsed().as_secs_f64();
        let lock_wait_ms = (engine.lock_wait_nanos() - wait_before) as f64 / 1e6;
        eprintln!(
            "{mode:>8} mixed: {appends} appends + {reads} reads in {wall_secs:.3}s, contended \
             core-lock wait {lock_wait_ms:.3} ms"
        );
        if warm {
            assert_eq!(
                lock_wait_ms, 0.0,
                "sharded warm reads touched the core lock under mixed traffic"
            );
        }
        mixed.push((mode, MixedResult { appends, reads, wall_secs, lock_wait_ms }));
    }

    // ---- Artifact. ----
    let shards = build(true).shard_count();
    let mut json = String::from("{\n  \"bench\": 7,\n  \"scenario\": \"sharded_warm_reads\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}}},\n  \"threads_used\": \
         {threads},\n  \"host_cores\": {host_cores},\n  \"shards\": {shards},\n  \
         \"ops_per_worker\": {ops_per_worker},"
    );
    json.push_str("  \"scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"readers\": {}, \"ops\": {}, \"wall_secs\": {:.6}, \
             \"rps\": {:.2}}}",
            p.mode,
            p.readers,
            p.ops,
            p.wall_secs,
            p.ops as f64 / p.wall_secs
        );
        json.push_str(if i + 1 == points.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"scaling_gate\": {{\"required\": 3.0, \"measured_speedup_at_8\": \
         {speedup_at_8:.3}, \"asserted\": {gate_asserted}}},"
    );
    json.push_str("  \"mixed_traffic\": {\n");
    for (i, (mode, m)) in mixed.iter().enumerate() {
        let _ = write!(
            json,
            "    \"{mode}\": {{\"appends\": {}, \"reads\": {}, \"wall_secs\": {:.6}, \
             \"lock_wait_ms\": {:.4}}}",
            m.appends, m.reads, m.wall_secs, m.lock_wait_ms
        );
        json.push_str(if i + 1 == mixed.len() { "\n" } else { ",\n" });
    }
    json.push_str("  },\n  \"warm_reads_blocked\": false\n}\n");
    std::fs::write(out_path, &json).expect("write sharded bench json");
    eprintln!("wrote {out_path}");
}

/// Scenario 7 (`BENCH_8.json`): the price and the proof of the network
/// front door.
///
/// **Price** — the shared trace replayed twice against the same trained
/// engine: once through in-process [`mvi_serve::BatchClient`] threads (the
/// BENCH_2 engine arm, the zero-wire baseline) and once through
/// [`mvi_net::NetClient`] threads over framed TCP on loopback. Sustained
/// req/s and p50/p99 per arm; the wire overhead is their throughput ratio,
/// reported but not gated — loopback syscall cost varies too much across
/// hosts for an honest universal floor.
///
/// **Proof** — two wire-level fault drills, *asserted* in-harness:
///
/// * **overload shed**: a flood over a 2-deep queue behind a stalled
///   evaluation must come back as typed `Overloaded` frames carrying the
///   retry-after hint, and a client retrying on exactly that signal must
///   succeed once the stall releases;
/// * **graceful drain**: `shutdown()` under in-flight load must answer
///   every accepted request with a reply frame — real values for the
///   mid-evaluation request, the typed `Shutdown` code for queued ones,
///   and zero transport-level losses.
fn run_net_scenario(
    model: &DeepMviModel,
    obs: &mvi_data::dataset::ObservedDataset,
    trace: &[(usize, usize, usize)],
    clients: usize,
    quick: bool,
    threads: usize,
    out_path: &str,
) {
    use mvi_net::{ClientConfig, ErrorCode, NetClient, NetServer, RetryPolicy, ServerConfig};

    let snapshot = ServeSnapshot::capture(model, obs);
    // The throughput arms run warm (steady-state serving); the drill engines
    // stay cold so the stall hook — which only fires on a real forward pass —
    // actually gets to stall the worker.
    let build_engine = |warm: bool| {
        let frozen = snapshot.restore(obs).expect("restore");
        let engine = Arc::new(ImputationEngine::new(frozen, obs.clone()).expect("engine"));
        if warm {
            engine.warm_up();
        }
        engine
    };
    // ---- Arm 1: in-process batch clients (the zero-wire baseline). ----
    let engine = build_engine(true);
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), 64);
    let per_client = trace.len().div_ceil(clients);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let client = batcher.client();
        let part: Vec<(usize, usize, usize)> =
            trace.iter().skip(c * per_client).take(per_client).copied().collect();
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(part.len());
            for (s, lo, hi) in part {
                let t = Instant::now();
                client.query(s, lo, hi).expect("in-process query");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut lat = Vec::with_capacity(trace.len());
    for h in handles {
        lat.extend(h.join().expect("in-process client thread"));
    }
    let inproc = summarize("inproc", t0.elapsed().as_secs_f64(), lat);
    drop(batcher);

    // ---- Arm 2: the same trace through framed TCP on loopback. ----
    let engine = build_engine(true);
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&engine), ServerConfig::default())
        .expect("bind loopback server");
    let addr = server.local_addr();
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let part: Vec<(usize, usize, usize)> =
            trace.iter().skip(c * per_client).take(per_client).copied().collect();
        handles.push(std::thread::spawn(move || {
            let mut client = NetClient::new(addr, no_retry_config());
            let mut lat = Vec::with_capacity(part.len());
            for (s, lo, hi) in part {
                let t = Instant::now();
                client.query(s as u32, lo as u32, hi as u32).expect("wire query");
                lat.push(t.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut lat = Vec::with_capacity(trace.len());
    for h in handles {
        lat.extend(h.join().expect("wire client thread"));
    }
    let net = summarize("net", t0.elapsed().as_secs_f64(), lat);
    let stats = server.stats();
    assert_eq!(server.panics_caught(), Some(0), "the trace must not panic the server");
    assert_eq!(stats.requests, trace.len() as u64);
    server.shutdown();
    let wire_overhead_pct = (1.0 - net.rps() / inproc.rps()) * 100.0;
    eprintln!(
        "wire overhead on loopback: {:.1} vs {:.1} req/s = {wire_overhead_pct:.2}% \
         ({} connections for {} requests)",
        net.rps(),
        inproc.rps(),
        stats.accepted,
        stats.requests
    );

    // ---- Drill 1: overload shed + retry-through. ----
    let engine = build_engine(false);
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let gate = Arc::clone(&release);
    engine.set_eval_hook(Some(Box::new(move |_results| {
        while !gate.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
    })));
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 2,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&engine), config).expect("bind drill server");
    let addr = server.local_addr();
    let stalled =
        std::thread::spawn(move || NetClient::new(addr, no_retry_config()).query(0, 0, T as u32));
    while engine.stats().batches == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let flood_n = if quick { 4 } else { 8 };
    let floods: Vec<_> = (0..flood_n)
        .map(|_| {
            std::thread::spawn(move || {
                NetClient::new(addr, no_retry_config()).query(1, 0, T as u32)
            })
        })
        .collect();
    let retry = RetryPolicy {
        max_attempts: 40,
        base: Duration::from_millis(10),
        max_delay: Duration::from_millis(80),
        ..RetryPolicy::default()
    };
    let patient = std::thread::spawn(move || {
        NetClient::new(addr, ClientConfig { retry, ..ClientConfig::default() })
            .query(2, 0, T as u32)
    });
    std::thread::sleep(Duration::from_millis(150));
    release.store(true, std::sync::atomic::Ordering::Release);
    let mut shed = 0usize;
    for h in floods {
        match h.join().expect("flood client") {
            Ok(vals) => assert_eq!(vals.len(), T),
            Err(e) => {
                assert_eq!(e.code(), Some(ErrorCode::Overloaded), "flood must shed typed: {e}");
                assert!(e.retry_after().is_some(), "shed replies must carry the backoff hint");
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "a flood over a 2-deep queue must shed load");
    assert_eq!(stalled.join().expect("stalled client").expect("stalled reply").len(), T);
    let retry_ok = patient.join().expect("patient client");
    assert_eq!(retry_ok.expect("the retrying client must succeed once the flood passes").len(), T);
    engine.set_eval_hook(None);
    server.shutdown();
    eprintln!("overload drill: {shed}/{flood_n} shed typed, retrying client succeeded");

    // ---- Drill 2: graceful drain, zero lost replies. ----
    let engine = build_engine(false);
    let release = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let gate = Arc::clone(&release);
    engine.set_eval_hook(Some(Box::new(move |_results| {
        while !gate.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
    })));
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 64,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&engine), config).expect("bind drain server");
    let addr = server.local_addr();
    let drain_clients = if quick { 4 } else { 8 };
    let in_flight: Vec<_> = (0..drain_clients)
        .map(|i| {
            std::thread::spawn(move || {
                NetClient::new(addr, no_retry_config()).query((i % SERIES) as u32, 0, T as u32)
            })
        })
        .collect();
    while engine.stats().batches == 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(150));
    let unblock = {
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            release.store(true, std::sync::atomic::Ordering::Release);
        })
    };
    server.shutdown();
    let (mut answered, mut drained) = (0usize, 0usize);
    for h in in_flight {
        match h.join().expect("drain client") {
            Ok(vals) => {
                assert_eq!(vals.len(), T);
                answered += 1;
            }
            Err(e) => match e.code() {
                Some(ErrorCode::Shutdown) => drained += 1,
                other => panic!("lost reply during drain: {e} (code {other:?})"),
            },
        }
    }
    unblock.join().expect("unblock thread");
    assert_eq!(answered + drained, drain_clients, "every accepted request must be answered");
    assert!(answered >= 1, "the mid-drain evaluation must complete with real values");
    assert!(drained >= 1, "queued requests must receive the typed Shutdown frame");
    eprintln!(
        "drain drill: {answered} answered with values + {drained} typed Shutdown = \
         {drain_clients} accepted, 0 lost"
    );
    // ---- Artifact. ----
    let mut json = String::from("{\n  \"bench\": 8,\n  \"scenario\": \"net_front_door\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}}},\n  \"threads_used\": \
         {threads},\n  \"client_threads\": {clients},"
    );
    json.push_str("  \"arms\": [\n");
    for (i, arm) in [&inproc, &net].into_iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"requests\": {}, \"wall_secs\": {:.6}, \"rps\": {:.2}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            arm.name,
            arm.requests,
            arm.wall_secs,
            arm.rps(),
            arm.p50_ms,
            arm.p99_ms
        );
        json.push_str(if i == 1 { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"wire_overhead_pct\": {wire_overhead_pct:.3},\n  \"server\": {{\"accepted\": {}, \
         \"requests\": {}, \"rejected\": {}, \"bad_frames\": {}}},",
        stats.accepted, stats.requests, stats.rejected, stats.bad_frames
    );
    let _ = writeln!(
        json,
        "  \"overload_drill\": {{\"flood_clients\": {flood_n}, \"shed_typed\": {shed}, \
         \"retry_after_hint\": true, \"retrying_client_succeeded\": true}},"
    );
    let _ = writeln!(
        json,
        "  \"drain_drill\": {{\"clients\": {drain_clients}, \"answered_with_values\": \
         {answered}, \"typed_shutdown\": {drained}, \"lost_replies\": 0}}"
    );
    json.push_str("}\n");
    std::fs::write(out_path, &json).expect("write net bench json");
    eprintln!("wrote {out_path}");
}

/// Scenario 8 (`BENCH_9.json`): the price and the proof of multi-model
/// tenancy.
///
/// **Price** — the shared trace replayed through one front door backed by a
/// registry of 1, 4 and 16 tenants (clients round-robin their requests over
/// the tenant ids; every tenant serves the same trained model so the arms
/// differ only in routing and per-tenant batcher count), plus a **cold-load**
/// arm: a capacity-1 registry alternating two tenants, so every request pays
/// a full evict→snapshot→reload cycle on the serving path.
///
/// **Proof** — asserted in-harness, not just reported:
///
/// * **isolation**: a hostile tenant whose model is armed to panic every
///   forward pass, flooded by its own clients, must leave a victim tenant's
///   replies bitwise identical to its pre-storm baseline with p99 bounded by
///   `max(50 ms, 25 × baseline p99)` — and the drill only counts once the
///   panics have demonstrably landed;
/// * **unknown tenant**: answered with the typed `UnknownTenant` code on a
///   connection that stays open for the next request.
fn run_tenancy_scenario(
    model: &DeepMviModel,
    obs: &mvi_data::dataset::ObservedDataset,
    trace: &[(usize, usize, usize)],
    clients: usize,
    quick: bool,
    threads: usize,
    out_path: &str,
) {
    use mvi_net::{ErrorCode, NetClient, NetServer, ServerConfig};
    use mvi_serve::{ModelRegistry, RegistryConfig};

    let snapshot = ServeSnapshot::capture(model, obs);
    let build_engine = |warm: bool| {
        let frozen = snapshot.restore(obs).expect("restore");
        let engine = Arc::new(ImputationEngine::new(frozen, obs.clone()).expect("engine"));
        if warm {
            engine.warm_up();
        }
        engine
    };
    let spill_root = std::env::temp_dir().join(format!("mvi-bench-tenancy-{}", std::process::id()));

    // ---- Throughput arms: 1 / 4 / 16 tenants behind one door. ----
    let mut arms: Vec<ArmResult> = Vec::new();
    for (n_tenants, arm_name) in [(1usize, "tenants_1"), (4, "tenants_4"), (16, "tenants_16")] {
        let reg =
            Arc::new(ModelRegistry::new(RegistryConfig::new(n_tenants, spill_root.join(arm_name))));
        let names: Vec<String> = (0..n_tenants).map(|i| format!("tenant-{i}")).collect();
        for name in &names {
            reg.register(name, build_engine(true)).expect("register tenant");
        }
        let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default())
            .expect("bind tenancy server");
        let addr = server.local_addr();
        let per_client = trace.len().div_ceil(clients);
        let t0 = Instant::now();
        let mut handles = Vec::new();
        for c in 0..clients {
            let part: Vec<(usize, usize, usize)> =
                trace.iter().skip(c * per_client).take(per_client).copied().collect();
            let names = names.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = NetClient::new(addr, no_retry_config());
                let mut lat = Vec::with_capacity(part.len());
                for (i, (s, lo, hi)) in part.into_iter().enumerate() {
                    // Round-robin over tenants: every request re-routes.
                    client.set_tenant(names[(c + i) % names.len()].as_str());
                    let t = Instant::now();
                    client.query(s as u32, lo as u32, hi as u32).expect("tenant query");
                    lat.push(t.elapsed().as_secs_f64() * 1e3);
                }
                lat
            }));
        }
        let mut lat = Vec::with_capacity(trace.len());
        for h in handles {
            lat.extend(h.join().expect("tenant client thread"));
        }
        let arm = summarize(arm_name, t0.elapsed().as_secs_f64(), lat);
        assert_eq!(server.panics_caught(), Some(0), "the trace must not panic any tenant");
        assert_eq!(server.stats().requests, trace.len() as u64);
        server.shutdown();
        arms.push(arm);
    }

    // ---- Cold-load arm: every request is an evict→snapshot→reload. ----
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(1, spill_root.join("cold"))));
    reg.register("cold-a", build_engine(true)).expect("register cold-a");
    reg.register("cold-b", build_engine(true)).expect("register cold-b");
    let server = NetServer::bind_registry("127.0.0.1:0", Arc::clone(&reg), ServerConfig::default())
        .expect("bind cold server");
    let cold_n = if quick { 6 } else { 24 };
    let mut client = NetClient::new(server.local_addr(), no_retry_config());
    let mut lat = Vec::with_capacity(cold_n);
    let t0 = Instant::now();
    for i in 0..cold_n {
        // Alternating tenants on a capacity-1 registry: each request must
        // evict the other tenant and reload its own snapshot from disk.
        client.set_tenant(if i % 2 == 0 { "cold-a" } else { "cold-b" });
        let (s, lo, hi) = trace[i % trace.len()];
        let t = Instant::now();
        client.query(s as u32, lo as u32, hi as u32).expect("cold query");
        lat.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let cold = summarize("cold_load", t0.elapsed().as_secs_f64(), lat);
    let reg_stats = reg.stats();
    assert!(
        reg_stats.loads >= cold_n as u64 - 1,
        "the cold arm must actually churn: {reg_stats:?}"
    );
    server.shutdown();
    arms.push(cold);

    // ---- Drill 1: hostile-tenant isolation, progress-gated. ----
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(4, spill_root.join("hostile"))));
    let victim_oracle = build_engine(true);
    reg.register("victim", build_engine(true)).expect("register victim");
    let mal = build_engine(false);
    mal.set_eval_hook(Some(Box::new(|_results| panic!("armed hostile model"))));
    reg.register("mallory", mal).expect("register mallory");
    let server = NetServer::bind_registry("127.0.0.1:0", Arc::clone(&reg), ServerConfig::default())
        .expect("bind hostile server");
    let addr = server.local_addr();

    let probe_n = if quick { 12 } else { 60 };
    let mut victim = NetClient::with_tenant(addr, "victim", no_retry_config());
    let mut base_lat = Vec::with_capacity(probe_n);
    let t0 = Instant::now();
    for i in 0..probe_n {
        let (s, lo, hi) = trace[i % trace.len()];
        let t = Instant::now();
        victim.query(s as u32, lo as u32, hi as u32).expect("baseline victim query");
        base_lat.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let baseline = summarize("victim_base", t0.elapsed().as_secs_f64(), base_lat);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hostiles: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = NetClient::with_tenant(addr, "mallory", no_retry_config());
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let _ = client.query(0, 0, T as u32);
                }
            })
        })
        .collect();
    // Progress gate: the isolation claim is empty until panics actually land.
    let gate_start = Instant::now();
    while server.panics_caught().unwrap_or(0) < 3 {
        assert!(
            gate_start.elapsed() < Duration::from_secs(30),
            "the armed tenant never panicked; the drill proves nothing"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut storm_lat = Vec::with_capacity(probe_n);
    let mut bitwise_identical = true;
    let t0 = Instant::now();
    for i in 0..probe_n {
        let (s, lo, hi) = trace[i % trace.len()];
        let t = Instant::now();
        let got = victim.query(s as u32, lo as u32, hi as u32).expect("mid-storm victim query");
        storm_lat.push(t.elapsed().as_secs_f64() * 1e3);
        let want = victim_oracle.query(s, lo, hi).expect("oracle query");
        bitwise_identical &= want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits());
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    for h in hostiles {
        h.join().expect("hostile client thread");
    }
    let storm = summarize("victim_storm", t0.elapsed().as_secs_f64(), storm_lat);
    let panics = server.panics_caught().unwrap_or(0);
    let p99_bound = (25.0 * baseline.p99_ms).max(50.0);
    assert!(bitwise_identical, "the hostile neighbor perturbed the victim's values");
    assert!(
        storm.p99_ms <= p99_bound,
        "victim p99 {:.3} ms exceeds the isolation bound {:.3} ms (baseline {:.3} ms)",
        storm.p99_ms,
        p99_bound,
        baseline.p99_ms
    );
    eprintln!(
        "isolation drill: victim p99 {:.3} ms under storm (baseline {:.3} ms, bound {:.3} ms), \
         {panics} hostile panics caught, values bitwise identical",
        storm.p99_ms, baseline.p99_ms, p99_bound
    );

    // ---- Drill 2: unknown tenant, typed on a live connection. ----
    let mut stranger = NetClient::with_tenant(addr, "nobody", no_retry_config());
    let err = stranger.query(0, 0, 10).expect_err("unknown tenant must be refused");
    assert_eq!(err.code(), Some(ErrorCode::UnknownTenant), "must be typed: {err}");
    stranger.set_tenant("victim");
    assert!(
        stranger.query(0, 0, 10).is_ok(),
        "the connection must survive an unknown-tenant reply"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&spill_root);

    // ---- Artifact. ----
    let mut json = String::from("{\n  \"bench\": 9,\n  \"scenario\": \"multi_model_tenancy\",\n");
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"series\": {SERIES}, \"t_len\": {T}}},\n  \"threads_used\": \
         {threads},\n  \"client_threads\": {clients},"
    );
    json.push_str("  \"arms\": [\n");
    let tenant_counts = [1usize, 4, 16, 2];
    for (i, (arm, tenants)) in arms.iter().zip(tenant_counts).enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"tenants\": {tenants}, \"requests\": {}, \"wall_secs\": \
             {:.6}, \"rps\": {:.2}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
            arm.name,
            arm.requests,
            arm.wall_secs,
            arm.rps(),
            arm.p50_ms,
            arm.p99_ms
        );
        json.push_str(if i + 1 == arms.len() { "\n" } else { ",\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"cold_load\": {{\"cycles\": {cold_n}, \"registry_loads\": {}, \
         \"registry_evictions\": {}}},",
        reg_stats.loads, reg_stats.evictions
    );
    let _ = writeln!(
        json,
        "  \"isolation_drill\": {{\"baseline_p99_ms\": {:.4}, \"storm_p99_ms\": {:.4}, \
         \"bound_factor\": 25.0, \"floor_ms\": 50.0, \"hostile_panics_caught\": {panics}, \
         \"bitwise_identical\": true, \"asserted\": true}},",
        baseline.p99_ms, storm.p99_ms
    );
    json.push_str("  \"unknown_tenant\": {\"typed\": true, \"connection_survived\": true}\n}\n");
    std::fs::write(out_path, &json).expect("write tenancy bench json");
    eprintln!("wrote {out_path}");
}

/// [`mvi_net::ClientConfig`] with retries off — drill threads must observe
/// first-reply semantics (free function so `move` closures can call it).
fn no_retry_config() -> mvi_net::ClientConfig {
    mvi_net::ClientConfig {
        retry: mvi_net::RetryPolicy::none(),
        ..mvi_net::ClientConfig::default()
    }
}
