//! Regenerates Table 1: the dataset inventory with measured repetition and
//! relatedness proxies.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::table1_datasets;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&[table1_datasets(&args.exp)]);
}
