//! Regenerates Table 2: the deep-learning method comparison (BRITS, GP-VAE,
//! Transformer, DeepMVI) on the multidimensional datasets and MCAR/Blackout.

use mvi_bench::BenchArgs;
use mvi_eval::experiments::table2_deep;

fn main() {
    let args = BenchArgs::parse();
    args.emit(&[table2_deep(&args.exp)]);
}
