//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--scale=F`   dataset scale factor (default 0.25; `--full` sets 1.0 — the
//!   paper shapes — and switches the learned methods to their paper budgets),
//! * `--seed=N`    base seed (default 7),
//! * `--csv=DIR`   additionally write each table as a CSV file under `DIR`,
//! * `--threads=N` cap worker threads for the parallel kernels and the trainer
//!   (default: the machine's available parallelism).
//!
//! Run them all with `cargo run -p mvi-bench --release --bin <name>`; see
//! `EXPERIMENTS.md` for the mapping from paper artifact to binary.

use mvi_eval::report::Table;
use mvi_eval::{experiments::ExpConfig, MethodBudget};
use std::io::Write as _;
use std::path::PathBuf;

/// Parsed command-line options shared by all regeneration binaries.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Experiment configuration (scale, seed, method budget).
    pub exp: ExpConfig,
    /// Optional directory for CSV output.
    pub csv_dir: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses `std::env::args`; unknown flags abort with usage help.
    pub fn parse() -> Self {
        let mut exp = ExpConfig::default();
        let mut csv_dir = None;
        for arg in std::env::args().skip(1) {
            if arg == "--full" {
                exp.scale = 1.0;
                exp.budget = MethodBudget::Paper;
            } else if let Some(v) = arg.strip_prefix("--scale=") {
                exp.scale = v.parse().unwrap_or_else(|_| usage(&arg));
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                exp.seed = v.parse().unwrap_or_else(|_| usage(&arg));
            } else if let Some(v) = arg.strip_prefix("--csv=") {
                csv_dir = Some(PathBuf::from(v));
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                let n: usize = v.parse().unwrap_or_else(|_| usage(&arg));
                if n == 0 {
                    usage(&arg);
                }
                mvi_parallel::configure_threads(n);
            } else {
                usage(&arg);
            }
        }
        Self { exp, csv_dir }
    }

    /// Prints tables to stdout and, when `--csv` was given, writes one CSV per
    /// table (file name derived from the title).
    pub fn emit(&self, tables: &[Table]) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        for t in tables {
            let _ = writeln!(lock, "{}", t.render());
        }
        if let Some(dir) = &self.csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for t in tables {
                let name: String = t
                    .title
                    .chars()
                    .map(|c| if c.is_alphanumeric() { c } else { '_' })
                    .collect::<String>()
                    .trim_matches('_')
                    .to_lowercase();
                let path = dir.join(format!("{name}.csv"));
                std::fs::write(&path, t.to_csv()).expect("write csv");
                let _ = writeln!(lock, "wrote {}", path.display());
            }
        }
    }

    /// Sweep points for the Fig 6/7/9 x-axes, thinned at small scales so smoke
    /// runs stay fast.
    pub fn pct_points(&self) -> Vec<f64> {
        if self.exp.scale < 0.15 {
            vec![0.1, 1.0]
        } else {
            vec![0.1, 0.4, 0.7, 1.0]
        }
    }

    /// Blackout block-size sweep for Fig 6.
    pub fn blackout_sizes(&self) -> Vec<usize> {
        if self.exp.scale < 0.15 {
            vec![10, 40]
        } else {
            vec![10, 40, 70, 100]
        }
    }
}

fn usage(arg: &str) -> ! {
    eprintln!("unrecognized argument: {arg}");
    eprintln!("usage: <bin> [--scale=F] [--seed=N] [--full] [--csv=DIR] [--threads=N]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_args_are_quick_scale() {
        let args = BenchArgs { exp: ExpConfig::default(), csv_dir: None };
        assert_eq!(args.exp.scale, 0.25);
        assert_eq!(args.pct_points().len(), 4);
        assert_eq!(args.blackout_sizes().len(), 4);
    }

    #[test]
    fn smoke_scale_thins_sweeps() {
        let args = BenchArgs { exp: ExpConfig::smoke(), csv_dir: None };
        assert_eq!(args.pct_points().len(), 2);
        assert_eq!(args.blackout_sizes().len(), 2);
    }
}
