//! Hyper-parameters and ablation switches (§4.3, §5.5).

use serde::{Deserialize, Serialize};

/// How the kernel-regression module treats the dataset's dimensions (§5.5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelMode {
    /// One embedding space per dimension, siblings per Eq 16 — the proposed model.
    MultiDim,
    /// All dimensions flattened into a single index with a `2·d`-wide embedding —
    /// the DeepMVI1D ablation of Fig 9.
    Flattened,
    /// Kernel regression disabled — the "No Kernel Regression" ablation of Fig 7.
    Off,
}

/// DeepMVI hyper-parameters. Defaults are the paper's (§4.3): `p = 32` filters,
/// window `w = 10` (auto-switched to 20 when the mean missing block exceeds 100),
/// 4 attention heads, member-embedding width 10, Adam at `1e-3`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeepMviConfig {
    /// Number of convolution filters `p` (window-feature width).
    pub p: usize,
    /// Window size `w`; `None` selects 10, or 20 when the average missing block is
    /// longer than 100 steps (§4.3).
    pub window: Option<usize>,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Member-embedding width `d_i` for kernel regression.
    pub embed_dim: usize,
    /// Attention context length, in windows, centred on the imputation target.
    pub ctx_windows: usize,
    /// Cap on kernel-regression siblings per dimension; larger dimensions are
    /// pre-filtered to the most kernel-similar members (§4.2, "top L").
    pub max_siblings: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training instances per optimizer step.
    pub batch_size: usize,
    /// Maximum optimizer steps.
    pub max_steps: usize,
    /// Held-out validation instances for early stopping.
    pub val_instances: usize,
    /// Steps between validation evaluations.
    pub eval_every: usize,
    /// Early-stopping patience, in evaluations without improvement.
    pub patience: usize,
    /// Worker threads for data-parallel gradient accumulation. The default is
    /// the machine's available parallelism (capped by `mvi_parallel`'s global
    /// thread budget, e.g. the bench binaries' `--threads=N` flag).
    pub threads: usize,
    /// RNG seed (parameter init, sampling).
    pub seed: u64,
    /// Ablation: temporal-transformer module on/off (Fig 7 "No Temporal Tr.").
    pub use_temporal_transformer: bool,
    /// Ablation: contextual (left/right window) keys vs. positional-only keys
    /// (Fig 7 "No Context Window").
    pub use_context_window: bool,
    /// Ablation: fine-grained local signal on/off (Fig 8).
    pub use_fine_grained: bool,
    /// Kernel-regression mode (Fig 7 "No Kernel Regression", Fig 9 DeepMVI1D).
    pub kernel_mode: KernelMode,
    /// RBF kernel sharpness γ (Eq 17). Larger values concentrate the sibling
    /// weighting faster as embeddings separate.
    pub kr_gamma: f64,
}

impl Default for DeepMviConfig {
    fn default() -> Self {
        Self {
            p: 32,
            window: None,
            n_heads: 4,
            embed_dim: 10,
            ctx_windows: 64,
            max_siblings: 48,
            lr: 1e-3,
            batch_size: 16,
            max_steps: 800,
            val_instances: 64,
            eval_every: 40,
            patience: 6,
            threads: mvi_parallel::available_threads(),
            seed: 17,
            use_temporal_transformer: true,
            use_context_window: true,
            use_fine_grained: true,
            kernel_mode: KernelMode::MultiDim,
            kr_gamma: 1.0,
        }
    }
}

impl DeepMviConfig {
    /// A scaled-down configuration for unit tests and smoke runs: small network,
    /// short training, deterministic.
    pub fn tiny() -> Self {
        Self {
            p: 8,
            n_heads: 2,
            embed_dim: 4,
            ctx_windows: 16,
            max_siblings: 12,
            batch_size: 8,
            max_steps: 60,
            val_instances: 16,
            eval_every: 15,
            patience: 3,
            threads: 1,
            ..Self::default()
        }
    }

    /// Resolves the window size per §4.3 given the mean missing-block length.
    pub fn resolve_window(&self, mean_block_len: f64) -> usize {
        self.window.unwrap_or(if mean_block_len > 100.0 { 20 } else { 10 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_section_4_3() {
        let cfg = DeepMviConfig::default();
        assert_eq!(cfg.p, 32);
        assert_eq!(cfg.n_heads, 4);
        assert_eq!(cfg.embed_dim, 10);
        assert_eq!(cfg.resolve_window(10.0), 10);
        assert_eq!(cfg.resolve_window(150.0), 20);
    }

    #[test]
    fn explicit_window_overrides_auto_rule() {
        let cfg = DeepMviConfig { window: Some(25), ..Default::default() };
        assert_eq!(cfg.resolve_window(500.0), 25);
    }
}
