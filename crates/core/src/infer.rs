//! The inference half of the train/infer split: value-only forward passes over
//! a **frozen** parameter store.
//!
//! Training ([`crate::train`]) builds one differentiation tape per instance and
//! walks it backwards; serving needs neither gradients nor optimizer state.
//! Since the tape-free evaluator landed, the serving path does not touch the
//! tape at all: [`InferScratch`] wraps an [`mvi_autograd::Eval`] backend whose
//! recycled slot arena executes the window forward pass with **zero heap
//! allocation** at steady state — no tape nodes, no boxed backward closures,
//! no per-op tensors, parameters read by `Arc` share from the frozen store.
//!
//! * [`WindowQuery`] — one unit of inference work: "impute these positions of
//!   window `j` in series `s`".
//! * [`InferScratch`] — recycled evaluator + forward buffers; one per worker.
//! * [`TapeScratch`] — the old tape-backed path, kept as the reference
//!   implementation: differential tests assert the two are **bitwise
//!   identical**, and `infer_bench` measures the evaluator's speedup over it.
//! * [`FrozenModel`] — a trained [`DeepMviModel`] sealed for inference: built
//!   by [`DeepMviModel::freeze`] or rehydrated from an exported parameter
//!   snapshot with [`FrozenModel::from_snapshot`], shared read-only across
//!   worker threads ([`FrozenModel::predict_batch`] fans queries out over
//!   `mvi-parallel`).
//!
//! [`DeepMviModel::impute`] itself routes through this module, so batch
//! imputation and online serving exercise the same forward path.
//! [`DeepMviModel::predict_batch`] additionally **groups** queries by
//! `(series, window)`: duplicate window requests inside one batch share a
//! single forward pass (the attention context is computed once per window per
//! batch), and per-position predictions are independent, so grouping never
//! changes a result bit.

use crate::config::DeepMviConfig;
use crate::model::{DeepMviModel, ForwardScratch, WindowTask};
use mvi_autograd::params::StoreSnapshot;
use mvi_autograd::{Eval, EvalVar, Evaluator, Graph, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_data::windows::WindowGrid;
use mvi_tensor::Tensor;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// One inference work item: predict the given `positions` (all inside window
/// `window_j`) of series `s`. Positions are time indices into the dataset the
/// query is evaluated against.
///
/// A query carries no notion of absolute stream time: window `j` is simply
/// `positions t with t / w == j` of whatever dataset is handed to the predict
/// call. That indifference is what lets the serving engine's **retention
/// ring** reuse this enumeration unchanged — the engine issues queries in
/// *storage* coordinates (its bounded buffer viewed as a standalone dataset),
/// and because the ring origin is window-aligned and the rolling attention
/// horizon of the forward pass is position-relative, evaluating the retained
/// suffix this way is bitwise identical to evaluating the same windows of
/// the full unbounded stream whenever their context lies inside the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowQuery {
    /// Flat series id.
    pub s: usize,
    /// Window index (positions satisfy `t / w == window_j`).
    pub window_j: usize,
    /// Absolute time positions to predict, ascending.
    pub positions: Vec<usize>,
}

/// Reusable forward-pass scratch over the tape-free evaluator. One per worker
/// thread. After the first pass has sized its buffers (warm-up), a
/// steady-state [`DeepMviModel::predict_window_into`] performs **zero heap
/// allocations** — every intermediate lands in a recycled evaluator slot and
/// every index/feature buffer is reused.
#[derive(Default)]
pub struct InferScratch {
    ev: Eval,
    fs: ForwardScratch<EvalVar>,
    /// Reusable `(series, window)` duplicate detector for
    /// [`DeepMviModel::predict_batch_with`]: the engine's steady-state
    /// batches are pre-deduplicated, and probing them must not allocate.
    keys: std::collections::HashMap<(usize, usize), usize>,
    /// Window forward passes executed through this scratch (monotonic).
    passes: u64,
}

impl InferScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many window forward passes this scratch has executed — the
    /// evaluator-level counter behind zero-recompute assertions (e.g. a
    /// warm-restarted serving engine must answer cached queries without
    /// moving it). Parallel batch paths warm one scratch per worker, so for
    /// cross-thread totals prefer the serving engine's
    /// `windows_computed` statistic; this counter is exact for the serial
    /// paths that share one scratch.
    pub fn forward_passes(&self) -> u64 {
        self.passes
    }
}

/// A small checkout pool of [`InferScratch`] buffers for callers whose
/// forward passes are *not* serialized by one long-lived owner — e.g. a
/// serving engine whose scratch must survive a panic unwinding through an
/// evaluation (the scratch is simply not returned and the next checkout
/// warms a fresh one) and must not be welded to the engine's state lock.
///
/// `take` pops a warm scratch (or creates an empty one when the pool is
/// dry); `put` returns it for reuse, keeping at most `cap` resident so a
/// burst of concurrent checkouts cannot pin memory forever.
pub struct ScratchPool {
    pool: std::sync::Mutex<Vec<InferScratch>>,
    cap: usize,
}

impl ScratchPool {
    /// A pool keeping up to 4 warm scratches resident.
    pub fn new() -> Self {
        Self::with_capacity(4)
    }

    /// A pool keeping up to `cap` warm scratches resident (`cap = 0` never
    /// retains anything — every checkout is cold).
    pub fn with_capacity(cap: usize) -> Self {
        Self { pool: std::sync::Mutex::new(Vec::new()), cap }
    }

    /// Checks out a scratch: warm if one is pooled, freshly created
    /// otherwise. Never blocks beyond the pool's own short lock.
    pub fn take(&self) -> InferScratch {
        self.pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Returns a scratch for reuse. Dropped instead when the pool already
    /// holds its configured capacity.
    pub fn put(&self, scratch: InferScratch) {
        let mut pool = self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if pool.len() < self.cap {
            pool.push(scratch);
        }
    }

    /// How many warm scratches are currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }
}

impl Default for ScratchPool {
    fn default() -> Self {
        Self::new()
    }
}

/// The tape-backed forward scratch — the pre-evaluator serving path, retained
/// as the reference implementation. [`DeepMviModel::predict_window_tape`]
/// runs the identical op sequence through [`mvi_autograd::Graph`]; the
/// evaluator path is required (and tested) to match it **bitwise**, and
/// `infer_bench` reports the throughput ratio between the two as
/// `BENCH_4.json`.
#[derive(Default)]
pub struct TapeScratch {
    g: Graph,
    fs: ForwardScratch<VarId>,
}

impl TapeScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DeepMviModel {
    /// The window grid this model computes over.
    pub fn grid(&self) -> WindowGrid {
        WindowGrid::new(self.w, self.t_len)
    }

    /// Seals a trained model for inference.
    pub fn freeze(self) -> FrozenModel {
        FrozenModel { model: self }
    }

    /// Value-only forward pass for one query through the tape-free evaluator,
    /// appending one prediction per query position to `out`. With a warm
    /// scratch and a caller-reused `out` this performs no heap allocation.
    pub fn predict_window_into(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
        out: &mut Vec<f64>,
    ) {
        scratch.ev.recycle();
        scratch.passes += 1;
        let task = WindowTask {
            obs,
            s: query.s,
            window_j: query.window_j,
            positions: &query.positions,
            synth: None,
        };
        self.forward_positions(&self.store, &mut scratch.ev, &mut scratch.fs, &task);
        out.extend(scratch.fs.preds.iter().map(|&p| scratch.ev.value(p).at(0)));
    }

    /// Value-only forward pass for one query. Returns one prediction per
    /// query position (see [`DeepMviModel::predict_window_into`] for the
    /// allocation-free form).
    pub fn predict_window(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(query.positions.len());
        self.predict_window_into(scratch, obs, query, &mut out);
        out
    }

    /// The same forward pass recorded on the differentiation tape — the
    /// reference path the evaluator is differentially tested (bitwise) and
    /// benchmarked against. Not used by any serving path.
    pub fn predict_window_tape(
        &self,
        scratch: &mut TapeScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
    ) -> Vec<f64> {
        scratch.g.recycle();
        let task = WindowTask {
            obs,
            s: query.s,
            window_j: query.window_j,
            positions: &query.positions,
            synth: None,
        };
        self.forward_positions(&self.store, &mut scratch.g, &mut scratch.fs, &task);
        scratch.fs.preds.iter().map(|&p| scratch.g.value(p).at(0)).collect()
    }

    /// Evaluates a batch of queries data-parallel over `threads` workers (each
    /// worker owns one [`InferScratch`]; the parameter store is shared read
    /// only). Results are returned in query order regardless of thread count,
    /// so the output is deterministic for a fixed model and input.
    ///
    /// Queries are first **grouped by `(series, window)`**: when a batch
    /// carries several queries into the same window, the window's forward
    /// pass (attention context included) runs once over the union of their
    /// positions and the per-query results are sliced back out. Per-position
    /// predictions are mutually independent given the window context, so the
    /// grouped results are bitwise identical to evaluating each query alone.
    pub fn predict_batch(
        &self,
        obs: &ObservedDataset,
        queries: &[WindowQuery],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.predict_batch_with(&mut InferScratch::new(), obs, queries, threads)
    }

    /// [`DeepMviModel::predict_batch`] reusing a caller-held scratch for the
    /// serial path (parallel chunks still warm one scratch per worker; the
    /// spawn already dwarfs that cost). The serving engine holds one scratch
    /// for its whole lifetime, so per-append micro-batches run allocation-lean.
    pub fn predict_batch_with(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        queries: &[WindowQuery],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        // Fast path: probe for duplicate (series, window) keys with the
        // scratch's reusable map. The engine's steady-state batches are
        // deduplicated upstream, so the common case builds no grouping
        // structures (and, with a warm map, allocates nothing).
        scratch.keys.clear();
        let mut duplicates = false;
        for (qi, q) in queries.iter().enumerate() {
            if scratch.keys.insert((q.s, q.window_j), qi).is_some() {
                duplicates = true;
                break;
            }
        }
        if !duplicates {
            return self.predict_queries(scratch, obs, queries, threads);
        }

        // Group by (series, window), preserving first-occurrence order.
        let mut key_to_group: HashMap<(usize, usize), usize> =
            HashMap::with_capacity(queries.len());
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            match key_to_group.entry((q.s, q.window_j)) {
                Entry::Occupied(e) => groups[*e.get()].push(qi),
                Entry::Vacant(e) => {
                    e.insert(groups.len());
                    groups.push(vec![qi]);
                }
            }
        }
        let merged: Vec<WindowQuery> = groups
            .iter()
            .map(|g| {
                let first = &queries[g[0]];
                if g.len() == 1 {
                    return first.clone();
                }
                let mut positions: Vec<usize> =
                    g.iter().flat_map(|&qi| queries[qi].positions.iter().copied()).collect();
                positions.sort_unstable();
                positions.dedup();
                WindowQuery { s: first.s, window_j: first.window_j, positions }
            })
            .collect();
        let merged_results = self.predict_queries(scratch, obs, &merged, threads);
        let mut out: Vec<Vec<f64>> =
            queries.iter().map(|q| Vec::with_capacity(q.positions.len())).collect();
        for (group, (mq, mr)) in groups.iter().zip(merged.iter().zip(&merged_results)) {
            for &qi in group {
                for &t in &queries[qi].positions {
                    let idx = mq.positions.binary_search(&t).expect("merged positions cover query");
                    out[qi].push(mr[idx]);
                }
            }
        }
        out
    }

    /// Evaluates each query exactly once (no grouping), serial on the given
    /// scratch or fanned out over `threads` workers.
    fn predict_queries(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        queries: &[WindowQuery],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        let threads = threads.max(1).min(queries.len().max(1));
        if threads <= 1 {
            return queries.iter().map(|q| self.predict_window(scratch, obs, q)).collect();
        }
        mvi_parallel::map_chunks(queries, threads, |chunk| {
            let mut scratch = InferScratch::new();
            chunk.iter().map(|q| self.predict_window(&mut scratch, obs, q)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Enumerates the missing entries of `obs` as window queries, every series.
    ///
    /// `obs` may be longer than the trained series length: the grid follows
    /// the dataset's live length, and windows past the trained range are
    /// evaluated with the rolling trained-length horizon (see
    /// [`DeepMviModel::t_len`]).
    pub fn missing_queries(&self, obs: &ObservedDataset) -> Vec<WindowQuery> {
        let mut out = Vec::new();
        for s in 0..obs.n_series() {
            self.missing_queries_in(obs, s, 0, obs.t_len(), &mut out);
        }
        out
    }

    /// Appends the window queries covering the missing entries of series `s`
    /// inside `[start, end)` to `out`. One query per (missing run × window)
    /// intersection, ascending. Windows are indexed on the grid of `obs`'s
    /// live length, which may extend past the trained range.
    pub fn missing_queries_in(
        &self,
        obs: &ObservedDataset,
        s: usize,
        start: usize,
        end: usize,
        out: &mut Vec<WindowQuery>,
    ) {
        let grid = WindowGrid::new(self.w, obs.t_len());
        let base = out.len();
        for (run_start, run_len) in obs.available.gap_runs_in(s, start, end) {
            let run_end = run_start + run_len;
            for wj in grid.windows_overlapping(run_start, run_end) {
                let (lo, hi) = grid.bounds(wj);
                let positions: Vec<usize> = (lo.max(run_start)..hi.min(run_end)).collect();
                debug_assert!(!positions.is_empty());
                // Merge with a preceding query of *this call* for the same
                // window (two missing runs can cross one window). Entries the
                // caller accumulated earlier are already finalized — merging
                // into them would duplicate positions across calls.
                let merge = out.len() > base
                    && out.last().is_some_and(|prev| prev.s == s && prev.window_j == wj);
                if merge {
                    out.last_mut().expect("non-empty").positions.extend(positions);
                } else {
                    out.push(WindowQuery { s, window_j: wj, positions });
                }
            }
        }
    }

    /// Imputes every missing entry of `obs`, fanning the window queries out
    /// over `self.config().threads` workers. This is the batch path behind
    /// [`DeepMviModel::impute`].
    pub(crate) fn impute_batch(&self, obs: &ObservedDataset) -> Tensor {
        let queries = self.missing_queries(obs);
        let results = self.predict_batch(obs, &queries, self.cfg.threads);
        let mut out = obs.values.clone();
        let t_len = obs.t_len();
        for (q, vals) in queries.iter().zip(&results) {
            let t_off = q.s * t_len;
            for (&t, &v) in q.positions.iter().zip(vals) {
                out.data_mut()[t_off + t] = v;
            }
        }
        out
    }
}

/// A trained DeepMVI model sealed for inference: no optimizer state is
/// reachable, the parameter store is frozen, and every method takes `&self`, so
/// one instance can serve concurrent readers behind an `Arc`.
pub struct FrozenModel {
    model: DeepMviModel,
}

impl FrozenModel {
    /// Rehydrates a frozen model from a configuration and an exported weight
    /// snapshot ([`DeepMviModel::export_params`]). `obs` supplies the dataset
    /// geometry the model was trained for (dimensions, series length); the
    /// weights must match it exactly. `shared_std` is the trained imputation
    /// std-dev, if it was captured.
    ///
    /// # Errors
    /// Propagates any name/shape mismatch between the snapshot and the
    /// parameters a model of this configuration and geometry would own, and
    /// rejects snapshots carrying NaN/±inf weights — a poisoned model would
    /// silently answer every query with NaN, so it cannot be constructed for
    /// inference at all.
    pub fn from_snapshot(
        cfg: &DeepMviConfig,
        obs: &ObservedDataset,
        snap: &StoreSnapshot,
        shared_std: Option<f64>,
    ) -> Result<Self, String> {
        let mut model = DeepMviModel::new(cfg, obs);
        model.import_params(snap)?;
        model.shared_std = shared_std;
        let frozen = model.freeze();
        frozen.validate_finite().map_err(|param| format!("parameter `{param}` is non-finite"))?;
        Ok(frozen)
    }

    /// Checks every frozen weight is finite, returning the first offending
    /// parameter's name otherwise. [`FrozenModel::from_snapshot`] runs this
    /// automatically; callers that freeze a freshly trained model (where a
    /// diverged optimizer could have produced NaN weights) should run it
    /// before serving — the serving engine does so at construction.
    ///
    /// # Errors
    /// The name of the first parameter tensor containing NaN/±inf.
    pub fn validate_finite(&self) -> Result<(), String> {
        match self.model.first_non_finite_param() {
            None => Ok(()),
            Some(param) => Err(param),
        }
    }

    /// The wrapped model, read-only.
    pub fn model(&self) -> &DeepMviModel {
        &self.model
    }

    /// Model configuration.
    pub fn config(&self) -> &DeepMviConfig {
        &self.model.cfg
    }

    /// The window grid the model computes over.
    pub fn grid(&self) -> WindowGrid {
        self.model.grid()
    }

    /// Series length the model was trained for. Inference (every predict/
    /// impute method here) also accepts datasets *longer* than this: windows
    /// past the trained range roll the trained temporal context forward
    /// instead of erroring, which is what lets the serving engine grow series
    /// under live appends.
    pub fn t_len(&self) -> usize {
        self.model.t_len
    }

    /// Shape of the non-time axes the model was built for.
    pub fn series_shape(&self) -> &[usize] {
        &self.model.series_shape
    }

    /// Trained shared imputation std-dev, if available.
    pub fn shared_std(&self) -> Option<f64> {
        self.model.shared_std()
    }

    /// Value-only forward pass for one query (see
    /// [`DeepMviModel::predict_window`]).
    pub fn predict_window(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
    ) -> Vec<f64> {
        self.model.predict_window(scratch, obs, query)
    }

    /// Allocation-free forward pass into a caller buffer (see
    /// [`DeepMviModel::predict_window_into`]).
    pub fn predict_window_into(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
        out: &mut Vec<f64>,
    ) {
        self.model.predict_window_into(scratch, obs, query, out);
    }

    /// The tape-backed reference forward pass (see
    /// [`DeepMviModel::predict_window_tape`]).
    pub fn predict_window_tape(
        &self,
        scratch: &mut TapeScratch,
        obs: &ObservedDataset,
        query: &WindowQuery,
    ) -> Vec<f64> {
        self.model.predict_window_tape(scratch, obs, query)
    }

    /// Parallel batch evaluation (see [`DeepMviModel::predict_batch`]).
    pub fn predict_batch(
        &self,
        obs: &ObservedDataset,
        queries: &[WindowQuery],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.model.predict_batch(obs, queries, threads)
    }

    /// Batch evaluation reusing a caller-held scratch (see
    /// [`DeepMviModel::predict_batch_with`]).
    pub fn predict_batch_with(
        &self,
        scratch: &mut InferScratch,
        obs: &ObservedDataset,
        queries: &[WindowQuery],
        threads: usize,
    ) -> Vec<Vec<f64>> {
        self.model.predict_batch_with(scratch, obs, queries, threads)
    }

    /// Full batch imputation with the frozen weights (identical to
    /// [`DeepMviModel::impute`] on the wrapped model).
    pub fn impute(&self, obs: &ObservedDataset) -> Tensor {
        self.model.impute(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn trained() -> (ObservedDataset, DeepMviModel) {
        let ds = generate_with_shape(DatasetName::Gas, &[4], 160, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 10, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        (obs, model)
    }

    #[test]
    fn missing_queries_cover_exactly_the_missing_entries() {
        let (obs, model) = trained();
        let queries = model.missing_queries(&obs);
        let w = model.window();
        let mut seen = std::collections::HashSet::new();
        for q in &queries {
            for &t in &q.positions {
                assert_eq!(t / w, q.window_j, "position outside its window");
                assert!(!obs.available.series(q.s)[t], "query covers an observed entry");
                assert!(seen.insert((q.s, t)), "duplicate position in queries");
            }
        }
        let missing_total: usize = obs.available.data().iter().filter(|&&a| !a).count();
        assert_eq!(seen.len(), missing_total, "queries miss some missing entries");
    }

    #[test]
    fn predict_batch_matches_sequential_and_is_thread_invariant() {
        let (obs, model) = trained();
        let queries = model.missing_queries(&obs);
        let seq = model.predict_batch(&obs, &queries, 1);
        let par = model.predict_batch(&obs, &queries, 4);
        assert_eq!(seq, par, "thread count changed inference results");
        // Scratch reuse does not leak state between queries, and the
        // forward-pass counter accounts for exactly one pass per query.
        let mut scratch = InferScratch::new();
        assert_eq!(scratch.forward_passes(), 0);
        for (q, expect) in queries.iter().zip(&seq) {
            assert_eq!(&model.predict_window(&mut scratch, &obs, q), expect);
        }
        assert_eq!(scratch.forward_passes(), queries.len() as u64);
    }

    #[test]
    fn frozen_snapshot_roundtrip_reproduces_imputation() {
        let (obs, model) = trained();
        let cfg = model.config().clone();
        let expected = model.impute(&obs);
        let snap = model.export_params();
        let std = model.shared_std();
        let frozen = FrozenModel::from_snapshot(&cfg, &obs, &snap, std).unwrap();
        assert_eq!(frozen.impute(&obs), expected);
        assert_eq!(frozen.shared_std(), std);
        assert_eq!(frozen.grid().window_len(), cfg.resolve_window(10.0));
    }

    #[test]
    fn accumulating_overlapping_ranges_never_duplicates_positions_within_a_query() {
        use mvi_data::dataset::{Dataset, DimSpec};
        use mvi_tensor::{Mask, Tensor};
        // One series, w = 10, missing runs [5, 25) and [35, 38): window 2
        // (t 20..30) holds missing entries visible from both call ranges.
        let ds = Dataset::new(
            "overlap",
            vec![DimSpec::indexed("series", "s", 1)],
            Tensor::from_fn(&[1, 60], |idx| (idx[1] as f64 / 6.0).sin()),
        );
        let mut missing = Mask::falses(&[1, 60]);
        missing.set_range(0, 5, 25, true);
        missing.set_range(0, 35, 38, true);
        let obs = ds.with_missing(missing).observed();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        assert_eq!(model.window(), 10);

        // Two overlapping calls for the same series into one accumulator, as
        // the serving engine issues them for one micro-batch: the second call
        // must start fresh queries, not extend the first call's last one.
        let mut out = Vec::new();
        model.missing_queries_in(&obs, 0, 0, 30, &mut out);
        assert_eq!(out.last().map(|q| q.window_j), Some(2), "first call must end on window 2");
        model.missing_queries_in(&obs, 0, 20, 60, &mut out);
        for q in &out {
            let mut positions = q.positions.clone();
            positions.dedup();
            assert_eq!(positions, q.positions, "window {} accumulated duplicates", q.window_j);
            assert!(positions.windows(2).all(|w| w[0] < w[1]), "positions not ascending");
        }
        // Window 2's missing positions appear once per call — cross-call
        // dedup is the caller's job — but never merged into one query.
        let win2: Vec<_> = out.iter().filter(|q| q.window_j == 2).collect();
        assert_eq!(win2.len(), 2);
        assert_eq!(win2[0].positions, win2[1].positions);
    }

    #[test]
    fn inference_rolls_past_the_trained_length() {
        let (obs, model) = trained();
        let trained_t = obs.t_len();
        let baseline = model.impute(&obs);

        // Grow by three windows: observe the first two, leave the last missing.
        let w = model.window();
        let mut grown = obs.clone();
        grown.extend_time(trained_t + 3 * w);
        for s in 0..grown.n_series() {
            let vals: Vec<f64> =
                (0..2 * w).map(|i| ((trained_t + i) as f64 / 9.0 + s as f64).sin()).collect();
            grown.record_range(s, trained_t, &vals);
        }

        // Queries cover exactly the missing entries of the live length.
        let queries = model.missing_queries(&grown);
        let covered: usize = queries.iter().map(|q| q.positions.len()).sum();
        let missing: usize = grown.available.data().iter().filter(|&&a| !a).count();
        assert_eq!(covered, missing, "grown dataset not fully enumerated");
        assert!(
            queries.iter().any(|q| q.positions.iter().any(|&t| t >= trained_t)),
            "no queries in the grown region"
        );

        let out = model.impute(&grown);
        assert_eq!(out.shape(), grown.values.shape());
        assert!(out.all_finite(), "rolled inference produced non-finite values");
        // Positions whose forward inputs cannot reach the grown region — the
        // fine-grained mean reaches w steps forward, and here the trained
        // length is a whole number of windows so no attention row crosses the
        // old end — are bitwise unchanged.
        assert_eq!(trained_t % w, 0, "fixture assumption: trained length is window-aligned");
        for s in 0..obs.n_series() {
            for t in 0..trained_t.saturating_sub(w + 1) {
                assert_eq!(
                    out.series(s)[t].to_bits(),
                    baseline.series(s)[t].to_bits(),
                    "series {s} t={t}: growth changed an unaffected in-range imputation"
                );
            }
        }
        // Thread-count invariance holds for grown windows too.
        let grown_queries = model.missing_queries(&grown);
        assert_eq!(
            model.predict_batch(&grown, &grown_queries, 1),
            model.predict_batch(&grown, &grown_queries, 4),
            "thread count changed rolled-inference results"
        );
    }

    #[test]
    fn tail_queries_restrict_to_the_range() {
        let (obs, model) = trained();
        let mut tail = Vec::new();
        let t = obs.t_len();
        model.missing_queries_in(&obs, 1, t / 2, t, &mut tail);
        for q in &tail {
            assert_eq!(q.s, 1);
            assert!(q.positions.iter().all(|&p| p >= t / 2 && p < t));
        }
    }
}
