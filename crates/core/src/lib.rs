//! **DeepMVI** — deep missing-value imputation for multidimensional time series
//! (Bansal, Deshpande, Sarawagi; PVLDB 14(1), 2021). This crate is the paper's
//! primary contribution, built on the workspace's from-scratch autodiff engine.
//!
//! The model expresses each missing value's distribution conditioned on (Eq 5):
//!
//! * **within-series signals** — a *temporal transformer* over non-overlapping
//!   window features whose attention keys/queries are the *neighbouring* (left and
//!   right) window features plus a positional encoding (Eq 7–14), so a missing
//!   block can attend to other places in the series whose *context* looks alike;
//! * **a fine-grained local signal** — the masked mean of the immediate window
//!   (Eq 15), which matters for point misses;
//! * **cross-series signals** — *kernel regression* over sibling series along each
//!   categorical dimension, with RBF kernels on learned member embeddings
//!   (Eq 16–21), which is what makes the method natively multidimensional.
//!
//! Training is self-supervised (§3): synthetic missing blocks, whose shapes are
//! sampled from the dataset's own missing-block distribution, are placed around
//! observed indices; the network learns to reconstruct the hidden values, with
//! early stopping on a held-out set of such instances.
//!
//! The public entry point is [`DeepMvi`] (an [`mvi_data::Imputer`]); ablation
//! switches for every module live on [`config::DeepMviConfig`] and drive the §5.5
//! experiments.

#![warn(missing_docs)]

pub mod config;
pub mod infer;
pub mod model;
pub mod sampling;
pub mod train;
pub mod tune;

pub use config::{DeepMviConfig, KernelMode};
pub use infer::{FrozenModel, InferScratch, ScratchPool, TapeScratch, WindowQuery};
pub use model::DeepMviModel;
pub use train::TrainReport;
pub use tune::{grid_search, TuneReport};

use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_tensor::Tensor;

/// The DeepMVI imputer: trains on the observed dataset's own values (§3) and then
/// fills every missing entry.
#[derive(Clone, Debug, Default)]
pub struct DeepMvi {
    /// Model and training configuration (ablations included).
    pub config: DeepMviConfig,
}

impl DeepMvi {
    /// Imputer with the paper's default hyper-parameters (§4.3).
    pub fn new(config: DeepMviConfig) -> Self {
        Self { config }
    }
}

impl Imputer for DeepMvi {
    fn name(&self) -> String {
        let mut name = "DeepMVI".to_string();
        if self.config.kernel_mode == KernelMode::Flattened {
            name.push_str("1D");
        }
        let mut off = Vec::new();
        if !self.config.use_temporal_transformer {
            off.push("TT");
        }
        if !self.config.use_context_window {
            off.push("CtxWin");
        }
        if !self.config.use_fine_grained {
            off.push("FG");
        }
        if self.config.kernel_mode == KernelMode::Off {
            off.push("KR");
        }
        if !off.is_empty() {
            name.push_str(&format!("(-{})", off.join(",")));
        }
        name
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let original_shape = obs.values.shape().to_vec();
        // The flattened ablation folds all dimensions into one before training.
        let flattened;
        let view = if self.config.kernel_mode == KernelMode::Flattened && obs.dims.len() > 1 {
            flattened = obs.flattened();
            &flattened
        } else {
            obs
        };
        let mut model = DeepMviModel::new(&self.config, view);
        model.fit(view);
        model.impute(view).reshape(&original_shape)
    }
}
