//! The DeepMVI network (§4): parameters and the per-window forward pass.

use crate::config::{DeepMviConfig, KernelMode};
use mvi_autograd::{fill_positional_encoding, Embedding, Evaluator, Linear, ParamStore};
use mvi_data::blocks::BlockSampler;
use mvi_data::dataset::ObservedDataset;
use mvi_tensor::Mask;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-head attention parameters: queries/keys read the concatenated left+right
/// window features (width `2p`), values read the window's own feature (width `p`).
struct HeadParams {
    wq: Linear,
    wk: Linear,
    wv: Linear,
}

/// Temporal-transformer parameters (Eq 7–14).
struct TtParams {
    /// Non-overlapping window convolution `W_f: [w, p]` (Eq 7).
    wf: Linear,
    heads: Vec<HeadParams>,
    /// Decoder feed-forward `W_d1, W_d2` (Eq 13).
    d1: Linear,
    d2: Linear,
    /// Per-position decoder `W_d: [p, w·p]` (Eq 14).
    dec: Linear,
}

/// Kernel-regression parameters: one member-embedding table per dimension (§4.2).
struct KrParams {
    tables: Vec<Embedding>,
    gamma: f64,
}

/// A synthetic missing block applied during training (§3): a time range hidden on
/// the target series plus, per dimension, the sibling members hidden over the same
/// range (so the kernel regression trains under the real missing pattern).
#[derive(Clone, Debug, Default)]
pub(crate) struct SynthMask {
    pub range: (usize, usize),
    pub masked_members: Vec<Vec<usize>>,
}

impl SynthMask {
    fn covers(&self, t: usize) -> bool {
        t >= self.range.0 && t < self.range.1
    }
}

/// Reusable buffers for one forward pass, generic over the backend's variable
/// handle (`VarId` on the tape, `EvalVar` on the value-only evaluator). The
/// inference hot path keeps one of these per scratch so a steady-state window
/// pass allocates nothing; training creates them freely (a fresh one is just
/// a handful of empty vectors).
///
/// `preds` receives one `[1]`-shaped prediction handle per requested position
/// — it is the output channel of [`DeepMviModel::forward_positions`].
pub(crate) struct ForwardScratch<V> {
    /// Attention availability mask, rebuilt per window pass (Eq 9).
    mask: Mask,
    /// Per-context-window key availability (any missing value voids the key).
    kmask_cols: Vec<bool>,
    /// Per-head attention outputs awaiting concatenation (Eq 12).
    head_outs: Vec<V>,
    /// Per-position feature parts awaiting concatenation (Eq 6).
    parts: Vec<V>,
    /// Kernel-regression `[U, V, W]` features per dimension (Eq 21).
    kr_parts: Vec<V>,
    /// Candidate sibling members / their values at the target step.
    members: Vec<usize>,
    values: Vec<f64>,
    /// Scratch for the §4.2 "top L" sibling pre-selection.
    order: Vec<usize>,
    sel_members: Vec<usize>,
    sel_values: Vec<f64>,
    /// Multi-index buffers for the target series and its siblings.
    k_index: Vec<usize>,
    kk: Vec<usize>,
    /// Positional-encoding cache, indexed by horizon start (`j_start_rel`).
    /// The encoding is a pure function of that index (ctx length and width
    /// are fixed per model), and its transcendentals dominate a small window
    /// pass — a warm scratch turns them into one memcpy. Values are the same
    /// bits whether cached or recomputed, so both backends use it.
    pe_cache: Vec<Option<mvi_tensor::Tensor>>,
    /// One `[1]`-shaped prediction per requested position (the output).
    pub(crate) preds: Vec<V>,
}

impl<V> Default for ForwardScratch<V> {
    fn default() -> Self {
        Self {
            mask: Mask::falses(&[0]),
            kmask_cols: Vec::new(),
            head_outs: Vec::new(),
            parts: Vec::new(),
            kr_parts: Vec::new(),
            members: Vec::new(),
            values: Vec::new(),
            order: Vec::new(),
            sel_members: Vec::new(),
            sel_values: Vec::new(),
            k_index: Vec::new(),
            kk: Vec::new(),
            pe_cache: Vec::new(),
            preds: Vec::new(),
        }
    }
}

/// One forward-pass work item: predict `positions` of window `window_j` in series
/// `s`, optionally under a synthetic training mask. Borrows its inputs so the
/// inference hot path can issue tasks without per-task allocation.
pub(crate) struct WindowTask<'a> {
    pub obs: &'a ObservedDataset,
    pub s: usize,
    pub window_j: usize,
    pub positions: &'a [usize],
    pub synth: Option<&'a SynthMask>,
}

impl WindowTask<'_> {
    /// Effective availability of the target series at `t`: observed and not hidden
    /// by the synthetic mask.
    fn avail(&self, t: usize) -> bool {
        self.obs.available.series(self.s)[t] && !self.synth.is_some_and(|m| m.covers(t))
    }

    /// Effective availability of a sibling (along `dim`, member `member`, series id
    /// `sib`) at `t`.
    fn sibling_avail(&self, dim: usize, member: usize, sib: usize, t: usize) -> bool {
        if !self.obs.available.series(sib)[t] {
            return false;
        }
        match self.synth {
            Some(m) => !(m.covers(t) && m.masked_members[dim].contains(&member)),
            None => true,
        }
    }
}

/// The DeepMVI model: parameter store plus the forward pass. Construct with
/// [`DeepMviModel::new`], train with [`DeepMviModel::fit`] and fill missing values
/// with [`DeepMviModel::impute`] (`fit`/`impute` live in [`crate::train`]).
pub struct DeepMviModel {
    pub(crate) cfg: DeepMviConfig,
    /// Resolved window size `w`.
    pub(crate) w: usize,
    pub(crate) t_len: usize,
    pub(crate) n_windows: usize,
    pub(crate) series_shape: Vec<usize>,
    pub(crate) store: ParamStore,
    tt: Option<TtParams>,
    kr: Option<KrParams>,
    out: Linear,
    pub(crate) sampler: BlockSampler,
    /// Shared imputation std-dev estimated from validation residuals (§4: the mean
    /// parameterizes a Gaussian with shared variance). Set by `fit`.
    pub(crate) shared_std: Option<f64>,
}

impl DeepMviModel {
    /// Builds parameters sized for `obs`, resolving the window size from the mean
    /// observed missing-block length (§4.3).
    pub fn new(cfg: &DeepMviConfig, obs: &ObservedDataset) -> Self {
        let sampler = BlockSampler::from_observed(obs);
        let w = cfg.resolve_window(sampler.mean_t_len());
        let t_len = obs.t_len();
        let n_windows = t_len.div_ceil(w);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let p = cfg.p;

        let tt = cfg.use_temporal_transformer.then(|| TtParams {
            wf: Linear::new(&mut store, &mut rng, "tt.wf", w, p),
            heads: (0..cfg.n_heads)
                .map(|h| HeadParams {
                    wq: Linear::new(&mut store, &mut rng, &format!("tt.h{h}.q"), 2 * p, 2 * p),
                    wk: Linear::new(&mut store, &mut rng, &format!("tt.h{h}.k"), 2 * p, 2 * p),
                    wv: Linear::new(&mut store, &mut rng, &format!("tt.h{h}.v"), p, p),
                })
                .collect(),
            d1: Linear::new(&mut store, &mut rng, "tt.d1", cfg.n_heads * p, 2 * p),
            d2: Linear::new(&mut store, &mut rng, "tt.d2", 2 * p, p),
            dec: Linear::new(&mut store, &mut rng, "tt.dec", p, w * p),
        });

        let kr = (cfg.kernel_mode != KernelMode::Off).then(|| {
            // The flattened ablation doubles the embedding width so the single
            // table has the same total capacity as the per-dimension tables (§5.5.4).
            let width = if cfg.kernel_mode == KernelMode::Flattened {
                2 * cfg.embed_dim
            } else {
                cfg.embed_dim
            };
            KrParams {
                tables: obs
                    .dims
                    .iter()
                    .enumerate()
                    .map(|(i, d)| {
                        Embedding::new(&mut store, &mut rng, &format!("kr.dim{i}"), d.len(), width)
                    })
                    .collect(),
                gamma: cfg.kr_gamma,
            }
        });

        let feat_dim = cfg.use_temporal_transformer as usize * p
            + cfg.use_fine_grained as usize
            + if cfg.kernel_mode == KernelMode::Off { 0 } else { 3 * obs.dims.len() };
        let out = Linear::new(&mut store, &mut rng, "out", feat_dim.max(1), 1);
        // Warm-start the output head on the two directly-interpretable estimators —
        // the fine-grained local mean and each dimension's kernel-weighted sibling
        // mean U — so early training refines a sensible imputation instead of
        // spending its budget discovering the linear readout.
        {
            let wout = store.value_mut(out.w);
            let mut offset = cfg.use_temporal_transformer as usize * p;
            if cfg.use_fine_grained {
                wout.data_mut()[offset] = 0.5;
                offset += 1;
            }
            if cfg.kernel_mode != KernelMode::Off {
                for dim in 0..obs.dims.len() {
                    wout.data_mut()[offset + 3 * dim] = 0.4; // the U component
                }
            }
        }

        Self {
            cfg: cfg.clone(),
            w,
            t_len,
            n_windows,
            series_shape: obs.series_shape(),
            store,
            tt,
            kr,
            out,
            sampler,
            shared_std: None,
        }
    }

    /// Exports the trained weights for persistence (serde-serializable). Rebuild a
    /// model with the *same configuration and dataset shape* and restore with
    /// [`DeepMviModel::import_params`].
    pub fn export_params(&self) -> mvi_autograd::params::StoreSnapshot {
        self.store.export()
    }

    /// Restores weights exported by [`DeepMviModel::export_params`].
    ///
    /// # Errors
    /// Propagates any name/shape mismatch from the parameter store.
    pub fn import_params(
        &mut self,
        snap: &mvi_autograd::params::StoreSnapshot,
    ) -> Result<(), String> {
        self.store.import(snap)
    }

    /// The shared Gaussian std-dev of the imputation distribution (§4), estimated
    /// from validation residuals during [`DeepMviModel::fit`]. `None` before
    /// training.
    pub fn shared_std(&self) -> Option<f64> {
        self.shared_std
    }

    /// Number of trainable scalars (useful for reports).
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Scans every parameter tensor for NaN/±inf and returns the name of the
    /// first offending one, or `None` when all weights are finite. A model
    /// with a non-finite weight answers every query through that weight with
    /// NaN, so serving layers check this **up front** — at
    /// [`crate::FrozenModel::from_snapshot`] and at engine construction —
    /// rather than discovering it one poisoned prediction at a time.
    pub fn first_non_finite_param(&self) -> Option<String> {
        self.store
            .ids()
            .into_iter()
            .find(|&id| !self.store.value(id).all_finite())
            .map(|id| self.store.name(id).to_string())
    }

    /// Kernel similarity `K(a, b) = exp(-γ‖E[a] − E[b]‖²)` between two members of
    /// dimension `dim` under the current embeddings (Eq 17) — the model's learned
    /// notion of relatedness, useful for inspection and tests.
    pub fn kernel_similarity(&self, dim: usize, a: usize, b: usize) -> f64 {
        let Some(kr) = &self.kr else { return 0.0 };
        let table = self.store.value(kr.tables[dim].table);
        let d2: f64 = table.row(a).iter().zip(table.row(b)).map(|(&x, &y)| (x - y) * (x - y)).sum();
        (-kr.gamma * d2).exp()
    }

    /// Resolved window size `w`.
    pub fn window(&self) -> usize {
        self.w
    }

    /// Series length the model was trained for. Inference accepts datasets at
    /// this length or longer (windows past it are evaluated over a rolling
    /// trained-length horizon); training always runs at exactly this length.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// The model's configuration.
    pub fn config(&self) -> &DeepMviConfig {
        &self.cfg
    }

    /// Forward pass for one window task against an explicit parameter store view
    /// (shared read-only across worker threads). Writes one `[1]`-shaped
    /// prediction handle per requested position into `fs.preds`.
    ///
    /// Generic over the execution backend ([`Evaluator`]): training runs it on
    /// the differentiation tape ([`mvi_autograd::Graph`]) and gets a backward
    /// pass; inference runs it on the value-only evaluator
    /// ([`mvi_autograd::Eval`]) — same op order, same kernels, bitwise
    /// identical values, but no tape nodes, no boxed closures, parameters
    /// bound by borrow, and zero heap allocation once the scratch is warm.
    ///
    /// The task's dataset may be *longer* than the series length the model was
    /// trained on (`task.obs.t_len() >= self.t_len`): a window beyond the
    /// trained range is evaluated by **rolling the trained temporal context**
    /// — the attention context slides to the most recent trained-length
    /// horizon of windows ending at the target, and the positional encoding
    /// uses horizon-relative window positions, so the model only ever sees
    /// positions it was trained on. For windows inside the trained range the
    /// horizon starts at 0 and every computation is bitwise identical to the
    /// fixed-length path. The fine-grained local mean (±`w` around the target)
    /// and the kernel regression (sibling values at the target step) are
    /// position-relative already and extend unchanged.
    pub(crate) fn forward_positions<E: Evaluator>(
        &self,
        store: &ParamStore,
        g: &mut E,
        fs: &mut ForwardScratch<E::Var>,
        task: &WindowTask<'_>,
    ) {
        fs.preds.clear();
        let p = self.cfg.p;
        let w = self.w;
        let j0 = task.window_j;
        let live_t = task.obs.t_len();

        // Context range: `ctx_windows` windows centred on the target, clipped
        // to the trained-length horizon ending at the target window (which is
        // `[0, n_windows)` itself whenever the target is inside it).
        let ctx = self.cfg.ctx_windows.min(self.n_windows).max(1);
        let half = ctx / 2;
        let h0 = (j0 + 1).saturating_sub(self.n_windows); // horizon start window
        let j_rel = j0 - h0; // target's window position inside the horizon
        let j_start_rel = j_rel.saturating_sub(half).min(self.n_windows - ctx);
        let j_start = h0 + j_start_rel;
        let jc = j0 - j_start; // target window's row inside the context

        // Per-position hidden vectors from the temporal transformer.
        let tt_rows: Option<E::Var> = self.tt.as_ref().map(|tt| {
            let series_vals = task.obs.values.series(task.s);
            fs.kmask_cols.clear();
            fs.kmask_cols.resize(ctx, true);
            let kmask_cols = &mut fs.kmask_cols;
            let xv = g.input(&[ctx, w], |xw| {
                for j in 0..ctx {
                    let wj = j_start + j;
                    for o in 0..w {
                        let t = wj * w + o;
                        if t < live_t && task.avail(t) {
                            xw.set_m(j, o, series_vals[t]);
                        } else {
                            kmask_cols[j] = false; // Eq 9: any missing value voids the key
                        }
                    }
                }
            });
            // Every mask row is the same key-availability vector: fill row 0,
            // broadcast it.
            fs.mask.reset_falses(&[ctx, ctx]);
            let mdata = fs.mask.data_mut();
            for (col, &ok) in fs.kmask_cols.iter().enumerate() {
                mdata[col] = ok;
            }
            for row in 1..ctx {
                mdata.copy_within(0..ctx, row * ctx);
            }

            let y = tt.wf.forward(g, store, xv); // Eq 7: [ctx, p]
            let yprev = g.shift_rows(y, 1);
            let ynext = g.shift_rows(y, -1);
            let neighbours = g.concat_cols(&[yprev, ynext]); // [ctx, 2p]
                                                             // Horizon-relative window positions: identical to absolute
                                                             // indices inside the trained range (h0 == 0), and rolled back
                                                             // into the trained positional range for grown windows. Cached by
                                                             // horizon start in the scratch (same bits either way).
            if fs.pe_cache.len() <= j_start_rel {
                fs.pe_cache.resize_with(j_start_rel + 1, || None);
            }
            let pe_slot = &mut fs.pe_cache[j_start_rel];
            let pe = g.input(&[ctx, 2 * p], |t| match pe_slot {
                // The shape guard keys the cache to this model's [ctx, 2p]:
                // a scratch handed to a differently-shaped model refills
                // instead of serving a misshaped (or misread) encoding.
                Some(cached) if cached.shape() == t.shape() => {
                    t.data_mut().copy_from_slice(cached.data());
                }
                slot => {
                    fill_positional_encoding(t, j_start_rel);
                    *slot = Some(t.clone());
                }
            });
            // Fig 7's "No Context Window" ablation: keys/queries see only the
            // positional encoding, exactly dropping the contextual information.
            let qk_in = if self.cfg.use_context_window { g.add(neighbours, pe) } else { pe };

            let scale = 1.0 / ((2 * p) as f64).sqrt();
            fs.head_outs.clear();
            for head in &tt.heads {
                let q = head.wq.forward(g, store, qk_in); // Eq 8
                let k = head.wk.forward(g, store, qk_in); // Eq 9 (masking via softmax)
                let v = head.wv.forward(g, store, y); // Eq 10
                let kt = g.transpose(k);
                let scores_raw = g.matmul(q, kt);
                let scores = g.scale(scores_raw, scale);
                let attn = g.masked_softmax_rows(scores, &fs.mask); // Eq 11
                let head_out = g.matmul(attn, v);
                fs.head_outs.push(head_out);
            }
            let h = g.concat_cols(&fs.head_outs); // Eq 12: [ctx, n_heads·p]
            let h = g.relu(h);
            let h = tt.d1.forward(g, store, h);
            let h = g.relu(h);
            let h = tt.d2.forward(g, store, h);
            let hff = g.relu(h); // Eq 13
            let dec = tt.dec.forward(g, store, hff);
            let dec = g.relu(dec); // Eq 14: [ctx, w·p]
            let target_row = g.row(dec, jc); // [w·p]
            g.reshape(target_row, &[w, p])
        });

        // Assemble per-position predictions.
        for &t in task.positions {
            debug_assert_eq!(t / w, j0, "position {t} not inside window {j0}");
            fs.parts.clear();
            if let Some(rows) = tt_rows {
                let part = g.row(rows, t - j0 * w);
                fs.parts.push(part);
            }
            // Fine-grained local signal (Eq 15 / §4.1.1): masked mean over the
            // immediate ±w neighbourhood of t. (A window-local mean would be
            // identically zero whenever the missing block covers the whole window,
            // which is the common case for block misses.)
            if self.cfg.use_fine_grained {
                let series_vals = task.obs.values.series(task.s);
                let lo = t.saturating_sub(w);
                let hi = (t + w + 1).min(live_t);
                let mut sum = 0.0;
                let mut count = 0usize;
                for tt in lo..hi {
                    if task.avail(tt) {
                        sum += series_vals[tt];
                        count += 1;
                    }
                }
                let mean = if count > 0 { sum / count as f64 } else { 0.0 };
                let part = g.scalar(mean);
                fs.parts.push(part);
            }
            if let Some(kr) = &self.kr {
                let part = self.kernel_regression(store, g, fs, kr, task, t);
                fs.parts.push(part);
            }
            let feat = if fs.parts.len() == 1 { fs.parts[0] } else { g.concat1d(&fs.parts) };
            let pred = self.out.forward_vec(g, store, feat); // Eq 6
            fs.preds.push(pred);
        }
    }

    /// The kernel-regression features `[U, V, W]` per dimension at time `t`
    /// (Eq 17–21), concatenated into a `[3n]` vector. Uses (and may clobber)
    /// every `fs` buffer except `parts`/`head_outs`/`preds`, which belong to
    /// the enclosing [`DeepMviModel::forward_positions`] position loop.
    fn kernel_regression<E: Evaluator>(
        &self,
        store: &ParamStore,
        g: &mut E,
        fs: &mut ForwardScratch<E::Var>,
        kr: &KrParams,
        task: &WindowTask<'_>,
        t: usize,
    ) -> E::Var {
        mvi_tensor::shape::unflatten_into(&self.series_shape, task.s, &mut fs.k_index);
        fs.kr_parts.clear();
        for (dim, &extent) in self.series_shape.iter().enumerate() {
            // Available siblings along this dimension with their values at t.
            fs.members.clear();
            fs.values.clear();
            fs.kk.clear();
            fs.kk.extend_from_slice(&fs.k_index);
            for m in 0..extent {
                if m == fs.k_index[dim] {
                    continue;
                }
                fs.kk[dim] = m;
                let sib = mvi_tensor::shape::flat_index(&self.series_shape, &fs.kk);
                if task.sibling_avail(dim, m, sib, t) {
                    fs.members.push(m);
                    fs.values.push(task.obs.values.series(sib)[t]);
                }
            }

            if fs.members.is_empty() {
                // No cross-series signal at t (e.g. Blackout): zero features.
                let z = g.scalar(0.0);
                fs.kr_parts.extend([z, z, z]);
                continue;
            }

            // §4.2 "top L" pre-selection for large dimensions, by current kernel
            // similarity (computed outside the graph; selection is not differentiated).
            if fs.members.len() > self.cfg.max_siblings {
                let table = store.value(kr.tables[dim].table);
                let own = table.row(fs.k_index[dim]);
                fs.order.clear();
                fs.order.extend(0..fs.members.len());
                let members = &fs.members;
                let dist = |m: usize| -> f64 {
                    table.row(m).iter().zip(own).map(|(&a, &b)| (a - b) * (a - b)).sum()
                };
                fs.order.sort_unstable_by(|&a, &b| {
                    dist(members[a]).partial_cmp(&dist(members[b])).unwrap()
                });
                fs.order.truncate(self.cfg.max_siblings);
                fs.sel_members.clear();
                fs.sel_values.clear();
                for &i in &fs.order {
                    fs.sel_members.push(fs.members[i]);
                    fs.sel_values.push(fs.values[i]);
                }
                std::mem::swap(&mut fs.members, &mut fs.sel_members);
                std::mem::swap(&mut fs.values, &mut fs.sel_values);
            }

            // Kernel weights K(k_i, k'_i) = exp(-γ‖E[k_i] − E[k'_i]‖²) (Eq 17).
            let own_idx = [fs.k_index[dim]];
            let own_e = kr.tables[dim].lookup(g, store, &own_idx);
            let own_vec = {
                let width = g.shape(own_e)[1];
                g.reshape(own_e, &[width])
            };
            let sib_e = kr.tables[dim].lookup(g, store, &fs.members);
            let sim = g.rbf_similarities(sib_e, own_vec, kr.gamma);

            // U: kernel-weighted mean of sibling values (Eq 18).
            let vals = g.constant_slice(&fs.values);
            let num = g.dot(sim, vals);
            let wsum = g.sum(sim); // Eq 19
            let den = g.add_scalar(wsum, 1e-9);
            let u = g.div(num, den);
            // V: variance of the sibling values (Eq 20) — data-only, no gradient.
            let var = {
                let n = fs.values.len() as f64;
                let mean = fs.values.iter().sum::<f64>() / n;
                fs.values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n
            };
            let v = g.scalar(var);
            fs.kr_parts.extend([u, v, wsum]); // Eq 21
        }
        g.concat1d(&fs.kr_parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_autograd::Graph;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::scenarios::Scenario;
    use mvi_tensor::Tensor;

    fn small_obs() -> ObservedDataset {
        let ds = Dataset::new(
            "toy",
            vec![DimSpec::indexed("series", "s", 4)],
            Tensor::from_fn(&[4, 120], |idx| ((idx[1] as f64) / 9.0 + idx[0] as f64).sin()),
        );
        Scenario::mcar(1.0).apply(&ds, 3).observed()
    }

    #[test]
    fn model_builds_with_paper_defaults() {
        let obs = small_obs();
        let model = DeepMviModel::new(&DeepMviConfig::default(), &obs);
        assert_eq!(model.window(), 10);
        assert!(model.num_parameters() > 1000);
    }

    #[test]
    fn forward_produces_one_prediction_per_position() {
        let obs = small_obs();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let task =
            WindowTask { obs: &obs, s: 1, window_j: 4, positions: &[40, 43, 47], synth: None };
        let mut g = Graph::new();
        let mut fs = ForwardScratch::default();
        model.forward_positions(&model.store, &mut g, &mut fs, &task);
        assert_eq!(fs.preds.len(), 3);
        for &p in &fs.preds {
            assert_eq!(g.shape(p), &[1]);
            assert!(g.value(p).all_finite());
        }
    }

    #[test]
    fn synthetic_mask_changes_the_forward_inputs() {
        let obs = small_obs();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let base = WindowTask { obs: &obs, s: 0, window_j: 3, positions: &[32], synth: None };
        let synth = SynthMask { range: (30, 40), masked_members: vec![vec![]] };
        let masked =
            WindowTask { obs: &obs, s: 0, window_j: 3, positions: &[32], synth: Some(&synth) };
        let mut g1 = Graph::new();
        let mut fs1 = ForwardScratch::default();
        model.forward_positions(&model.store, &mut g1, &mut fs1, &base);
        let p1 = fs1.preds[0];
        let mut g2 = Graph::new();
        let mut fs2 = ForwardScratch::default();
        model.forward_positions(&model.store, &mut g2, &mut fs2, &masked);
        let p2 = fs2.preds[0];
        // Hiding the target window must change the prediction inputs (the fine
        // grained mean and attention mask change).
        assert_ne!(g1.value(p1).at(0), g2.value(p2).at(0));
    }

    #[test]
    fn ablations_shrink_the_feature_vector() {
        let obs = small_obs();
        let full = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let no_tt = DeepMviModel::new(
            &DeepMviConfig { use_temporal_transformer: false, ..DeepMviConfig::tiny() },
            &obs,
        );
        let no_kr = DeepMviModel::new(
            &DeepMviConfig { kernel_mode: KernelMode::Off, ..DeepMviConfig::tiny() },
            &obs,
        );
        assert!(no_tt.num_parameters() < full.num_parameters());
        assert!(no_kr.num_parameters() < full.num_parameters());
    }

    #[test]
    fn gradients_flow_to_embeddings_and_transformer() {
        let obs = small_obs();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let synth = SynthMask { range: (50, 60), masked_members: vec![vec![1]] };
        let task =
            WindowTask { obs: &obs, s: 2, window_j: 5, positions: &[52], synth: Some(&synth) };
        let mut g = Graph::new();
        let mut fs = ForwardScratch::default();
        model.forward_positions(&model.store, &mut g, &mut fs, &task);
        let pred = fs.preds[0];
        let loss = g.mse(pred, &Tensor::scalar(0.7));
        let grads = g.backward(loss);
        let pgrads = g.param_grads(&grads);
        // Every module must receive some gradient signal.
        let touched: std::collections::HashSet<String> =
            pgrads.iter().map(|(pid, _)| model.store.name(*pid).to_string()).collect();
        assert!(touched.iter().any(|n| n.starts_with("tt.")), "no transformer grads");
        assert!(touched.iter().any(|n| n.starts_with("kr.")), "no embedding grads");
        assert!(touched.iter().any(|n| n.starts_with("out")), "no output grads");
        let total: f64 = pgrads.iter().map(|(_, g)| g.max_abs()).sum();
        assert!(total > 0.0, "all gradients vanished");
    }
}
