//! Training-instance sampling (§3): synthetic missing blocks placed around
//! observed indices, with shapes drawn from the dataset's own missing-block
//! distribution so that training inputs are identically distributed to the real
//! imputation queries.

use crate::model::{DeepMviModel, SynthMask};
use mvi_data::dataset::ObservedDataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// An owned training instance: one target window with a synthetic missing block
/// and the ground-truth values at the loss positions.
#[derive(Clone, Debug)]
pub(crate) struct TrainInstance {
    pub s: usize,
    pub window_j: usize,
    pub positions: Vec<usize>,
    pub targets: Vec<f64>,
    pub synth: SynthMask,
}

/// Samples one training instance, or `None` if no usable observed index was found
/// (pathologically sparse data).
pub(crate) fn sample_instance(
    model: &DeepMviModel,
    obs: &ObservedDataset,
    rng: &mut StdRng,
) -> Option<TrainInstance> {
    let n = obs.n_series();
    let t_len = obs.t_len();
    for _attempt in 0..64 {
        let s = rng.gen_range(0..n);
        let t = rng.gen_range(0..t_len);
        if !obs.available.series(s)[t] {
            continue;
        }
        // Shape from the empirical block distribution (§3), clamped so the series
        // keeps context on at least one side.
        let shape = model.sampler.sample(rng);
        let len = shape.t_len.clamp(1, (t_len / 2).max(1));
        let lo = (t + 1).saturating_sub(len);
        let hi = t.min(t_len - len);
        if lo > hi {
            continue;
        }
        let start = rng.gen_range(lo..=hi);
        let range = (start, start + len);

        // Sibling members hidden over the same range, per dimension (the cuboid's
        // extent along each K_i).
        let series_shape = obs.series_shape();
        let k = obs.series_multi_index(s);
        let masked_members: Vec<Vec<usize>> = series_shape
            .iter()
            .enumerate()
            .map(|(dim, &extent)| {
                let want = shape.dim_counts.get(dim).copied().unwrap_or(1).clamp(1, extent);
                let mut others: Vec<usize> = (0..extent).filter(|&m| m != k[dim]).collect();
                others.shuffle(rng);
                others.truncate(want - 1);
                others
            })
            .collect();

        // Loss positions: originally-observed entries of the target window hidden
        // by the synthetic block.
        let w = model.w;
        let window_j = t / w;
        let positions: Vec<usize> = (window_j * w..(window_j + 1) * w)
            .filter(|&tp| {
                tp < t_len && tp >= range.0 && tp < range.1 && obs.available.series(s)[tp]
            })
            .collect();
        if positions.is_empty() {
            continue;
        }
        let targets: Vec<f64> = positions.iter().map(|&tp| obs.values.series(s)[tp]).collect();
        return Some(TrainInstance {
            s,
            window_j,
            positions,
            targets,
            synth: SynthMask { range, masked_members },
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepMviConfig;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;
    use mvi_tensor::Tensor;
    use rand::SeedableRng;

    fn obs_1d() -> ObservedDataset {
        let ds = generate_with_shape(DatasetName::AirQ, &[5], 300, 2);
        Scenario::mcar(1.0).apply(&ds, 4).observed()
    }

    #[test]
    fn instances_cover_the_sampled_index_and_are_observed() {
        let obs = obs_1d();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let inst = sample_instance(&model, &obs, &mut rng).expect("sampling failed");
            assert!(!inst.positions.is_empty());
            for (&tp, &target) in inst.positions.iter().zip(&inst.targets) {
                assert!(obs.available.series(inst.s)[tp], "loss position not observed");
                assert!(tp >= inst.synth.range.0 && tp < inst.synth.range.1);
                assert_eq!(tp / model.window(), inst.window_j);
                assert_eq!(target, obs.values.series(inst.s)[tp]);
            }
            assert!(inst.synth.range.1 <= obs.t_len());
        }
    }

    #[test]
    fn block_lengths_follow_the_observed_distribution() {
        // MCAR blocks have constant length 10 => sampled synthetic ranges must be
        // multiples of 10 (grid-merged runs allowed), clamped to T/2.
        let obs = obs_1d();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let inst = sample_instance(&model, &obs, &mut rng).unwrap();
            let len = inst.synth.range.1 - inst.synth.range.0;
            assert!(len.is_multiple_of(10) || len == obs.t_len() / 2, "len {len}");
        }
    }

    #[test]
    fn multidim_blackout_masks_all_siblings() {
        let dims = vec![DimSpec::indexed("a", "a", 3), DimSpec::indexed("b", "b", 4)];
        let values = Tensor::from_fn(&[3, 4, 200], |idx| (idx[2] as f64 / 7.0).sin());
        let ds = Dataset::new("t", dims, values);
        let inst = Scenario::Blackout { block_len: 20 }.apply(&ds, 5);
        let obs = inst.observed();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let mut rng = StdRng::seed_from_u64(3);
        let ti = sample_instance(&model, &obs, &mut rng).unwrap();
        // Blackout blocks span every member along both dimensions, so the sampled
        // synthetic block must mask all siblings: 2 others along dim0, 3 along dim1.
        assert_eq!(ti.synth.masked_members[0].len(), 2);
        assert_eq!(ti.synth.masked_members[1].len(), 3);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let obs = obs_1d();
        let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = sample_instance(&model, &obs, &mut r1).unwrap();
        let b = sample_instance(&model, &obs, &mut r2).unwrap();
        assert_eq!(a.s, b.s);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.synth.range, b.synth.range);
    }
}
