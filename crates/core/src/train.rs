//! Training (likelihood maximization over synthetic missing blocks, §3) and
//! inference (imputation of the real missing blocks).

use crate::model::{DeepMviModel, ForwardScratch, WindowTask};
use crate::sampling::{sample_instance, TrainInstance};
use mvi_autograd::{AdamConfig, Graph, ParamStore, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Summary of one training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Optimizer steps actually executed (≤ `max_steps` with early stopping).
    pub steps: usize,
    /// Best validation MSE reached.
    pub best_val: f64,
    /// Validation MSE trace, one entry per evaluation.
    pub val_trace: Vec<f64>,
}

impl DeepMviModel {
    /// Trains the parameters on `obs` itself, with early stopping on held-out
    /// synthetic-missing instances. Returns the training summary.
    pub fn fit(&mut self, obs: &ObservedDataset) -> TrainReport {
        let cfg = self.cfg.clone();
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xABCD_EF01);
        let mut val_rng = StdRng::seed_from_u64(cfg.seed ^ 0x1234_5678);
        let val_set: Vec<TrainInstance> = (0..cfg.val_instances)
            .filter_map(|_| sample_instance(self, obs, &mut val_rng))
            .collect();

        let adam = AdamConfig { lr: cfg.lr, ..AdamConfig::default() };
        let mut best_val = f64::INFINITY;
        let mut best_snapshot = self.store.snapshot();
        let mut stale_evals = 0usize;
        let mut val_trace = Vec::new();
        let mut steps_run = 0usize;

        for step in 0..cfg.max_steps {
            let batch: Vec<TrainInstance> =
                (0..cfg.batch_size).filter_map(|_| sample_instance(self, obs, &mut rng)).collect();
            if batch.is_empty() {
                break;
            }
            let n_batch = batch.len();
            let grads = self.batch_gradients(obs, &batch);
            self.store.accumulate(grads);
            self.store.adam_step(&adam, 1.0 / n_batch as f64);
            steps_run = step + 1;

            if !val_set.is_empty() && (step + 1) % cfg.eval_every == 0 {
                let val = self.evaluate(obs, &val_set);
                val_trace.push(val);
                if val + 1e-6 < best_val {
                    best_val = val;
                    best_snapshot = self.store.snapshot();
                    stale_evals = 0;
                } else {
                    stale_evals += 1;
                    if stale_evals >= cfg.patience {
                        break; // early stopping (§3)
                    }
                }
            }
        }
        if best_val.is_finite() {
            self.store.restore(&best_snapshot);
            // The conditional model is a Gaussian with shared variance (§4); the
            // validation MSE is its natural estimate.
            self.shared_std = Some(best_val.sqrt());
        }
        TrainReport { steps: steps_run, best_val, val_trace }
    }

    /// Summed parameter gradients over a batch, data-parallel across
    /// `cfg.threads` workers via the shared `mvi_parallel` pool (each worker owns
    /// its tape; the shared store is read only).
    fn batch_gradients(
        &self,
        obs: &ObservedDataset,
        batch: &[TrainInstance],
    ) -> Vec<(mvi_autograd::ParamId, Tensor)> {
        let threads = self.cfg.threads.max(1).min(batch.len());
        if threads <= 1 {
            return batch.iter().flat_map(|inst| self.instance_gradients(obs, inst)).collect();
        }
        mvi_parallel::map_chunks(batch, threads, |part| {
            part.iter().flat_map(|inst| self.instance_gradients(obs, inst)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn instance_gradients(
        &self,
        obs: &ObservedDataset,
        inst: &TrainInstance,
    ) -> Vec<(mvi_autograd::ParamId, Tensor)> {
        let mut g = Graph::new();
        let mut fs = ForwardScratch::default();
        let loss = self.instance_loss(&self.store, &mut g, &mut fs, obs, inst);
        let grads = g.backward(loss);
        g.param_grads(&grads)
    }

    /// Squared-error loss of one instance (mean over its masked positions).
    fn instance_loss(
        &self,
        store: &ParamStore,
        g: &mut Graph,
        fs: &mut ForwardScratch<VarId>,
        obs: &ObservedDataset,
        inst: &TrainInstance,
    ) -> VarId {
        let task = WindowTask {
            obs,
            s: inst.s,
            window_j: inst.window_j,
            positions: &inst.positions,
            synth: Some(&inst.synth),
        };
        self.forward_positions(store, g, fs, &task);
        let mut errs = Vec::with_capacity(fs.preds.len());
        for (&pred, &target) in fs.preds.iter().zip(&inst.targets) {
            let t = g.scalar(target);
            let d = g.sub(pred, t);
            errs.push(g.square(d));
        }
        let stacked = g.concat1d(&errs);
        g.mean(stacked)
    }

    /// Mean validation MSE over a fixed instance set (no gradients).
    fn evaluate(&self, obs: &ObservedDataset, val_set: &[TrainInstance]) -> f64 {
        let mut total = 0.0;
        let mut fs = ForwardScratch::default();
        for inst in val_set {
            let mut g = Graph::new();
            let loss = self.instance_loss(&self.store, &mut g, &mut fs, obs, inst);
            total += g.value(loss).at(0);
        }
        total / val_set.len() as f64
    }

    /// Imputes every missing entry of `obs` with the trained model.
    ///
    /// Routes through the shared inference path ([`crate::infer`]): missing
    /// runs become [`crate::infer::WindowQuery`]s evaluated value-only and
    /// data-parallel over `cfg.threads` workers. Results are deterministic for
    /// a fixed model and input regardless of thread count.
    pub fn impute(&self, obs: &ObservedDataset) -> Tensor {
        self.impute_batch(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeepMviConfig, KernelMode};
    use crate::DeepMvi;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::{Imputer, MeanImputer};
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;
    use mvi_tensor::Tensor;

    #[test]
    fn training_reduces_validation_loss() {
        let ds = generate_with_shape(DatasetName::Chlorine, &[6], 300, 1);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let obs = inst.observed();
        let mut model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        let report = model.fit(&obs);
        assert!(report.steps > 0);
        assert!(!report.val_trace.is_empty());
        assert!(report.best_val.is_finite());
        // The best validation loss must improve on the first evaluation.
        assert!(
            report.best_val <= report.val_trace[0] + 1e-9,
            "best {} vs first {}",
            report.best_val,
            report.val_trace[0]
        );
    }

    #[test]
    fn deepmvi_beats_mean_imputation_on_seasonal_data() {
        let ds = generate_with_shape(DatasetName::Chlorine, &[6], 300, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 7);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 120, ..DeepMviConfig::tiny() };
        let dm = mae(&ds.values, &DeepMvi::new(cfg).impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(dm < mean, "deepmvi {dm} vs mean {mean}");
    }

    #[test]
    fn imputation_fills_every_missing_entry_and_keeps_observed() {
        let ds = generate_with_shape(DatasetName::Gas, &[5], 200, 3);
        let inst = Scenario::MissDisj.apply(&ds, 4);
        let obs = inst.observed();
        let out =
            DeepMvi::new(DeepMviConfig { max_steps: 20, ..DeepMviConfig::tiny() }).impute(&obs);
        assert!(out.all_finite());
        assert_eq!(out.shape(), ds.values.shape());
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i), "observed entry modified");
            }
        }
    }

    #[test]
    fn multidim_dataset_roundtrips_through_flattened_mode() {
        let dims = vec![DimSpec::indexed("store", "st", 3), DimSpec::indexed("item", "it", 4)];
        let values = Tensor::from_fn(&[3, 4, 150], |idx| {
            ((idx[2] as f64) / 11.0 + idx[0] as f64 * 0.3 + idx[1] as f64).sin()
        });
        let ds = Dataset::new("md", dims, values);
        let inst = Scenario::mcar(1.0).apply(&ds, 6);
        let obs = inst.observed();
        for mode in [KernelMode::MultiDim, KernelMode::Flattened, KernelMode::Off] {
            let cfg = DeepMviConfig { kernel_mode: mode, max_steps: 15, ..DeepMviConfig::tiny() };
            let out = DeepMvi::new(cfg).impute(&obs);
            assert_eq!(out.shape(), ds.values.shape(), "{mode:?} changed the shape");
            assert!(out.all_finite());
        }
    }

    #[test]
    fn blackout_imputation_is_finite_without_cross_series_signal() {
        let ds = generate_with_shape(DatasetName::Electricity, &[5], 300, 9);
        let inst = Scenario::Blackout { block_len: 40 }.apply(&ds, 2);
        let obs = inst.observed();
        let out =
            DeepMvi::new(DeepMviConfig { max_steps: 30, ..DeepMviConfig::tiny() }).impute(&obs);
        assert!(out.all_finite());
        let err = mae(&ds.values, &out, &inst.missing);
        assert!(err < 3.0, "MAE {err} wildly off on z-scored data");
    }
}

#[cfg(test)]
mod persistence_tests {
    use crate::config::DeepMviConfig;
    use crate::model::DeepMviModel;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    #[test]
    fn trained_model_roundtrips_through_export_import() {
        let ds = generate_with_shape(DatasetName::Gas, &[4], 150, 6);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 20, ..DeepMviConfig::tiny() };
        let mut trained = DeepMviModel::new(&cfg, &obs);
        trained.fit(&obs);
        let imputed = trained.impute(&obs);
        let snap = trained.export_params();

        // A freshly-built model with the same config restores the exact weights.
        let mut restored = DeepMviModel::new(&cfg, &obs);
        restored.import_params(&snap).unwrap();
        assert_eq!(restored.impute(&obs), imputed, "restored model diverged");

        // Mismatched configurations are rejected.
        let other_cfg = DeepMviConfig { p: cfg.p + 2, ..cfg };
        let mut wrong = DeepMviModel::new(&other_cfg, &obs);
        assert!(wrong.import_params(&snap).is_err());
    }

    #[test]
    fn shared_std_is_set_by_training() {
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 1);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let mut model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
        assert!(model.shared_std().is_none());
        let report = model.fit(&obs);
        let std = model.shared_std().expect("std after fit");
        assert!((std - report.best_val.sqrt()).abs() < 1e-12);
        assert!(std > 0.0 && std.is_finite());
    }
}
