//! Validation-driven hyper-parameter search (§4.3).
//!
//! The paper notes that standard hyper-parameter optimization applies to DeepMVI
//! but that the defaults are robust across datasets; "in specific vertical
//! applications, a more extensive tuning ... could be deployed for even larger
//! gains". This module provides that deployment hook: a deterministic grid search
//! scored by the same held-out synthetic-missing validation loss that early
//! stopping uses, so no ground truth is ever consulted.

use crate::config::DeepMviConfig;
use crate::model::DeepMviModel;
use mvi_data::dataset::ObservedDataset;

/// Outcome of evaluating one candidate configuration.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The configuration evaluated.
    pub config: DeepMviConfig,
    /// Best validation MSE its training reached.
    pub val_mse: f64,
    /// Optimizer steps it ran (after early stopping).
    pub steps: usize,
}

/// Result of a grid search: candidates sorted by validation loss, best first.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// All evaluated candidates, best first.
    pub candidates: Vec<Candidate>,
}

impl TuneReport {
    /// The winning configuration.
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }
}

/// Trains every candidate configuration on `obs` and ranks them by held-out
/// validation MSE. Candidates share the observed data but train independently
/// (each builds its own parameters from its own seed).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn grid_search(obs: &ObservedDataset, candidates: &[DeepMviConfig]) -> TuneReport {
    assert!(!candidates.is_empty(), "grid_search needs at least one candidate");
    let mut evaluated: Vec<Candidate> = candidates
        .iter()
        .map(|cfg| {
            let mut model = DeepMviModel::new(cfg, obs);
            let report = model.fit(obs);
            Candidate { config: cfg.clone(), val_mse: report.best_val, steps: report.steps }
        })
        .collect();
    evaluated.sort_by(|a, b| a.val_mse.partial_cmp(&b.val_mse).unwrap());
    TuneReport { candidates: evaluated }
}

/// A small default grid around a base configuration: window size and learning rate,
/// the two knobs §4.3 singles out.
pub fn default_grid(base: &DeepMviConfig) -> Vec<DeepMviConfig> {
    let mut grid = Vec::new();
    for window in [Some(10), Some(20)] {
        for lr in [base.lr, base.lr * 3.0] {
            grid.push(DeepMviConfig { window, lr, ..base.clone() });
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    #[test]
    fn grid_search_ranks_by_validation_loss() {
        let ds = generate_with_shape(DatasetName::Gas, &[5], 200, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 7);
        let obs = inst.observed();
        let base = DeepMviConfig { max_steps: 25, ..DeepMviConfig::tiny() };
        // An untrained-ish candidate (1 step) must rank below a trained one.
        let candidates = vec![DeepMviConfig { max_steps: 1, ..base.clone() }, base.clone()];
        let report = grid_search(&obs, &candidates);
        assert_eq!(report.candidates.len(), 2);
        assert!(report.candidates[0].val_mse <= report.candidates[1].val_mse);
        assert!(report.best().val_mse.is_finite());
    }

    #[test]
    fn default_grid_covers_window_and_lr() {
        let base = DeepMviConfig::tiny();
        let grid = default_grid(&base);
        assert_eq!(grid.len(), 4);
        let windows: std::collections::HashSet<_> = grid.iter().map(|c| c.window).collect();
        assert_eq!(windows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_is_rejected() {
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 1);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        grid_search(&inst.observed(), &[]);
    }
}
