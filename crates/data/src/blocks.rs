//! Empirical missing-block-shape sampling for DeepMVI's training procedure (§3).
//!
//! The paper trains on synthetic missing blocks whose *shape* is "sampled from
//! anywhere in `M`" — a cuboid characterized only by the number of missing values
//! along each dimension, not their position. [`BlockSampler`] extracts that shape
//! distribution from the actual missing mask so the synthetic training masks are
//! identically distributed to the real missing pattern, which is the property the
//! generalization argument of §3 rests on.

use crate::dataset::ObservedDataset;
use mvi_tensor::shape;
use rand::rngs::StdRng;
use rand::Rng;

/// A missing-block shape: a cuboid over `(dims..., time)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockShape {
    /// Extent along the time axis.
    pub t_len: usize,
    /// For each non-time dimension `i`, how many members of `K_i` share the missing
    /// range (always ≥ 1: the block's own member counts).
    pub dim_counts: Vec<usize>,
}

/// Samples block shapes from the empirical distribution of an observed dataset's
/// missing pattern.
#[derive(Clone, Debug)]
pub struct BlockSampler {
    shapes: Vec<BlockShape>,
    n_dims: usize,
}

impl BlockSampler {
    /// Builds the sampler by enumerating the maximal missing runs of every series
    /// and measuring, for each run, how many siblings along each dimension are also
    /// missing at the run's start time.
    ///
    /// Datasets with no missing values yield a default unit-block distribution (a
    /// single missing point), so training can still proceed.
    pub fn from_observed(obs: &ObservedDataset) -> Self {
        let n_dims = obs.dims.len();
        let series_shape = obs.series_shape();
        let missing = obs.available.complement();
        let mut shapes = Vec::new();
        for s in 0..obs.n_series() {
            let k = shape::unflatten(&series_shape, s);
            for (start, len) in missing.runs(s) {
                let mut dim_counts = Vec::with_capacity(n_dims);
                for (dim, &extent) in series_shape.iter().enumerate() {
                    let mut kk = k.clone();
                    let mut count = 1usize; // the block's own member
                    for m in 0..extent {
                        if m == k[dim] {
                            continue;
                        }
                        kk[dim] = m;
                        let sib = shape::flat_index(&series_shape, &kk);
                        if missing.series(sib)[start] {
                            count += 1;
                        }
                    }
                    kk[dim] = k[dim];
                    dim_counts.push(count);
                }
                shapes.push(BlockShape { t_len: len, dim_counts });
            }
        }
        if shapes.is_empty() {
            shapes.push(BlockShape { t_len: 1, dim_counts: vec![1; n_dims] });
        }
        Self { shapes, n_dims }
    }

    /// Draws one shape uniformly from the empirical distribution.
    pub fn sample(&self, rng: &mut StdRng) -> BlockShape {
        self.shapes[rng.gen_range(0..self.shapes.len())].clone()
    }

    /// Number of distinct observed blocks.
    pub fn n_blocks(&self) -> usize {
        self.shapes.len()
    }

    /// Mean missing-block length along time — the statistic the paper uses to pick
    /// the window size `w` (§4.3: `w = 20` when the average block exceeds 100).
    pub fn mean_t_len(&self) -> f64 {
        self.shapes.iter().map(|b| b.t_len as f64).sum::<f64>() / self.shapes.len() as f64
    }

    /// Number of non-time dimensions the shapes describe.
    pub fn n_dims(&self) -> usize {
        self.n_dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DimSpec};
    use crate::scenarios::Scenario;
    use mvi_tensor::{Mask, Tensor};
    use rand::SeedableRng;

    fn toy_1d(n: usize, t: usize) -> Dataset {
        Dataset::new(
            "toy",
            vec![DimSpec::indexed("series", "s", n)],
            Tensor::from_fn(&[n, t], |idx| (idx[0] + idx[1]) as f64),
        )
    }

    #[test]
    fn sampler_recovers_block_lengths() {
        let ds = toy_1d(5, 200);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let sampler = BlockSampler::from_observed(&inst.observed());
        assert!(sampler.n_blocks() > 0);
        // MCAR uses constant blocks of 10 (grid-adjacent blocks may merge).
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let b = sampler.sample(&mut rng);
            assert_eq!(b.t_len % 10, 0, "length {}", b.t_len);
            assert_eq!(b.dim_counts.len(), 1);
        }
    }

    #[test]
    fn blackout_blocks_span_all_series() {
        let ds = toy_1d(6, 300);
        let inst = Scenario::Blackout { block_len: 30 }.apply(&ds, 1);
        let sampler = BlockSampler::from_observed(&inst.observed());
        let mut rng = StdRng::seed_from_u64(2);
        let b = sampler.sample(&mut rng);
        assert_eq!(b.t_len, 30);
        assert_eq!(b.dim_counts, vec![6], "blackout must report all series missing");
    }

    #[test]
    fn multidim_counts_are_per_dimension() {
        // 2x3 series grid, T=10; hide t=0..5 for all items of store 0.
        let dims = vec![DimSpec::indexed("store", "st", 2), DimSpec::indexed("item", "it", 3)];
        let values = Tensor::zeros(&[2, 3, 10]);
        let mut missing = Mask::falses(&[2, 3, 10]);
        for item in 0..3 {
            for t in 0..5 {
                missing.set(&[0, item, t], true);
            }
        }
        let ds = Dataset::new("toy2", dims, values).with_missing(missing);
        let sampler = BlockSampler::from_observed(&ds.observed());
        let mut rng = StdRng::seed_from_u64(3);
        let b = sampler.sample(&mut rng);
        assert_eq!(b.t_len, 5);
        // Along the store dim only store 0 is missing; along item all 3 are.
        assert_eq!(b.dim_counts, vec![1, 3]);
    }

    #[test]
    fn complete_dataset_defaults_to_unit_block() {
        let ds = toy_1d(3, 50);
        let inst = ds.with_missing(Mask::falses(&[3, 50]));
        let sampler = BlockSampler::from_observed(&inst.observed());
        assert_eq!(sampler.n_blocks(), 1);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(sampler.sample(&mut rng), BlockShape { t_len: 1, dim_counts: vec![1] });
    }

    #[test]
    fn mean_t_len_drives_window_choice() {
        let ds = toy_1d(4, 2000);
        let inst = Scenario::Blackout { block_len: 150 }.apply(&ds, 9);
        let sampler = BlockSampler::from_observed(&inst.observed());
        assert!(sampler.mean_t_len() > 100.0);
    }
}
