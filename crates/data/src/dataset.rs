//! The multidimensional time-series dataset model of §2.1.

use mvi_tensor::{shape, Mask, Tensor};
use serde::{Deserialize, Serialize};

/// One non-time dimension `K_i`: a name plus its discrete member set.
///
/// The paper allows members to be categorical strings or real-valued vectors; the
/// kernel-regression module only ever consumes members through a learned embedding
/// indexed by member *position*, so string labels suffice here.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimSpec {
    /// Dimension name (e.g. `"store"`, `"item"`).
    pub name: String,
    /// Member labels; `members.len()` is the extent `|K_i|`.
    pub members: Vec<String>,
}

impl DimSpec {
    /// Builds a dimension with `n` auto-named members (`prefix0`, `prefix1`, ...).
    pub fn indexed(name: &str, prefix: &str, n: usize) -> Self {
        Self { name: name.to_string(), members: (0..n).map(|i| format!("{prefix}{i}")).collect() }
    }

    /// Extent of this dimension.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for degenerate dimensions with no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A complete (ground-truth) multidimensional time-series dataset.
///
/// Values have shape `(K_1, ..., K_n, T)`; time is the last axis so every series is
/// contiguous. A "series" is one combination `k = (k_1, ..., k_n)` of members.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name (matches Table 1, e.g. `"Climate"`).
    pub name: String,
    /// The `n` non-time dimensions.
    pub dims: Vec<DimSpec>,
    /// Ground-truth tensor, shape `(|K_1|, ..., |K_n|, T)`.
    pub values: Tensor,
}

impl Dataset {
    /// Creates a dataset, validating the tensor shape against the dimensions.
    pub fn new(name: impl Into<String>, dims: Vec<DimSpec>, values: Tensor) -> Self {
        let expected: Vec<usize> = dims.iter().map(DimSpec::len).collect();
        let (series_shape, _) = shape::split_time(values.shape());
        assert_eq!(series_shape, &expected[..], "tensor shape does not match dims");
        Self { name: name.into(), dims, values }
    }

    /// Number of series (`Π |K_i|`).
    pub fn n_series(&self) -> usize {
        self.values.n_series()
    }

    /// Series length `T`.
    pub fn t_len(&self) -> usize {
        self.values.t_len()
    }

    /// Shape of the non-time axes.
    pub fn series_shape(&self) -> Vec<usize> {
        self.dims.iter().map(DimSpec::len).collect()
    }

    /// Multi-index `k` of series `s` (row-major over the non-time axes).
    pub fn series_multi_index(&self, s: usize) -> Vec<usize> {
        shape::unflatten(&self.series_shape(), s)
    }

    /// Series id for the multi-index `k`.
    pub fn series_id(&self, k: &[usize]) -> usize {
        shape::flat_index(&self.series_shape(), k)
    }

    /// Sibling series of `s` along dimension `dim`: all series whose multi-index
    /// differs from `s` *only* at `dim` (Eq 16). Does not include `s` itself.
    pub fn siblings(&self, s: usize, dim: usize) -> Vec<usize> {
        let mut k = self.series_multi_index(s);
        let own = k[dim];
        let extent = self.dims[dim].len();
        let mut out = Vec::with_capacity(extent - 1);
        for m in 0..extent {
            if m == own {
                continue;
            }
            k[dim] = m;
            out.push(self.series_id(&k));
        }
        out
    }

    /// Hides the entries of `missing` to form an evaluation instance.
    pub fn with_missing(self, missing: Mask) -> Instance {
        assert_eq!(missing.shape(), self.values.shape(), "missing mask shape mismatch");
        Instance { truth: self, missing }
    }
}

/// What an imputation algorithm sees: values with missing entries zeroed, plus the
/// availability mask `A` (true = observed).
#[derive(Clone, Debug)]
pub struct ObservedDataset {
    /// Dataset name.
    pub name: String,
    /// The non-time dimensions (needed by multidimensional methods).
    pub dims: Vec<DimSpec>,
    /// Values with missing entries set to `0.0`.
    pub values: Tensor,
    /// Availability mask `A`: `true` where the value is observed.
    pub available: Mask,
}

impl ObservedDataset {
    /// Number of series.
    pub fn n_series(&self) -> usize {
        self.values.n_series()
    }

    /// Series length `T`.
    pub fn t_len(&self) -> usize {
        self.values.t_len()
    }

    /// Shape of the non-time axes.
    pub fn series_shape(&self) -> Vec<usize> {
        self.dims.iter().map(DimSpec::len).collect()
    }

    /// Multi-index of series `s`.
    pub fn series_multi_index(&self, s: usize) -> Vec<usize> {
        shape::unflatten(&self.series_shape(), s)
    }

    /// Sibling series of `s` along `dim` (Eq 16), excluding `s`.
    pub fn siblings(&self, s: usize, dim: usize) -> Vec<usize> {
        let shape = self.series_shape();
        let mut k = shape::unflatten(&shape, s);
        let own = k[dim];
        let mut out = Vec::with_capacity(shape[dim] - 1);
        for m in 0..shape[dim] {
            if m == own {
                continue;
            }
            k[dim] = m;
            out.push(shape::flat_index(&shape, &k));
        }
        out
    }

    /// Records newly observed values for series `s` starting at time `start`:
    /// writes `vals` into the value tensor and marks those entries available.
    ///
    /// This is the streaming mutation the online engine's `append` path uses —
    /// the dataset shape stays fixed (the model is sized for it at training
    /// time); arriving data fills in a previously missing suffix.
    ///
    /// # Panics
    /// Panics if the range `[start, start + vals.len())` leaves the series.
    pub fn record_range(&mut self, s: usize, start: usize, vals: &[f64]) {
        let t = self.t_len();
        let end = start + vals.len();
        assert!(end <= t, "record_range {start}..{end} out of series length {t}");
        self.values.series_mut(s)[start..end].copy_from_slice(vals);
        self.available.set_range(s, start, end, true);
    }

    /// Hides `[start, end)` of series `s`: zeroes the values and marks them
    /// missing. The inverse of [`ObservedDataset::record_range`], used to carve
    /// a "future" suffix out of a dataset when simulating a stream.
    pub fn hide_range(&mut self, s: usize, start: usize, end: usize) {
        let t = self.t_len();
        assert!(start <= end && end <= t, "hide_range {start}..{end} out of series length {t}");
        self.values.series_mut(s)[start..end].fill(0.0);
        self.available.set_range(s, start, end, false);
    }

    /// Grows the time axis to `new_t_len`: every series keeps its prefix and
    /// gains a fully *missing* suffix (values zeroed, availability false),
    /// ready to be filled by [`ObservedDataset::record_range`] as a stream
    /// arrives. The streaming counterpart of the fixed-shape constructors —
    /// the online engine uses this (with geometric capacity growth) to accept
    /// appends past the length the model was trained on.
    ///
    /// # Panics
    /// Panics if `new_t_len` is smaller than the current length.
    pub fn extend_time(&mut self, new_t_len: usize) {
        self.values.extend_time(new_t_len, 0.0);
        self.available.extend_time(new_t_len, false);
    }

    /// Drops the *oldest* time steps in place, keeping the last `t_len` steps
    /// of every series (values and availability together) — the eviction
    /// primitive of the serving engine's retention ring. Pair with
    /// [`ObservedDataset::extend_time`] to slide a bounded storage window
    /// along an unbounded stream: retain the newest span, then re-open the
    /// vacated capacity as an all-missing suffix.
    ///
    /// # Panics
    /// Panics if `t_len` exceeds the current length.
    pub fn retain_latest(&mut self, t_len: usize) {
        self.values.retain_latest(t_len);
        self.available.retain_latest(t_len);
    }

    /// A copy truncated to the first `t_len` time steps of every series — the
    /// live prefix of capacity-padded storage, or the trained-geometry view a
    /// model restore needs when the serving state has grown past it.
    ///
    /// # Panics
    /// Panics if `t_len` exceeds the current length.
    pub fn truncated(&self, t_len: usize) -> ObservedDataset {
        ObservedDataset {
            name: self.name.clone(),
            dims: self.dims.clone(),
            values: self.values.truncated_time(t_len),
            available: self.available.truncated_time(t_len),
        }
    }

    /// Flattens an `n`-dimensional observed dataset into a 1-dimensional one (all
    /// series under a single synthetic dimension). Used by methods without a
    /// multidimensional model and by the DeepMVI1D ablation of §5.5.4.
    pub fn flattened(&self) -> ObservedDataset {
        ObservedDataset {
            name: format!("{}-flat", self.name),
            dims: vec![DimSpec::indexed("series", "s", self.n_series())],
            values: self.values.clone().reshape(&[self.n_series(), self.t_len()]),
            available: {
                let m = self.available.clone();
                Mask::from_vec(vec![self.n_series(), self.t_len()], m.data().to_vec())
            },
        }
    }
}

/// A ground-truth dataset plus the mask of entries hidden from the algorithms.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Complete dataset (the evaluation oracle).
    pub truth: Dataset,
    /// Missing mask `M`: `true` where the value is hidden.
    pub missing: Mask,
}

impl Instance {
    /// The algorithm-facing view: values zeroed at missing entries, `A = ¬M`.
    pub fn observed(&self) -> ObservedDataset {
        let available = self.missing.complement();
        let mut values = self.truth.values.clone();
        for (v, &m) in values.data_mut().iter_mut().zip(self.missing.data()) {
            if m {
                *v = 0.0;
            }
        }
        ObservedDataset {
            name: self.truth.name.clone(),
            dims: self.truth.dims.clone(),
            values,
            available,
        }
    }

    /// Fraction of entries hidden.
    pub fn missing_fraction(&self) -> f64 {
        self.missing.fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let dims = vec![DimSpec::indexed("store", "st", 2), DimSpec::indexed("item", "it", 3)];
        let values =
            Tensor::from_fn(&[2, 3, 4], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64);
        Dataset::new("toy", dims, values)
    }

    #[test]
    fn series_indexing_roundtrip() {
        let ds = toy();
        assert_eq!(ds.n_series(), 6);
        for s in 0..6 {
            let k = ds.series_multi_index(s);
            assert_eq!(ds.series_id(&k), s);
        }
    }

    #[test]
    fn siblings_differ_in_exactly_one_dim() {
        let ds = toy();
        let s = ds.series_id(&[1, 2]);
        // Along the store dimension: only (0,2).
        assert_eq!(ds.siblings(s, 0), vec![ds.series_id(&[0, 2])]);
        // Along the item dimension: (1,0) and (1,1).
        assert_eq!(ds.siblings(s, 1), vec![ds.series_id(&[1, 0]), ds.series_id(&[1, 1])]);
    }

    #[test]
    fn observed_zeroes_missing_and_complements_mask() {
        let ds = toy();
        let mut missing = Mask::falses(&[2, 3, 4]);
        missing.set(&[0, 0, 1], true);
        let inst = ds.with_missing(missing);
        let obs = inst.observed();
        assert_eq!(obs.values.get(&[0, 0, 1]), 0.0);
        assert!(!obs.available.get(&[0, 0, 1]));
        assert!(obs.available.get(&[0, 0, 0]));
        assert_eq!(obs.values.get(&[1, 2, 3]), 123.0);
    }

    #[test]
    fn record_and_hide_roundtrip_the_observed_view() {
        let ds = toy();
        let mut missing = Mask::falses(&[2, 3, 4]);
        missing.set(&[0, 0, 2], true);
        missing.set(&[0, 0, 3], true);
        let mut obs = ds.with_missing(missing).observed();
        assert_eq!(obs.values.get(&[0, 0, 2]), 0.0);

        // Recording the suffix restores values and availability.
        obs.record_range(0, 2, &[2.0, 3.0]);
        assert_eq!(obs.values.get(&[0, 0, 2]), 2.0);
        assert_eq!(obs.values.get(&[0, 0, 3]), 3.0);
        assert!(obs.available.get(&[0, 0, 2]));

        // Hiding it again returns to the missing state.
        obs.hide_range(0, 2, 4);
        assert_eq!(obs.values.get(&[0, 0, 2]), 0.0);
        assert!(!obs.available.get(&[0, 0, 3]));
        // Other series untouched throughout.
        assert_eq!(obs.values.series(1), &[10.0, 11.0, 12.0, 13.0]);
        assert!(obs.available.series(1).iter().all(|&a| a));
    }

    #[test]
    fn extend_time_adds_a_missing_suffix_and_truncated_inverts() {
        let ds = toy();
        let mut missing = Mask::falses(&[2, 3, 4]);
        missing.set(&[0, 0, 1], true);
        let mut obs = ds.with_missing(missing).observed();
        let original = obs.clone();

        obs.extend_time(7);
        assert_eq!(obs.t_len(), 7);
        for s in 0..obs.n_series() {
            assert_eq!(&obs.values.series(s)[..4], original.values.series(s));
            assert!(obs.values.series(s)[4..].iter().all(|&v| v == 0.0));
            assert!(obs.available.series(s)[4..].iter().all(|&a| !a), "suffix must be missing");
        }
        // The grown region accepts late-arriving observations.
        obs.record_range(2, 4, &[7.0, 8.0]);
        assert_eq!(obs.values.series(2)[4..6], [7.0, 8.0]);
        assert!(obs.available.series(2)[4] && obs.available.series(2)[5]);

        let back = obs.truncated(4);
        assert_eq!(back.values, original.values);
        assert_eq!(back.available, original.available);
        assert_eq!(back.dims, original.dims);
    }

    #[test]
    fn retain_latest_slides_the_storage_window() {
        let ds = toy();
        let mut missing = Mask::falses(&[2, 3, 4]);
        missing.set(&[0, 0, 0], true); // oldest step: evicted below
        missing.set(&[0, 0, 3], true); // newest step: retained
        let mut obs = ds.with_missing(missing).observed();
        let original = obs.clone();

        obs.retain_latest(2);
        assert_eq!(obs.t_len(), 2);
        for s in 0..obs.n_series() {
            assert_eq!(obs.values.series(s), &original.values.series(s)[2..]);
            assert_eq!(obs.available.series(s), &original.available.series(s)[2..]);
        }
        assert!(!obs.available.series(0)[1], "the retained missing entry survives");

        // Re-opening capacity gives an all-missing suffix ready for appends.
        obs.extend_time(4);
        assert!(obs.available.series(0)[2..].iter().all(|&a| !a));
        obs.record_range(0, 2, &[7.0, 8.0]);
        assert_eq!(obs.values.series(0)[2..], [7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "out of series length")]
    fn record_range_rejects_overflow() {
        let ds = toy();
        let mut obs = ds.with_missing(Mask::falses(&[2, 3, 4])).observed();
        obs.record_range(0, 3, &[1.0, 2.0]);
    }

    #[test]
    fn flattened_preserves_layout() {
        let ds = toy();
        let inst = ds.with_missing(Mask::falses(&[2, 3, 4]));
        let obs = inst.observed();
        let flat = obs.flattened();
        assert_eq!(flat.dims.len(), 1);
        assert_eq!(flat.n_series(), 6);
        // Series 4 of the flat view equals series (1,1) of the original.
        assert_eq!(flat.values.series(4), obs.values.series(4));
    }

    #[test]
    #[should_panic(expected = "does not match dims")]
    fn dataset_shape_validated() {
        let dims = vec![DimSpec::indexed("series", "s", 3)];
        let _ = Dataset::new("bad", dims, Tensor::zeros(&[2, 5]));
    }
}
