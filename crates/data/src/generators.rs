//! Calibrated synthetic generators for the paper's ten evaluation datasets.
//!
//! The real corpora are not redistributable, so each generator reproduces the
//! published *shape* (Table 1) and the qualitative structure the evaluation
//! discriminates on: repetition within a series (seasonality strength and period
//! mix) and relatedness across series (shared latent factors vs. independent
//! components), plus dataset-specific traits the paper calls out (jumps in AirQ,
//! cluster structure in Chlorine, sporadic spikes in Climate, anomalies in Meteo,
//! synchronized irregular trends in BAFU, promotions in JanataHack, intermittent
//! demand in M5). Every series is z-score normalized, as in the imputation
//! benchmark of \[12\], so MAE values are on the same scale as the paper's.

use crate::dataset::{Dataset, DimSpec};
use mvi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::f64::consts::TAU;

/// The ten datasets of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetName {
    /// Air-quality sensors: 10×1k, moderate repetition, high relatedness, jumps.
    AirQ,
    /// Chlorine concentration: 50×1k, high repetition, high relatedness, clusters.
    Chlorine,
    /// Gas concentration: 100×1k, high repetition, moderate relatedness.
    Gas,
    /// Monthly climate: 10×5k, high repetition, low relatedness, sporadic spikes.
    Climate,
    /// Household energy: 20×5k, high repetition, low relatedness, contextual bursts.
    Electricity,
    /// Climate-station temperature: 50×5k, high repetition, high relatedness.
    Temperature,
    /// Swiss weather: 10×10k, low repetition, moderate relatedness, anomalies.
    Meteo,
    /// River discharge: 10×50k, low repetition, moderate relatedness, synchronized
    /// irregular trends.
    Bafu,
    /// Retail demand: 76 stores × 28 SKUs × 134 weeks, low repetition, high
    /// relatedness (multidimensional).
    JanataHack,
    /// Walmart M5: 10 stores × 106 items × 1941 days, low repetition, low
    /// relatedness, intermittent counts (multidimensional).
    M5,
}

impl DatasetName {
    /// All ten datasets, in Table-1 order.
    pub fn all() -> [DatasetName; 10] {
        use DatasetName::*;
        [AirQ, Chlorine, Gas, Climate, Electricity, Temperature, Meteo, Bafu, JanataHack, M5]
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            DatasetName::AirQ => "AirQ",
            DatasetName::Chlorine => "Chlorine",
            DatasetName::Gas => "Gas",
            DatasetName::Climate => "Climate",
            DatasetName::Electricity => "Electricity",
            DatasetName::Temperature => "Temp",
            DatasetName::Meteo => "Meteo",
            DatasetName::Bafu => "BAFU",
            DatasetName::JanataHack => "JanataHack",
            DatasetName::M5 => "M5",
        }
    }

    /// Paper shape: non-time extents and series length.
    pub fn paper_shape(&self) -> (Vec<usize>, usize) {
        match self {
            DatasetName::AirQ => (vec![10], 1000),
            DatasetName::Chlorine => (vec![50], 1000),
            DatasetName::Gas => (vec![100], 1000),
            DatasetName::Climate => (vec![10], 5000),
            DatasetName::Electricity => (vec![20], 5000),
            DatasetName::Temperature => (vec![50], 5000),
            DatasetName::Meteo => (vec![10], 10_000),
            DatasetName::Bafu => (vec![10], 50_000),
            DatasetName::JanataHack => (vec![76, 28], 134),
            DatasetName::M5 => (vec![10, 106], 1941),
        }
    }
}

/// Generates a dataset at its paper shape.
pub fn generate(name: DatasetName, seed: u64) -> Dataset {
    generate_scaled(name, 1.0, seed)
}

/// Generates a dataset with its extents scaled by `scale` (≤ 1 shrinks; series
/// counts keep a floor of 4, lengths a floor of 128). Used by fast benchmark runs;
/// `scale = 1.0` reproduces the paper shape exactly.
pub fn generate_scaled(name: DatasetName, scale: f64, seed: u64) -> Dataset {
    let (dims, t) = name.paper_shape();
    let scaled_dims: Vec<usize> =
        dims.iter().map(|&d| ((d as f64 * scale).round() as usize).clamp(4.min(d), d)).collect();
    let scaled_t = ((t as f64 * scale).round() as usize).clamp(128.min(t), t);
    generate_with_shape(name, &scaled_dims, scaled_t, seed)
}

/// Generates a dataset with explicit extents (used by the Fig-10b scaling study).
pub fn generate_with_shape(name: DatasetName, dims: &[usize], t: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(name));
    match name {
        DatasetName::AirQ => airq(dims[0], t, &mut rng),
        DatasetName::Chlorine => chlorine(dims[0], t, &mut rng),
        DatasetName::Gas => gas(dims[0], t, &mut rng),
        DatasetName::Climate => climate(dims[0], t, &mut rng),
        DatasetName::Electricity => electricity(dims[0], t, &mut rng),
        DatasetName::Temperature => temperature(dims[0], t, &mut rng),
        DatasetName::Meteo => meteo(dims[0], t, &mut rng),
        DatasetName::Bafu => bafu(dims[0], t, &mut rng),
        DatasetName::JanataHack => janatahack(dims[0], dims[1], t, &mut rng),
        DatasetName::M5 => m5(dims[0], dims[1], t, &mut rng),
    }
}

fn hash_name(name: DatasetName) -> u64 {
    (name as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

// ======================================================================
// Signal toolkit
// ======================================================================

/// Standard-normal sample (Box–Muller; `rand` ships no Gaussian).
fn randn(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos();
        }
    }
}

/// A smooth shared latent: an AR(1)-integrated path re-centred to zero mean.
fn smooth_factor(rng: &mut StdRng, t: usize, rho: f64, sigma: f64) -> Vec<f64> {
    let mut x = vec![0.0; t];
    let mut state = 0.0;
    for v in &mut x {
        state = rho * state + sigma * randn(rng);
        *v = state;
    }
    let mean = x.iter().sum::<f64>() / t.max(1) as f64;
    for v in &mut x {
        *v -= mean;
    }
    x
}

/// Sparse spikes: each step fires with probability `rate`, magnitude `±mag·N(0,1)`.
fn spikes(rng: &mut StdRng, t: usize, rate: f64, mag: f64) -> Vec<f64> {
    (0..t).map(|_| if rng.gen::<f64>() < rate { mag * randn(rng) } else { 0.0 }).collect()
}

/// A piecewise-constant jump process with roughly `n_jumps` level shifts.
fn jumps(rng: &mut StdRng, t: usize, n_jumps: usize, mag: f64) -> Vec<f64> {
    let mut level = 0.0;
    let p = n_jumps as f64 / t.max(1) as f64;
    (0..t)
        .map(|_| {
            if rng.gen::<f64>() < p {
                level += mag * randn(rng);
            }
            level
        })
        .collect()
}

/// Seasonal wave with a second harmonic for a non-sinusoidal repeating shape.
fn season(tt: usize, period: f64, phase: f64, amp: f64) -> f64 {
    let x = TAU * tt as f64 / period + phase;
    amp * (x.sin() + 0.35 * (2.0 * x + 0.7).sin())
}

/// Scales a paper-shape seasonal period so the number of cycles per series stays
/// constant when a generator runs at reduced length (`t` vs the paper's
/// `paper_t`). Without this, shrunken datasets would lose the "high repetition"
/// property Table 1 calibrates. Longer-than-paper series keep the paper period.
fn scaled_period(base: f64, t: usize, paper_t: usize) -> f64 {
    let ratio = (t as f64 / paper_t as f64).min(1.0);
    (base * ratio).max(20.0)
}

/// Z-score normalizes every series of the tensor in place (constant series → 0).
fn zscore(values: &mut Tensor) {
    let n = values.n_series();
    for s in 0..n {
        let series = values.series_mut(s);
        let len = series.len().max(1) as f64;
        let mean = series.iter().sum::<f64>() / len;
        let var = series.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / len;
        let std = var.sqrt();
        if std > 1e-12 {
            for v in series.iter_mut() {
                *v = (*v - mean) / std;
            }
        } else {
            for v in series.iter_mut() {
                *v = 0.0;
            }
        }
    }
}

fn finish_1d(name: &str, n: usize, t: usize, mut gen: impl FnMut(usize, usize) -> f64) -> Dataset {
    let mut values = Tensor::from_fn(&[n, t], |idx| gen(idx[0], idx[1]));
    zscore(&mut values);
    Dataset::new(name, vec![DimSpec::indexed("series", "s", n)], values)
}

// ======================================================================
// The ten datasets
// ======================================================================

/// AirQ: repeating daily pattern + two strong shared factors + per-series jumps.
fn airq(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let f1 = smooth_factor(rng, t, 0.97, 0.25);
    let f2 = smooth_factor(rng, t, 0.90, 0.35);
    let loadings: Vec<(f64, f64)> =
        (0..n).map(|_| (0.8 + 0.4 * rng.gen::<f64>(), 0.6 * randn(rng))).collect();
    let phases: Vec<f64> = (0..n).map(|_| 0.3 * randn(rng)).collect();
    let jumps_per_series: Vec<Vec<f64>> = (0..n).map(|_| jumps(rng, t, 3, 1.2)).collect();
    let noise: Vec<Vec<f64>> =
        (0..n).map(|_| (0..t).map(|_| 0.25 * randn(rng)).collect()).collect();
    finish_1d("AirQ", n, t, |s, tt| {
        let (l1, l2) = loadings[s];
        l1 * f1[tt]
            + l2 * f2[tt]
            + season(tt, scaled_period(48.0, t, 1000), phases[s], 0.55)
            + jumps_per_series[s][tt]
            + noise[s][tt]
    })
}

/// Chlorine: clusters of near-identical, strongly periodic series.
fn chlorine(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    // The real corpus has ~5 clusters over 50 junctions (~10 members each); keep
    // the members-per-cluster density when generating fewer series.
    let n_clusters = (n / 10).clamp(1, 5);
    let cluster_phase: Vec<f64> = (0..n_clusters).map(|_| TAU * rng.gen::<f64>()).collect();
    let cluster_period: Vec<f64> =
        (0..n_clusters).map(|c| scaled_period(80.0 + 15.0 * c as f64, t, 1000)).collect();
    let assignment: Vec<usize> = (0..n).map(|s| s % n_clusters).collect();
    let gains: Vec<f64> = (0..n).map(|_| 0.8 + 0.4 * rng.gen::<f64>()).collect();
    let noise: Vec<Vec<f64>> = (0..n).map(|_| (0..t).map(|_| 0.1 * randn(rng)).collect()).collect();
    finish_1d("Chlorine", n, t, |s, tt| {
        let c = assignment[s];
        gains[s] * season(tt, cluster_period[c], cluster_phase[c], 1.0) + noise[s][tt]
    })
}

/// Gas: strongly periodic per-series signals with one moderate shared factor.
fn gas(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let shared = smooth_factor(rng, t, 0.995, 0.08);
    let periods: Vec<f64> = (0..n)
        .map(|_| scaled_period(if rng.gen::<bool>() { 50.0 } else { 100.0 }, t, 1000))
        .collect();
    let phases: Vec<f64> = (0..n).map(|_| TAU * rng.gen::<f64>()).collect();
    let noise: Vec<Vec<f64>> = (0..n).map(|_| (0..t).map(|_| 0.3 * randn(rng)).collect()).collect();
    finish_1d("Gas", n, t, |s, tt| {
        season(tt, periods[s], phases[s], 1.0) + 0.5 * shared[tt] + noise[s][tt]
    })
}

/// Climate: strong seasonality, independent phases (low relatedness), rare spikes.
fn climate(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let phases: Vec<f64> = (0..n).map(|_| TAU * rng.gen::<f64>()).collect();
    let trends: Vec<Vec<f64>> = (0..n).map(|_| smooth_factor(rng, t, 0.999, 0.01)).collect();
    let spike_tracks: Vec<Vec<f64>> = (0..n).map(|_| spikes(rng, t, 0.002, 3.0)).collect();
    let noise: Vec<Vec<f64>> = (0..n).map(|_| (0..t).map(|_| 0.3 * randn(rng)).collect()).collect();
    finish_1d("Climate", n, t, |s, tt| {
        season(tt, 12.0, phases[s], 1.0) + trends[s][tt] + spike_tracks[s][tt] + noise[s][tt]
    })
}

/// Electricity: periodic daily load with strong non-periodic contextual bursts,
/// independent across households (low relatedness).
fn electricity(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let phases: Vec<f64> = (0..n).map(|_| TAU * rng.gen::<f64>()).collect();
    let bursts: Vec<Vec<f64>> = (0..n).map(|_| smooth_factor(rng, t, 0.95, 0.35)).collect();
    let noise: Vec<Vec<f64>> = (0..n).map(|_| (0..t).map(|_| 0.2 * randn(rng)).collect()).collect();
    finish_1d("Electricity", n, t, |s, tt| {
        season(tt, scaled_period(144.0, t, 5000), phases[s], 0.9)
            + 0.35 * season(tt, scaled_period(37.0, t, 5000), phases[s] * 1.7, 1.0)
            + bursts[s][tt]
            + noise[s][tt]
    })
}

/// Temperature: one shared annual cycle + shared slow weather factor — the most
/// strongly cross-correlated dataset.
fn temperature(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let weather = smooth_factor(rng, t, 0.98, 0.12);
    let offsets: Vec<f64> = (0..n).map(|_| 0.2 * randn(rng)).collect();
    let gains: Vec<f64> = (0..n).map(|_| 0.9 + 0.2 * rng.gen::<f64>()).collect();
    let noise: Vec<Vec<f64>> =
        (0..n).map(|_| (0..t).map(|_| 0.15 * randn(rng)).collect()).collect();
    finish_1d("Temperature", n, t, |s, tt| {
        gains[s] * season(tt, scaled_period(365.0, t, 5000), 0.0, 1.0)
            + weather[tt]
            + offsets[s]
            + noise[s][tt]
    })
}

/// Meteo: weak repetition, one moderate shared factor, sporadic anomalies.
fn meteo(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let shared = smooth_factor(rng, t, 0.99, 0.2);
    let own: Vec<Vec<f64>> = (0..n).map(|_| smooth_factor(rng, t, 0.97, 0.2)).collect();
    let anomalies: Vec<Vec<f64>> = (0..n).map(|_| spikes(rng, t, 0.001, 4.0)).collect();
    let phases: Vec<f64> = (0..n).map(|_| TAU * rng.gen::<f64>()).collect();
    let noise: Vec<Vec<f64>> = (0..n).map(|_| (0..t).map(|_| 0.3 * randn(rng)).collect()).collect();
    finish_1d("Meteo", n, t, |s, tt| {
        0.6 * shared[tt]
            + own[s][tt]
            + season(tt, scaled_period(144.0, t, 10_000), phases[s], 0.3)
            + anomalies[s][tt]
            + noise[s][tt]
    })
}

/// BAFU: synchronized irregular trends — one shared non-seasonal discharge path
/// scaled per river, plus slow per-river deviations.
fn bafu(n: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let discharge = smooth_factor(rng, t, 0.999, 0.05);
    let gains: Vec<f64> = (0..n).map(|_| 0.7 + 0.6 * rng.gen::<f64>()).collect();
    let own: Vec<Vec<f64>> = (0..n).map(|_| smooth_factor(rng, t, 0.995, 0.03)).collect();
    let noise: Vec<Vec<f64>> =
        (0..n).map(|_| (0..t).map(|_| 0.15 * randn(rng)).collect()).collect();
    finish_1d("BAFU", n, t, |s, tt| gains[s] * discharge[tt] + own[s][tt] + noise[s][tt])
}

/// JanataHack: stores × SKUs. A SKU's demand curve (base + promotions + mild
/// season) is shared across stores up to a store gain, so siblings along the store
/// dimension are highly related while different SKUs are nearly independent.
fn janatahack(stores: usize, skus: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let sku_curves: Vec<Vec<f64>> = (0..skus)
        .map(|_| {
            let base = smooth_factor(rng, t, 0.95, 0.15);
            let promo = spikes(rng, t, 0.05, 2.0);
            let phase = TAU * rng.gen::<f64>();
            (0..t).map(|tt| base[tt] + promo[tt].abs() + season(tt, 26.0, phase, 0.25)).collect()
        })
        .collect();
    let store_gain: Vec<f64> = (0..stores).map(|_| 0.6 + 0.8 * rng.gen::<f64>()).collect();
    // Store-level idiosyncrasies (local demand shifts) on top of the shared SKU
    // curve: still high relatedness, but with a within-series component that
    // history-aware methods can exploit.
    let idio: Vec<Vec<f64>> =
        (0..stores * skus).map(|_| smooth_factor(rng, t, 0.9, 0.15)).collect();
    let noise_scale = 0.2;
    let mut values = Tensor::from_fn(&[stores, skus, t], |idx| {
        store_gain[idx[0]] * sku_curves[idx[1]][idx[2]] + idio[idx[0] * skus + idx[1]][idx[2]]
    });
    for v in values.data_mut().iter_mut() {
        *v += noise_scale * randn(rng);
    }
    zscore(&mut values);
    Dataset::new(
        "JanataHack",
        vec![DimSpec::indexed("store", "store", stores), DimSpec::indexed("sku", "sku", skus)],
        values,
    )
}

/// M5: stores × items. Intermittent, weakly-weekly demand where the store-specific
/// component dominates the shared item curve (low relatedness).
fn m5(stores: usize, items: usize, t: usize, rng: &mut StdRng) -> Dataset {
    let item_curves: Vec<Vec<f64>> = (0..items).map(|_| smooth_factor(rng, t, 0.97, 0.1)).collect();
    let item_phase: Vec<f64> = (0..items).map(|_| TAU * rng.gen::<f64>()).collect();
    let store_item_paths: Vec<Vec<f64>> =
        (0..stores * items).map(|_| smooth_factor(rng, t, 0.9, 0.3)).collect();
    let mut values = Tensor::from_fn(&[stores, items, t], |idx| {
        let (s, i, tt) = (idx[0], idx[1], idx[2]);
        let level = 0.3 * item_curves[i][tt]
            + season(tt, 7.0, item_phase[i], 0.3)
            + store_item_paths[s * items + i][tt];
        // Intermittency: demand is censored at a floor before normalization.
        (level + 0.6).max(0.0)
    });
    for v in values.data_mut().iter_mut() {
        *v += 0.1 * randn(rng).abs();
    }
    zscore(&mut values);
    Dataset::new(
        "M5",
        vec![DimSpec::indexed("store", "store", stores), DimSpec::indexed("item", "item", items)],
        values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let mut num = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (&x, &y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            va += (x - ma).powi(2);
            vb += (y - mb).powi(2);
        }
        num / (va.sqrt() * vb.sqrt()).max(1e-12)
    }

    /// Mean |lag-k autocorrelation| at the seasonal lag — the "repetition" proxy.
    fn seasonal_autocorr(ds: &Dataset, lag: usize) -> f64 {
        let mut total = 0.0;
        for s in 0..ds.n_series() {
            let x = ds.values.series(s);
            total += corr(&x[..x.len() - lag], &x[lag..]).abs();
        }
        total / ds.n_series() as f64
    }

    /// Mean |pairwise correlation| over series pairs — the "relatedness" proxy.
    fn cross_corr(ds: &Dataset) -> f64 {
        let n = ds.n_series().min(20);
        let mut total = 0.0;
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                total += corr(ds.values.series(i), ds.values.series(j)).abs();
                count += 1;
            }
        }
        total / count.max(1) as f64
    }

    #[test]
    fn all_generators_produce_finite_normalized_series() {
        for name in DatasetName::all() {
            let ds = generate_scaled(name, 0.12, 7);
            assert!(ds.values.all_finite(), "{name:?} produced non-finite values");
            for s in 0..ds.n_series() {
                let x = ds.values.series(s);
                let mean = x.iter().sum::<f64>() / x.len() as f64;
                let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / x.len() as f64;
                assert!(mean.abs() < 1e-9, "{name:?} series {s} mean {mean}");
                assert!((var - 1.0).abs() < 1e-6 || var < 1e-9, "{name:?} series {s} var {var}");
            }
        }
    }

    #[test]
    fn paper_shapes_match_table1() {
        let (d, t) = DatasetName::JanataHack.paper_shape();
        assert_eq!((d, t), (vec![76, 28], 134));
        let (d, t) = DatasetName::M5.paper_shape();
        assert_eq!((d, t), (vec![10, 106], 1941));
        let (d, t) = DatasetName::Bafu.paper_shape();
        assert_eq!((d, t), (vec![10], 50_000));
    }

    #[test]
    fn chlorine_is_more_repetitive_than_bafu() {
        let chl = generate_with_shape(DatasetName::Chlorine, &[10], 1000, 3);
        let baf = generate_with_shape(DatasetName::Bafu, &[10], 1000, 3);
        // Chlorine repeats at its cluster periods; BAFU has no seasonal lag at all.
        let chl_rep = seasonal_autocorr(&chl, 80);
        let baf_rep = seasonal_autocorr(&baf, 80);
        assert!(chl_rep > baf_rep, "chlorine {chl_rep} vs bafu {baf_rep}");
    }

    #[test]
    fn temperature_is_more_related_than_climate() {
        let temp = generate_with_shape(DatasetName::Temperature, &[10], 2000, 5);
        let clim = generate_with_shape(DatasetName::Climate, &[10], 2000, 5);
        let t_rel = cross_corr(&temp);
        let c_rel = cross_corr(&clim);
        assert!(t_rel > c_rel + 0.1, "temperature {t_rel} vs climate {c_rel}");
    }

    #[test]
    fn janatahack_store_siblings_are_related() {
        let ds = generate_with_shape(DatasetName::JanataHack, &[10, 6], 134, 11);
        // Same SKU across two stores should correlate strongly…
        let a = ds.series_id(&[0, 3]);
        let b = ds.series_id(&[5, 3]);
        let same_sku = corr(ds.values.series(a), ds.values.series(b));
        // …while different SKUs in one store should not.
        let c = ds.series_id(&[0, 4]);
        let diff_sku = corr(ds.values.series(a), ds.values.series(c));
        assert!(same_sku > 0.5, "same-sku corr {same_sku}");
        assert!(same_sku > diff_sku.abs(), "{same_sku} vs {diff_sku}");
    }

    #[test]
    fn generators_are_seed_reproducible() {
        let a = generate_scaled(DatasetName::Gas, 0.1, 42);
        let b = generate_scaled(DatasetName::Gas, 0.1, 42);
        assert_eq!(a.values, b.values);
        let c = generate_scaled(DatasetName::Gas, 0.1, 43);
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn scaled_shapes_respect_floors_and_caps() {
        let ds = generate_scaled(DatasetName::Gas, 0.05, 1);
        assert!(ds.n_series() >= 4 && ds.n_series() <= 100);
        assert!(ds.t_len() >= 128);
        let full = generate_scaled(DatasetName::AirQ, 2.0, 1); // >1 caps at paper shape
        assert_eq!(full.n_series(), 10);
        assert_eq!(full.t_len(), 1000);
    }
}
