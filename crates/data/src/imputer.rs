//! The uniform interface every imputation method in the workspace implements, plus
//! two trivial reference imputers used as sanity floors in tests and analytics.

use crate::dataset::ObservedDataset;
use mvi_tensor::Tensor;

/// A missing-value imputation algorithm.
///
/// `impute` receives the observed view (values zeroed at missing entries plus the
/// availability mask) and must return a complete tensor of the same shape. Observed
/// entries may be returned unchanged or denoised; evaluation only reads the missing
/// positions (Eq 1).
pub trait Imputer {
    /// Display name used in report tables (matches the paper's method names).
    fn name(&self) -> String;

    /// Fills in every missing entry of `obs`.
    fn impute(&self, obs: &ObservedDataset) -> Tensor;
}

/// Imputes each series' observed mean — the weakest sensible reference.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanImputer;

impl Imputer for MeanImputer {
    fn name(&self) -> String {
        "MeanImpute".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let mut out = obs.values.clone();
        let t = obs.t_len();
        for s in 0..obs.n_series() {
            let avail = obs.available.series(s);
            let vals = &obs.values.series(s).to_vec();
            let (mut sum, mut count) = (0.0, 0usize);
            for (v, &a) in vals.iter().zip(avail) {
                if a {
                    sum += v;
                    count += 1;
                }
            }
            let mean = if count > 0 { sum / count as f64 } else { 0.0 };
            let series = out.series_mut(s);
            for tt in 0..t {
                if !avail[tt] {
                    series[tt] = mean;
                }
            }
        }
        out
    }
}

/// Per-series linear interpolation with flat extrapolation at the edges — the
/// initialization CDRec and the SVD family use, exposed as a standalone method.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearInterpImputer;

/// Linearly interpolates the missing entries of one series in place.
///
/// Interior gaps interpolate between the flanking observed values; leading/trailing
/// gaps copy the nearest observed value; fully-missing series become zero.
pub fn interpolate_series(values: &mut [f64], available: &[bool]) {
    let t = values.len();
    let obs: Vec<usize> = (0..t).filter(|&i| available[i]).collect();
    if obs.is_empty() {
        for v in values.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    // Leading gap.
    for i in 0..obs[0] {
        values[i] = values[obs[0]];
    }
    // Trailing gap.
    for i in (obs[obs.len() - 1] + 1)..t {
        values[i] = values[obs[obs.len() - 1]];
    }
    // Interior gaps.
    for w in obs.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi > lo + 1 {
            let (vlo, vhi) = (values[lo], values[hi]);
            let span = (hi - lo) as f64;
            for i in (lo + 1)..hi {
                let alpha = (i - lo) as f64 / span;
                values[i] = vlo + alpha * (vhi - vlo);
            }
        }
    }
}

impl Imputer for LinearInterpImputer {
    fn name(&self) -> String {
        "LinearInterp".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let mut out = obs.values.clone();
        for s in 0..obs.n_series() {
            let avail = obs.available.series(s).to_vec();
            interpolate_series(out.series_mut(s), &avail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, DimSpec};
    use mvi_tensor::Mask;

    fn instance_1d(vals: &[f64], missing_at: &[usize]) -> ObservedDataset {
        let t = vals.len();
        let ds = Dataset::new(
            "t",
            vec![DimSpec::indexed("series", "s", 1)],
            Tensor::from_vec(vec![1, t], vals.to_vec()),
        );
        let mut missing = Mask::falses(&[1, t]);
        for &i in missing_at {
            missing.set(&[0, i], true);
        }
        ds.with_missing(missing).observed()
    }

    #[test]
    fn mean_imputer_uses_observed_mean() {
        let obs = instance_1d(&[1.0, 2.0, 99.0, 3.0], &[2]);
        let out = MeanImputer.impute(&obs);
        assert!((out.get(&[0, 2]) - 2.0).abs() < 1e-12);
        assert_eq!(out.get(&[0, 0]), 1.0);
    }

    #[test]
    fn linear_interp_fills_interior_gap() {
        let obs = instance_1d(&[0.0, 99.0, 99.0, 3.0], &[1, 2]);
        let out = LinearInterpImputer.impute(&obs);
        assert!((out.get(&[0, 1]) - 1.0).abs() < 1e-12);
        assert!((out.get(&[0, 2]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_interp_extrapolates_flat() {
        let obs = instance_1d(&[99.0, 5.0, 7.0, 99.0], &[0, 3]);
        let out = LinearInterpImputer.impute(&obs);
        assert_eq!(out.get(&[0, 0]), 5.0);
        assert_eq!(out.get(&[0, 3]), 7.0);
    }

    #[test]
    fn interpolate_handles_fully_missing_series() {
        let mut vals = vec![1.0, 2.0, 3.0];
        interpolate_series(&mut vals, &[false, false, false]);
        assert_eq!(vals, vec![0.0, 0.0, 0.0]);
    }
}
