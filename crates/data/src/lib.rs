//! Data model for multidimensional time series, the paper's ten evaluation datasets
//! (as calibrated synthetic generators), the five missing-value scenarios, and the
//! imputation metrics.
//!
//! * [`dataset`] — the `(K_1, ..., K_n, T)` dataset model of §2.1: dimensions with
//!   named members, ground-truth values, observed views, sibling enumeration.
//! * [`scenarios`] — MCAR, MissDisj, MissOver, Blackout and MissPoint (§5.1.2).
//! * [`generators`] — one generator per Table-1 dataset, matching the published
//!   shapes and the qualitative repetition/relatedness profile (see `DESIGN.md` §2
//!   for why this substitution preserves the evaluation's discriminative power).
//! * [`blocks`] — empirical missing-block-shape sampler used by DeepMVI's
//!   synthetic-training-mask procedure (§3).
//! * [`metrics`] — MAE / RMSE over missing indices (Eq 1) and the aggregate
//!   analytics statistic of §5.7 (including DropCell).
//! * [`imputer`] — the `Imputer` trait every method in the workspace implements.
//! * [`windows`] — the non-overlapping window grid (§4.1) shared by training,
//!   batch imputation and the online serving engine.

pub mod blocks;
pub mod dataset;
pub mod generators;
pub mod imputer;
pub mod metrics;
pub mod scenarios;
pub mod windows;

pub use blocks::{BlockSampler, BlockShape};
pub use dataset::{Dataset, DimSpec, Instance, ObservedDataset};
pub use imputer::Imputer;
pub use metrics::{mae, mae_all, rmse};
pub use scenarios::Scenario;
pub use windows::WindowGrid;
