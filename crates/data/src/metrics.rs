//! Imputation error metrics (Eq 1) and the downstream-analytics statistic of §5.7.

use mvi_tensor::{Mask, Tensor};

/// Mean absolute error over the entries where `missing` is `true`.
///
/// This is the paper's headline metric. Returns 0 when nothing is missing.
pub fn mae(truth: &Tensor, imputed: &Tensor, missing: &Mask) -> f64 {
    assert_eq!(truth.shape(), imputed.shape(), "mae shape mismatch");
    assert_eq!(truth.shape(), missing.shape(), "mae mask mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for ((&t, &p), &m) in truth.data().iter().zip(imputed.data()).zip(missing.data()) {
        if m {
            total += (t - p).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Root mean squared error over the entries where `missing` is `true`.
pub fn rmse(truth: &Tensor, imputed: &Tensor, missing: &Mask) -> f64 {
    assert_eq!(truth.shape(), imputed.shape(), "rmse shape mismatch");
    assert_eq!(truth.shape(), missing.shape(), "rmse mask mismatch");
    let mut total = 0.0;
    let mut count = 0usize;
    for ((&t, &p), &m) in truth.data().iter().zip(imputed.data()).zip(missing.data()) {
        if m {
            total += (t - p) * (t - p);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (total / count as f64).sqrt()
    }
}

/// MAE over *all* entries (used for aggregate-series comparisons where no mask
/// applies).
pub fn mae_all(a: &Tensor, b: &Tensor) -> f64 {
    assert_eq!(a.shape(), b.shape(), "mae_all shape mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.data().iter().zip(b.data()).map(|(&x, &y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// The aggregate-analytics statistic of §5.7: the mean over the *first* dimension,
/// producing an `(n-1)`-dimensional aggregated series (a single series for 1-D
/// datasets).
///
/// With `keep = None` every entry participates (use for imputed outputs and ground
/// truth). With `keep = Some(mask)` only entries where the mask is `true`
/// participate — this is the **DropCell** estimator that simply drops missing cells
/// from the average; positions where every entry is dropped fall back to `0.0`
/// (the global mean of z-scored data).
pub fn aggregate_first_dim(values: &Tensor, keep: Option<&Mask>) -> Tensor {
    let shape = values.shape();
    assert!(shape.len() >= 2, "need at least one non-time dimension plus time");
    let k1 = shape[0];
    let rest: usize = shape[1..].iter().product();
    let mut out = vec![0.0f64; rest];
    let mut counts = vec![0usize; rest];
    for i in 0..k1 {
        let base = i * rest;
        for j in 0..rest {
            let ok = keep.is_none_or(|m| m.at(base + j));
            if ok {
                out[j] += values.at(base + j);
                counts[j] += 1;
            }
        }
    }
    for (o, &c) in out.iter_mut().zip(&counts) {
        if c > 0 {
            *o /= c as f64;
        } else {
            *o = 0.0;
        }
    }
    Tensor::from_vec(shape[1..].to_vec(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mae_counts_only_missing() {
        let truth = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let pred = Tensor::from_slice(&[1.0, 0.0, 3.0, 6.0]);
        let mut missing = Mask::falses(&[4]);
        missing.set(&[1], true);
        missing.set(&[3], true);
        assert!((mae(&truth, &pred, &missing) - 2.0).abs() < 1e-12);
        assert!((rmse(&truth, &pred, &missing) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_imputation_has_zero_error() {
        let truth = Tensor::from_slice(&[5.0, -1.0]);
        let missing = Mask::trues(&[2]);
        assert_eq!(mae(&truth, &truth, &missing), 0.0);
        assert_eq!(rmse(&truth, &truth, &missing), 0.0);
    }

    #[test]
    fn empty_mask_yields_zero_not_nan() {
        // Nothing missing: the 0/0 mean must collapse to 0.0 for both metrics,
        // never NaN — downstream reports aggregate these values unchecked.
        let truth = Tensor::from_slice(&[5.0]);
        let pred = Tensor::from_slice(&[0.0]);
        let empty = Mask::falses(&[1]);
        let m = mae(&truth, &pred, &empty);
        let r = rmse(&truth, &pred, &empty);
        assert_eq!(m, 0.0);
        assert_eq!(r, 0.0);
        assert!(m.is_finite() && r.is_finite());
    }

    #[test]
    fn all_entries_missing_reduces_to_unmasked_means() {
        let truth = Tensor::from_slice(&[1.0, -2.0, 4.0, 0.0]);
        let pred = Tensor::from_slice(&[0.0, 0.0, 0.0, 0.0]);
        let all = Mask::trues(&[4]);
        assert!((mae(&truth, &pred, &all) - 7.0 / 4.0).abs() < 1e-12);
        assert!((rmse(&truth, &pred, &all) - (21.0f64 / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn garbage_outside_the_mask_never_leaks_into_the_metric() {
        // Imputers may leave NaN/inf at entries evaluation never reads; the
        // metrics must mask them out rather than poison the mean.
        let truth = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let pred = Tensor::from_slice(&[f64::NAN, 2.5, f64::INFINITY]);
        let mut missing = Mask::falses(&[3]);
        missing.set(&[1], true);
        let m = mae(&truth, &pred, &missing);
        let r = rmse(&truth, &pred, &missing);
        assert!((m - 0.5).abs() < 1e-12, "mae leaked masked garbage: {m}");
        assert!((r - 0.5).abs() < 1e-12, "rmse leaked masked garbage: {r}");
        assert!(m.is_finite() && r.is_finite());
    }

    #[test]
    fn empty_tensors_are_handled_by_all_metrics() {
        let empty = Tensor::zeros(&[0]);
        let mask = Mask::falses(&[0]);
        assert_eq!(mae(&empty, &empty, &mask), 0.0);
        assert_eq!(rmse(&empty, &empty, &mask), 0.0);
        assert_eq!(mae_all(&empty, &empty), 0.0);
    }

    #[test]
    fn aggregate_first_dim_means_over_k1() {
        // 2 x 3 matrix: aggregate is columnwise mean.
        let v = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 3.0, 4.0, 5.0]);
        let agg = aggregate_first_dim(&v, None);
        assert_eq!(agg.shape(), &[3]);
        assert_eq!(agg.data(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn dropcell_ignores_masked_entries() {
        let v = Tensor::from_vec(vec![2, 2], vec![1.0, 10.0, 3.0, 20.0]);
        let mut keep = Mask::trues(&[2, 2]);
        keep.set(&[0, 1], false); // drop the 10.0
        let agg = aggregate_first_dim(&v, Some(&keep));
        assert_eq!(agg.data(), &[2.0, 20.0]);
        // Fully-dropped column falls back to 0.
        keep.set(&[1, 1], false);
        let agg = aggregate_first_dim(&v, Some(&keep));
        assert_eq!(agg.data(), &[2.0, 0.0]);
    }

    #[test]
    fn aggregate_on_3d_keeps_inner_shape() {
        let v = Tensor::from_fn(&[2, 3, 4], |idx| idx[0] as f64);
        let agg = aggregate_first_dim(&v, None);
        assert_eq!(agg.shape(), &[3, 4]);
        assert!(agg.data().iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    proptest! {
        #[test]
        fn prop_rmse_dominates_mae(
            vals in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0, any::<bool>()), 1..50)
        ) {
            let truth = Tensor::from_slice(&vals.iter().map(|v| v.0).collect::<Vec<_>>());
            let pred = Tensor::from_slice(&vals.iter().map(|v| v.1).collect::<Vec<_>>());
            let missing = Mask::from_vec(vec![vals.len()], vals.iter().map(|v| v.2).collect());
            prop_assert!(rmse(&truth, &pred, &missing) + 1e-12 >= mae(&truth, &pred, &missing));
        }

        #[test]
        fn prop_mae_is_translation_invariant(
            vals in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..30), c in -3.0f64..3.0
        ) {
            let truth = Tensor::from_slice(&vals.iter().map(|v| v.0).collect::<Vec<_>>());
            let pred = Tensor::from_slice(&vals.iter().map(|v| v.1).collect::<Vec<_>>());
            let t2 = truth.map(|x| x + c);
            let p2 = pred.map(|x| x + c);
            let m = Mask::trues(&[vals.len()]);
            prop_assert!((mae(&truth, &pred, &m) - mae(&t2, &p2, &m)).abs() < 1e-9);
        }
    }
}
