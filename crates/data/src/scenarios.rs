//! The five missing-value scenarios of §5.1.2.
//!
//! All scenarios produce a missing mask `M` over the dataset tensor. Block
//! placements are seeded so every method sees the identical instance.

use crate::dataset::{Dataset, Instance};
use mvi_tensor::Mask;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A missing-value scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Missing Completely At Random: a fraction `pct_series` of the series each lose
    /// `missing_rate` of their data in randomly placed, non-overlapping blocks of
    /// constant size `block_len` (paper default: 10% in blocks of 10).
    Mcar {
        /// Fraction of series that are incomplete, in `(0, 1]`.
        pct_series: f64,
        /// Constant block length.
        block_len: usize,
        /// Fraction of each incomplete series that goes missing.
        missing_rate: f64,
    },
    /// Missing Disjoint: series `i` loses exactly `[i·T/N, (i+1)·T/N)` so that
    /// missing ranges never overlap across series.
    MissDisj,
    /// Missing Overlap: like MissDisj but with blocks of size `2T/N` (the last series
    /// keeps `T/N`), so consecutive series overlap in their missing ranges.
    MissOver,
    /// Blackout: every series loses the same range `[t0, t0 + block_len)` with `t0`
    /// fixed at 5% of the series length.
    Blackout {
        /// Length of the blacked-out range.
        block_len: usize,
    },
    /// The point-missing variant of §5.5.3: like MCAR with 100% of series incomplete
    /// and 10% missing, but with a configurable (small) block length down to single
    /// points.
    MissPoint {
        /// Block length (1 = isolated points).
        block_len: usize,
        /// Fraction of each series that goes missing.
        missing_rate: f64,
    },
}

impl Scenario {
    /// Paper-default MCAR: `x`% of series incomplete, blocks of 10, 10% missing.
    pub fn mcar(pct_series: f64) -> Self {
        Scenario::Mcar { pct_series, block_len: 10, missing_rate: 0.1 }
    }

    /// Short label used in report tables.
    pub fn label(&self) -> String {
        match self {
            Scenario::Mcar { pct_series, .. } => format!("MCAR({:.0}%)", pct_series * 100.0),
            Scenario::MissDisj => "MissDisj".to_string(),
            Scenario::MissOver => "MissOver".to_string(),
            Scenario::Blackout { block_len } => format!("Blackout({block_len})"),
            Scenario::MissPoint { block_len, .. } => format!("MissPoint({block_len})"),
        }
    }

    /// Applies the scenario to a dataset, producing a reproducible instance.
    pub fn apply(&self, dataset: &Dataset, seed: u64) -> Instance {
        let n = dataset.n_series();
        let t = dataset.t_len();
        let mut missing = Mask::falses(dataset.values.shape());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D_F00D);
        match *self {
            Scenario::Mcar { pct_series, block_len, missing_rate } => {
                let n_incomplete = ((pct_series * n as f64).round() as usize).clamp(1, n);
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut rng);
                for &s in order.iter().take(n_incomplete) {
                    place_random_blocks(&mut missing, s, t, block_len, missing_rate, &mut rng);
                }
            }
            Scenario::MissDisj => {
                let block = (t / n).max(1);
                for s in 0..n {
                    let start = (s * block).min(t);
                    let end = ((s + 1) * block).min(t);
                    missing.set_range(s, start, end, true);
                }
            }
            Scenario::MissOver => {
                let block = (t / n).max(1);
                for s in 0..n {
                    let start = (s * block).min(t);
                    let len = if s + 1 == n { block } else { 2 * block };
                    let end = (start + len).min(t);
                    missing.set_range(s, start, end, true);
                }
            }
            Scenario::Blackout { block_len } => {
                let start = ((t as f64) * 0.05) as usize;
                let end = (start + block_len).min(t);
                for s in 0..n {
                    missing.set_range(s, start, end, true);
                }
            }
            Scenario::MissPoint { block_len, missing_rate } => {
                for s in 0..n {
                    place_random_blocks(&mut missing, s, t, block_len, missing_rate, &mut rng);
                }
            }
        }
        dataset.clone().with_missing(missing)
    }
}

/// Places non-overlapping missing blocks of length `block_len` covering
/// `missing_rate` of series `s`, by sampling starts on a shuffled grid.
fn place_random_blocks(
    missing: &mut Mask,
    s: usize,
    t: usize,
    block_len: usize,
    missing_rate: f64,
    rng: &mut StdRng,
) {
    let block_len = block_len.clamp(1, t);
    let target = ((missing_rate * t as f64).round() as usize).max(block_len);
    let n_blocks = (target / block_len).max(1);
    // Candidate starts on a grid of stride block_len guarantee disjointness; a random
    // per-series offset avoids aligning blocks across series.
    let offset = rng.gen_range(0..block_len);
    let mut starts: Vec<usize> =
        (0..).map(|i| offset + i * block_len).take_while(|&st| st + block_len <= t).collect();
    starts.shuffle(rng);
    for &st in starts.iter().take(n_blocks) {
        missing.set_range(s, st, st + block_len, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DimSpec;
    use mvi_tensor::Tensor;
    use proptest::prelude::*;

    fn toy(n: usize, t: usize) -> Dataset {
        Dataset::new(
            "toy",
            vec![DimSpec::indexed("series", "s", n)],
            Tensor::from_fn(&[n, t], |idx| (idx[0] + idx[1]) as f64),
        )
    }

    #[test]
    fn mcar_hits_requested_rate() {
        let ds = toy(10, 1000);
        let inst = Scenario::mcar(1.0).apply(&ds, 7);
        for s in 0..10 {
            let frac = inst.missing.runs(s).iter().map(|&(_, l)| l).sum::<usize>() as f64 / 1000.0;
            assert!((frac - 0.1).abs() < 0.02, "series {s}: {frac}");
            // All blocks have the constant length 10.
            for (_, len) in inst.missing.runs(s) {
                assert_eq!(len % 10, 0);
            }
        }
    }

    #[test]
    fn mcar_pct_series_limits_incomplete_series() {
        let ds = toy(10, 500);
        let inst = Scenario::mcar(0.3).apply(&ds, 3);
        let incomplete = (0..10).filter(|&s| !inst.missing.runs(s).is_empty()).count();
        assert_eq!(incomplete, 3);
    }

    #[test]
    fn missdisj_blocks_are_disjoint_and_cover() {
        let ds = toy(5, 100);
        let inst = Scenario::MissDisj.apply(&ds, 1);
        let mut covered = [false; 100];
        for s in 0..5 {
            let runs = inst.missing.runs(s);
            assert_eq!(runs, vec![(s * 20, 20)]);
            for tt in runs[0].0..runs[0].0 + runs[0].1 {
                assert!(!covered[tt], "overlap at {tt}");
                covered[tt] = true;
            }
        }
    }

    #[test]
    fn missover_overlaps_neighbours() {
        let ds = toy(5, 100);
        let inst = Scenario::MissOver.apply(&ds, 1);
        assert_eq!(inst.missing.runs(0), vec![(0, 40)]);
        assert_eq!(inst.missing.runs(1), vec![(20, 40)]);
        assert_eq!(inst.missing.runs(4), vec![(80, 20)]);
    }

    #[test]
    fn blackout_hides_same_range_everywhere() {
        let ds = toy(4, 200);
        let inst = Scenario::Blackout { block_len: 50 }.apply(&ds, 9);
        for s in 0..4 {
            assert_eq!(inst.missing.runs(s), vec![(10, 50)]);
        }
    }

    #[test]
    fn misspoint_uses_small_blocks() {
        let ds = toy(6, 400);
        let inst = Scenario::MissPoint { block_len: 1, missing_rate: 0.1 }.apply(&ds, 5);
        for s in 0..6 {
            for (_, len) in inst.missing.runs(s) {
                // Grid placement keeps single points, though adjacent grid cells can
                // merge into short runs.
                assert!(len <= 4, "unexpected long run {len}");
            }
        }
    }

    #[test]
    fn seeded_scenarios_are_reproducible() {
        let ds = toy(8, 300);
        let a = Scenario::mcar(0.5).apply(&ds, 42);
        let b = Scenario::mcar(0.5).apply(&ds, 42);
        assert_eq!(a.missing, b.missing);
        let c = Scenario::mcar(0.5).apply(&ds, 43);
        assert_ne!(a.missing, c.missing);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_no_series_fully_missing_under_mcar(
            n in 2usize..8, t in 100usize..400, seed in 0u64..50
        ) {
            let ds = toy(n, t);
            let inst = Scenario::mcar(1.0).apply(&ds, seed);
            for s in 0..n {
                let miss: usize = inst.missing.runs(s).iter().map(|&(_, l)| l).sum();
                prop_assert!(miss < t / 2, "series {} lost {}/{}", s, miss, t);
            }
        }
    }
}
