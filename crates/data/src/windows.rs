//! The non-overlapping window grid DeepMVI computes over (§4.1), as a
//! standalone index: time positions ↔ window indices, clipped bounds, and the
//! window range touched by a time range.
//!
//! The training loop, the batch imputer and the online serving engine all need
//! the same arithmetic ("which windows does this missing run cross?", "which
//! tail windows does this append invalidate?"); this type keeps it in one
//! place instead of re-deriving `t / w` boundary cases at every call site.

use std::ops::Range;

/// A fixed-width, non-overlapping partition of `[origin, t_len)` into windows
/// of length `w` (the last window may be shorter; the origin is always
/// window-aligned, so every other window is full-width).
///
/// The time axis may *grow* ([`WindowGrid::grow_to`]): the serving engine
/// tracks a live series length that extends past the trained one as appends
/// arrive, and `n_windows` / `tail_windows_for` / `windows_overlapping`
/// always answer for the current span.
///
/// The grid may also act as a **retention ring** over a long-lived stream
/// ([`WindowGrid::retain_from`]): the origin advances in whole windows as the
/// oldest data is evicted, while window indices stay *logical* (window `j`
/// always covers `[j·w, (j+1)·w)` of absolute stream time, forever). The
/// mapping from a live logical window onto bounded physical storage is
/// [`WindowGrid::slot`]: slot `0` is the ring origin, so evicting the oldest
/// span shifts every retained window down by the number of windows dropped.
/// A freshly built grid has origin `0` — logical and storage indices coincide
/// until something is evicted.
///
/// ```
/// use mvi_data::windows::WindowGrid;
///
/// let mut g = WindowGrid::new(10, 60);
/// assert_eq!(g.n_windows(), 6);
/// g.retain_from(20); // evict the two oldest windows
/// assert_eq!(g.first_window(), 2);
/// assert_eq!(g.n_windows(), 4, "only retained windows remain");
/// assert_eq!(g.slot(2), 0, "the oldest retained window maps to storage 0");
/// assert_eq!(g.windows_overlapping(0, 35), 2..4, "evicted time clamps away");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowGrid {
    w: usize,
    t_len: usize,
    origin: usize,
}

impl WindowGrid {
    /// Builds a grid of `w`-wide windows over a series of length `t_len`,
    /// with the ring origin at `0` (nothing evicted).
    ///
    /// # Panics
    /// Panics on degenerate geometry: `w == 0` (every index computation here
    /// divides by `w`) or `t_len == 0` (a grid over an empty series has no
    /// windows, and `bounds`/`window_of` would underflow).
    pub fn new(w: usize, t_len: usize) -> Self {
        assert!(w > 0, "window width must be positive (got w = 0)");
        assert!(t_len > 0, "window grid needs a non-empty series (got t_len = 0)");
        Self { w, t_len, origin: 0 }
    }

    /// Grows the time axis to `new_t_len`, keeping the window width: existing
    /// window indices and bounds are unchanged except the previously-last
    /// window, which may widen to a full `w` as the series extends through it.
    ///
    /// # Panics
    /// Panics if `new_t_len` is smaller than the current length (windows
    /// never shrink from the *end* — a grid indexes data that has already
    /// arrived; the *front* is evicted with [`WindowGrid::retain_from`]).
    pub fn grow_to(&mut self, new_t_len: usize) {
        assert!(
            new_t_len >= self.t_len,
            "window grid cannot shrink ({} -> {new_t_len})",
            self.t_len
        );
        self.t_len = new_t_len;
    }

    /// Advances the ring origin to `new_origin`, evicting every window before
    /// it: logical window indices are unchanged, but evicted time is clamped
    /// out of [`WindowGrid::windows_overlapping`] and storage
    /// [`WindowGrid::slot`]s shift down by the windows dropped.
    ///
    /// # Panics
    /// Panics if `new_origin` is not window-aligned (the ring evicts whole
    /// windows), moves backwards (evicted data cannot return), or would leave
    /// an empty grid (`new_origin >= t_len`).
    pub fn retain_from(&mut self, new_origin: usize) {
        assert!(
            new_origin.is_multiple_of(self.w),
            "ring origin {new_origin} must be a multiple of the window width {}",
            self.w
        );
        assert!(
            new_origin >= self.origin,
            "ring origin cannot move backwards ({} -> {new_origin})",
            self.origin
        );
        assert!(
            new_origin < self.t_len,
            "ring origin {new_origin} would evict the whole grid (t_len {})",
            self.t_len
        );
        self.origin = new_origin;
    }

    /// Window width `w`.
    pub fn window_len(&self) -> usize {
        self.w
    }

    /// The live end of the time axis `T` (logical: absolute stream time).
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// The ring origin: the oldest retained time position (window-aligned,
    /// `0` until something is evicted). Time before this is gone.
    pub fn origin(&self) -> usize {
        self.origin
    }

    /// Number of retained time steps, `t_len - origin` — the span physical
    /// storage must hold.
    pub fn retained_len(&self) -> usize {
        self.t_len - self.origin
    }

    /// Index of the oldest retained window (`origin / w`).
    pub fn first_window(&self) -> usize {
        self.origin / self.w
    }

    /// Number of *retained* windows (`⌈T/w⌉ - origin/w`). With the origin at
    /// `0` this is the total window count `⌈T/w⌉`.
    pub fn n_windows(&self) -> usize {
        self.t_len.div_ceil(self.w) - self.first_window()
    }

    /// The retained logical window indices,
    /// `first_window .. first_window + n_windows`.
    pub fn window_range(&self) -> Range<usize> {
        self.first_window()..self.first_window() + self.n_windows()
    }

    /// Storage slot of retained logical window `j`: its index relative to the
    /// ring origin. Slot `0` holds the oldest retained window, and because
    /// the origin is window-aligned, a window's slot is exactly its index on
    /// the grid of the retained span viewed as a standalone series.
    pub fn slot(&self, j: usize) -> usize {
        debug_assert!(
            self.window_range().contains(&j),
            "window {j} outside the retained range {:?}",
            self.window_range()
        );
        j - self.first_window()
    }

    /// Index of the window containing time `t` (must be retained).
    pub fn window_of(&self, t: usize) -> usize {
        debug_assert!(
            t >= self.origin && t < self.t_len,
            "t={t} outside the retained span [{}, {})",
            self.origin,
            self.t_len
        );
        t / self.w
    }

    /// Time bounds `[start, end)` of retained window `j`, clipped to the
    /// series length.
    pub fn bounds(&self, j: usize) -> (usize, usize) {
        debug_assert!(
            self.window_range().contains(&j),
            "window {j} outside the retained range {:?}",
            self.window_range()
        );
        (j * self.w, ((j + 1) * self.w).min(self.t_len))
    }

    /// Indices of every retained window intersecting the time range
    /// `[start, end)` (empty for an empty range). Time before the ring origin
    /// is clamped away — evicted windows are never enumerated.
    pub fn windows_overlapping(&self, start: usize, end: usize) -> Range<usize> {
        let start = start.max(self.origin);
        let end = end.min(self.t_len);
        if start >= end {
            return 0..0;
        }
        start / self.w..(end - 1) / self.w + 1
    }

    /// The suffix of retained windows affected by a change to `[start, t_len)`,
    /// widened left by one window width: the fine-grained local mean of a
    /// position in the *previous* window can reach up to `w` steps forward into
    /// the changed range, so tail re-imputation must start one window early to
    /// reproduce a full batch re-impute on the affected region.
    pub fn tail_windows_for(&self, start: usize) -> Range<usize> {
        self.windows_overlapping(start.saturating_sub(self.w), self.t_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_partitions_the_series() {
        let g = WindowGrid::new(10, 34);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(0), (0, 10));
        assert_eq!(g.bounds(3), (30, 34), "last window clips to T");
        for t in 0..34 {
            let j = g.window_of(t);
            let (lo, hi) = g.bounds(j);
            assert!(lo <= t && t < hi);
        }
    }

    #[test]
    fn overlap_covers_exactly_the_touched_windows() {
        let g = WindowGrid::new(10, 50);
        assert_eq!(g.windows_overlapping(0, 50), 0..5);
        assert_eq!(g.windows_overlapping(12, 13), 1..2);
        assert_eq!(g.windows_overlapping(9, 11), 0..2);
        assert_eq!(g.windows_overlapping(20, 20), 0..0);
        assert_eq!(g.windows_overlapping(45, 99), 4..5, "end clips to T");
    }

    #[test]
    fn tail_windows_reach_one_window_back() {
        let g = WindowGrid::new(10, 60);
        assert_eq!(g.tail_windows_for(35), 2..6);
        assert_eq!(g.tail_windows_for(40), 3..6);
        assert_eq!(g.tail_windows_for(5), 0..6);
        assert_eq!(g.tail_windows_for(0), 0..6);
    }

    #[test]
    fn exact_multiple_has_full_last_window() {
        let g = WindowGrid::new(5, 20);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(3), (15, 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = WindowGrid::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty series")]
    fn zero_length_rejected() {
        let _ = WindowGrid::new(10, 0);
    }

    #[test]
    fn grow_tracks_the_live_length() {
        let mut g = WindowGrid::new(10, 34);
        assert_eq!(g.n_windows(), 4);
        // Growing through the partial last window first completes it ...
        g.grow_to(40);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(3), (30, 40), "previously-clipped window widens");
        // ... then adds new windows.
        g.grow_to(57);
        assert_eq!(g.n_windows(), 6);
        assert_eq!(g.bounds(5), (50, 57));
        assert_eq!(g.windows_overlapping(38, 52), 3..6);
        assert_eq!(g.tail_windows_for(41), 3..6, "tail reaches one window back of the append");
        // Same-length growth is a no-op.
        g.grow_to(57);
        assert_eq!(g.n_windows(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        WindowGrid::new(10, 50).grow_to(49);
    }

    #[test]
    fn retain_from_advances_the_origin_and_keeps_logical_indices() {
        let mut g = WindowGrid::new(10, 75);
        assert_eq!(g.origin(), 0);
        assert_eq!(g.window_range(), 0..8);
        g.retain_from(30);
        assert_eq!(g.origin(), 30);
        assert_eq!(g.retained_len(), 45);
        assert_eq!(g.first_window(), 3);
        assert_eq!(g.n_windows(), 5);
        assert_eq!(g.window_range(), 3..8);
        // Logical bounds are unchanged; storage slots shift down.
        assert_eq!(g.bounds(3), (30, 40));
        assert_eq!(g.bounds(7), (70, 75));
        assert_eq!(g.slot(3), 0);
        assert_eq!(g.slot(7), 4);
        // Evicted time clamps out of the overlap enumeration.
        assert_eq!(g.windows_overlapping(0, 75), 3..8);
        assert_eq!(g.windows_overlapping(0, 25), 0..0, "fully evicted range is empty");
        assert_eq!(g.tail_windows_for(0), 3..8);
        assert_eq!(g.window_of(30), 3);
        // Growth and retention compose: the ring keeps sliding forward.
        g.grow_to(100);
        g.retain_from(60);
        assert_eq!(g.window_range(), 6..10);
        assert_eq!(g.slot(6), 0);
        assert_eq!(g.retained_len(), 40);
        // Same-origin retention is a no-op.
        g.retain_from(60);
        assert_eq!(g.n_windows(), 4);
    }

    #[test]
    #[should_panic(expected = "multiple of the window width")]
    fn retain_from_rejects_unaligned_origins() {
        WindowGrid::new(10, 50).retain_from(15);
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn retain_from_rejects_moving_backwards() {
        let mut g = WindowGrid::new(10, 50);
        g.retain_from(20);
        g.retain_from(10);
    }

    #[test]
    #[should_panic(expected = "evict the whole grid")]
    fn retain_from_rejects_evicting_everything() {
        WindowGrid::new(10, 50).retain_from(50);
    }
}
