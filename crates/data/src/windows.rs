//! The non-overlapping window grid DeepMVI computes over (§4.1), as a
//! standalone index: time positions ↔ window indices, clipped bounds, and the
//! window range touched by a time range.
//!
//! The training loop, the batch imputer and the online serving engine all need
//! the same arithmetic ("which windows does this missing run cross?", "which
//! tail windows does this append invalidate?"); this type keeps it in one
//! place instead of re-deriving `t / w` boundary cases at every call site.

use std::ops::Range;

/// A fixed-width, non-overlapping partition of `[0, t_len)` into windows of
/// length `w` (the last window may be shorter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowGrid {
    w: usize,
    t_len: usize,
}

impl WindowGrid {
    /// Builds a grid of `w`-wide windows over a series of length `t_len`.
    ///
    /// # Panics
    /// Panics if `w == 0`.
    pub fn new(w: usize, t_len: usize) -> Self {
        assert!(w > 0, "window width must be positive");
        Self { w, t_len }
    }

    /// Window width `w`.
    pub fn window_len(&self) -> usize {
        self.w
    }

    /// Series length `T`.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// Number of windows (`⌈T / w⌉`).
    pub fn n_windows(&self) -> usize {
        self.t_len.div_ceil(self.w)
    }

    /// Index of the window containing time `t`.
    pub fn window_of(&self, t: usize) -> usize {
        debug_assert!(t < self.t_len, "t={t} out of series length {}", self.t_len);
        t / self.w
    }

    /// Time bounds `[start, end)` of window `j`, clipped to the series length.
    pub fn bounds(&self, j: usize) -> (usize, usize) {
        debug_assert!(j < self.n_windows(), "window {j} out of {}", self.n_windows());
        (j * self.w, ((j + 1) * self.w).min(self.t_len))
    }

    /// Indices of every window intersecting the time range `[start, end)`
    /// (empty for an empty range).
    pub fn windows_overlapping(&self, start: usize, end: usize) -> Range<usize> {
        let end = end.min(self.t_len);
        if start >= end {
            return 0..0;
        }
        start / self.w..(end - 1) / self.w + 1
    }

    /// The suffix of windows affected by a change to `[start, t_len)`, widened
    /// left by one window width: the fine-grained local mean of a position in
    /// the *previous* window can reach up to `w` steps forward into the changed
    /// range, so tail re-imputation must start one window early to reproduce a
    /// full batch re-impute on the affected region.
    pub fn tail_windows_for(&self, start: usize) -> Range<usize> {
        self.windows_overlapping(start.saturating_sub(self.w), self.t_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_partitions_the_series() {
        let g = WindowGrid::new(10, 34);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(0), (0, 10));
        assert_eq!(g.bounds(3), (30, 34), "last window clips to T");
        for t in 0..34 {
            let j = g.window_of(t);
            let (lo, hi) = g.bounds(j);
            assert!(lo <= t && t < hi);
        }
    }

    #[test]
    fn overlap_covers_exactly_the_touched_windows() {
        let g = WindowGrid::new(10, 50);
        assert_eq!(g.windows_overlapping(0, 50), 0..5);
        assert_eq!(g.windows_overlapping(12, 13), 1..2);
        assert_eq!(g.windows_overlapping(9, 11), 0..2);
        assert_eq!(g.windows_overlapping(20, 20), 0..0);
        assert_eq!(g.windows_overlapping(45, 99), 4..5, "end clips to T");
    }

    #[test]
    fn tail_windows_reach_one_window_back() {
        let g = WindowGrid::new(10, 60);
        assert_eq!(g.tail_windows_for(35), 2..6);
        assert_eq!(g.tail_windows_for(40), 3..6);
        assert_eq!(g.tail_windows_for(5), 0..6);
        assert_eq!(g.tail_windows_for(0), 0..6);
    }

    #[test]
    fn exact_multiple_has_full_last_window() {
        let g = WindowGrid::new(5, 20);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(3), (15, 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = WindowGrid::new(0, 10);
    }
}
