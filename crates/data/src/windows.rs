//! The non-overlapping window grid DeepMVI computes over (§4.1), as a
//! standalone index: time positions ↔ window indices, clipped bounds, and the
//! window range touched by a time range.
//!
//! The training loop, the batch imputer and the online serving engine all need
//! the same arithmetic ("which windows does this missing run cross?", "which
//! tail windows does this append invalidate?"); this type keeps it in one
//! place instead of re-deriving `t / w` boundary cases at every call site.

use std::ops::Range;

/// A fixed-width, non-overlapping partition of `[0, t_len)` into windows of
/// length `w` (the last window may be shorter).
///
/// The time axis may *grow* ([`WindowGrid::grow_to`]): the serving engine
/// tracks a live series length that extends past the trained one as appends
/// arrive, and `n_windows` / `tail_windows_for` / `windows_overlapping`
/// always answer for the current length.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowGrid {
    w: usize,
    t_len: usize,
}

impl WindowGrid {
    /// Builds a grid of `w`-wide windows over a series of length `t_len`.
    ///
    /// # Panics
    /// Panics on degenerate geometry: `w == 0` (every index computation here
    /// divides by `w`) or `t_len == 0` (a grid over an empty series has no
    /// windows, and `bounds`/`window_of` would underflow).
    pub fn new(w: usize, t_len: usize) -> Self {
        assert!(w > 0, "window width must be positive (got w = 0)");
        assert!(t_len > 0, "window grid needs a non-empty series (got t_len = 0)");
        Self { w, t_len }
    }

    /// Grows the time axis to `new_t_len`, keeping the window width: existing
    /// window indices and bounds are unchanged except the previously-last
    /// window, which may widen to a full `w` as the series extends through it.
    ///
    /// # Panics
    /// Panics if `new_t_len` is smaller than the current length (windows
    /// never shrink — a grid indexes data that has already arrived).
    pub fn grow_to(&mut self, new_t_len: usize) {
        assert!(
            new_t_len >= self.t_len,
            "window grid cannot shrink ({} -> {new_t_len})",
            self.t_len
        );
        self.t_len = new_t_len;
    }

    /// Window width `w`.
    pub fn window_len(&self) -> usize {
        self.w
    }

    /// Series length `T`.
    pub fn t_len(&self) -> usize {
        self.t_len
    }

    /// Number of windows (`⌈T / w⌉`).
    pub fn n_windows(&self) -> usize {
        self.t_len.div_ceil(self.w)
    }

    /// Index of the window containing time `t`.
    pub fn window_of(&self, t: usize) -> usize {
        debug_assert!(t < self.t_len, "t={t} out of series length {}", self.t_len);
        t / self.w
    }

    /// Time bounds `[start, end)` of window `j`, clipped to the series length.
    pub fn bounds(&self, j: usize) -> (usize, usize) {
        debug_assert!(j < self.n_windows(), "window {j} out of {}", self.n_windows());
        (j * self.w, ((j + 1) * self.w).min(self.t_len))
    }

    /// Indices of every window intersecting the time range `[start, end)`
    /// (empty for an empty range).
    pub fn windows_overlapping(&self, start: usize, end: usize) -> Range<usize> {
        let end = end.min(self.t_len);
        if start >= end {
            return 0..0;
        }
        start / self.w..(end - 1) / self.w + 1
    }

    /// The suffix of windows affected by a change to `[start, t_len)`, widened
    /// left by one window width: the fine-grained local mean of a position in
    /// the *previous* window can reach up to `w` steps forward into the changed
    /// range, so tail re-imputation must start one window early to reproduce a
    /// full batch re-impute on the affected region.
    pub fn tail_windows_for(&self, start: usize) -> Range<usize> {
        self.windows_overlapping(start.saturating_sub(self.w), self.t_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_partitions_the_series() {
        let g = WindowGrid::new(10, 34);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(0), (0, 10));
        assert_eq!(g.bounds(3), (30, 34), "last window clips to T");
        for t in 0..34 {
            let j = g.window_of(t);
            let (lo, hi) = g.bounds(j);
            assert!(lo <= t && t < hi);
        }
    }

    #[test]
    fn overlap_covers_exactly_the_touched_windows() {
        let g = WindowGrid::new(10, 50);
        assert_eq!(g.windows_overlapping(0, 50), 0..5);
        assert_eq!(g.windows_overlapping(12, 13), 1..2);
        assert_eq!(g.windows_overlapping(9, 11), 0..2);
        assert_eq!(g.windows_overlapping(20, 20), 0..0);
        assert_eq!(g.windows_overlapping(45, 99), 4..5, "end clips to T");
    }

    #[test]
    fn tail_windows_reach_one_window_back() {
        let g = WindowGrid::new(10, 60);
        assert_eq!(g.tail_windows_for(35), 2..6);
        assert_eq!(g.tail_windows_for(40), 3..6);
        assert_eq!(g.tail_windows_for(5), 0..6);
        assert_eq!(g.tail_windows_for(0), 0..6);
    }

    #[test]
    fn exact_multiple_has_full_last_window() {
        let g = WindowGrid::new(5, 20);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(3), (15, 20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = WindowGrid::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty series")]
    fn zero_length_rejected() {
        let _ = WindowGrid::new(10, 0);
    }

    #[test]
    fn grow_tracks_the_live_length() {
        let mut g = WindowGrid::new(10, 34);
        assert_eq!(g.n_windows(), 4);
        // Growing through the partial last window first completes it ...
        g.grow_to(40);
        assert_eq!(g.n_windows(), 4);
        assert_eq!(g.bounds(3), (30, 40), "previously-clipped window widens");
        // ... then adds new windows.
        g.grow_to(57);
        assert_eq!(g.n_windows(), 6);
        assert_eq!(g.bounds(5), (50, 57));
        assert_eq!(g.windows_overlapping(38, 52), 3..6);
        assert_eq!(g.tail_windows_for(41), 3..6, "tail reaches one window back of the append");
        // Same-length growth is a no-op.
        g.grow_to(57);
        assert_eq!(g.n_windows(), 6);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        WindowGrid::new(10, 50).grow_to(49);
    }
}
