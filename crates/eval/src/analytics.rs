//! Downstream aggregate analytics (§5.7): how imputation quality propagates into
//! the top-level statistic analysts actually read.

use mvi_data::dataset::Instance;
use mvi_data::imputer::Imputer;
use mvi_data::metrics::{aggregate_first_dim, mae_all};
use mvi_tensor::Tensor;

/// Aggregate-analytics comparison for one instance.
#[derive(Clone, Debug)]
pub struct AnalyticsResult {
    /// MAE between the aggregate computed on imputed data and on true data.
    pub method_agg_mae: f64,
    /// MAE of the DropCell estimator (missing cells dropped from the average).
    pub dropcell_agg_mae: f64,
}

impl AnalyticsResult {
    /// Fig 11's y-axis: `MAE(DropCell) − MAE(method)`. Positive means the method's
    /// imputation improves the downstream aggregate over just dropping cells.
    pub fn gain_over_dropcell(&self) -> f64 {
        self.dropcell_agg_mae - self.method_agg_mae
    }
}

/// Computes the §5.7 statistic: mean over the first dimension, compared against the
/// same aggregate on ground truth, for (a) the method's imputation and (b) DropCell.
pub fn aggregate_comparison(instance: &Instance, imputed: &Tensor) -> AnalyticsResult {
    let truth_agg = aggregate_first_dim(&instance.truth.values, None);
    let method_agg = aggregate_first_dim(imputed, None);
    let dropcell_agg =
        aggregate_first_dim(&instance.truth.values, Some(&instance.missing.complement()));
    AnalyticsResult {
        method_agg_mae: mae_all(&truth_agg, &method_agg),
        dropcell_agg_mae: mae_all(&truth_agg, &dropcell_agg),
    }
}

/// Convenience: run an imputer and compare its downstream aggregate.
pub fn evaluate_analytics(imputer: &dyn Imputer, instance: &Instance) -> AnalyticsResult {
    let imputed = imputer.impute(&instance.observed());
    aggregate_comparison(instance, &imputed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::dataset::{Dataset, DimSpec};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::scenarios::Scenario;
    use mvi_tensor::Mask;

    #[test]
    fn perfect_imputation_beats_dropcell() {
        let ds = generate_with_shape(DatasetName::Climate, &[6], 300, 2);
        let inst = Scenario::mcar(1.0).apply(&ds, 4);
        // Oracle: impute with ground truth.
        let r = aggregate_comparison(&inst, &inst.truth.values);
        assert_eq!(r.method_agg_mae, 0.0);
        assert!(r.dropcell_agg_mae > 0.0);
        assert!(r.gain_over_dropcell() > 0.0);
    }

    #[test]
    fn dropcell_is_exact_when_nothing_is_missing() {
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 3);
        let inst = ds.clone().with_missing(Mask::falses(ds.values.shape()));
        let r = aggregate_comparison(&inst, &inst.truth.values);
        assert_eq!(r.dropcell_agg_mae, 0.0);
        assert_eq!(r.method_agg_mae, 0.0);
    }

    #[test]
    fn bad_imputation_can_be_worse_than_dropcell() {
        // A constant, wildly wrong imputation must lose to DropCell — the paper's
        // motivating observation (§1, §5.7).
        let ds = generate_with_shape(DatasetName::Climate, &[6], 300, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 7);
        let mut bad = inst.truth.values.clone();
        for (v, &m) in bad.data_mut().iter_mut().zip(inst.missing.data()) {
            if m {
                *v = 25.0;
            }
        }
        let r = aggregate_comparison(&inst, &bad);
        assert!(r.gain_over_dropcell() < 0.0);
    }

    #[test]
    fn multidim_aggregate_has_reduced_shape() {
        let dims = vec![DimSpec::indexed("store", "st", 3), DimSpec::indexed("item", "it", 4)];
        let values = mvi_tensor::Tensor::from_fn(&[3, 4, 50], |idx| (idx[0] + idx[1]) as f64);
        let ds = Dataset::new("md", dims, values);
        let inst = Scenario::mcar(1.0).apply(&ds, 1);
        let r = evaluate_analytics(&MeanImputer, &inst);
        assert!(r.method_agg_mae.is_finite());
        assert!(r.dropcell_agg_mae.is_finite());
    }
}
