//! Drivers that regenerate every table and figure of the paper's §5.
//!
//! Each driver returns [`Table`]s with the same rows/series the paper plots. The
//! `crates/bench` binaries print them; the integration tests run them at reduced
//! scale. Absolute values differ from the paper (synthetic data, CPU-only budget),
//! but the *shape* — method ordering, scenario difficulty, crossovers — is the
//! reproduction target (see `EXPERIMENTS.md`).

use crate::analytics::evaluate_analytics;
use crate::harness::{run_method, RunResult};
use crate::methods::{Method, MethodBudget};
use crate::report::Table;
use mvi_data::dataset::{Dataset, Instance};
use mvi_data::generators::{generate_scaled, generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;

/// Shared experiment parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExpConfig {
    /// Dataset scale factor (1.0 = paper shapes).
    pub scale: f64,
    /// Base seed for data generation and scenario placement.
    pub seed: u64,
    /// Method training budget.
    pub budget: MethodBudget,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self { scale: 0.25, seed: 7, budget: MethodBudget::Quick }
    }
}

impl ExpConfig {
    /// Tiny configuration for integration tests.
    pub fn smoke() -> Self {
        Self { scale: 0.08, seed: 3, budget: MethodBudget::Quick }
    }
}

fn run_all(instance: &Instance, methods: &[Method], budget: MethodBudget) -> Vec<RunResult> {
    methods.iter().map(|m| run_method(m.build(budget).as_ref(), instance)).collect()
}

// ======================================================================
// Table 1 — dataset inventory
// ======================================================================

/// Regenerates Table 1: shapes plus *measured* repetition (seasonal-lag
/// autocorrelation) and relatedness (mean |pairwise correlation|) of the
/// generators, auditing the calibration claims of `DESIGN.md`.
pub fn table1_datasets(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Table 1 — datasets (generated at paper shape descriptors)",
        &["dataset", "series", "length", "dims", "repetition", "relatedness"],
    );
    for name in DatasetName::all() {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        let (dims, _) = name.paper_shape();
        t.push_row(vec![
            name.label().to_string(),
            ds.n_series().to_string(),
            ds.t_len().to_string(),
            dims.len().to_string(),
            format!("{:.3}", repetition_proxy(&ds)),
            format!("{:.3}", relatedness_proxy(&ds)),
        ]);
    }
    t
}

/// Mean best autocorrelation over candidate seasonal lags.
fn repetition_proxy(ds: &Dataset) -> f64 {
    let t_len = ds.t_len();
    let max_lag = (t_len / 3).min(400);
    let n = ds.n_series().min(16);
    let mut total = 0.0;
    for s in 0..n {
        let x = ds.values.series(s);
        let mut best = 0.0f64;
        let mut lag = 5;
        while lag < max_lag {
            let mut acc = 0.0;
            for i in 0..t_len - lag {
                acc += x[i] * x[i + lag];
            }
            best = best.max(acc / (t_len - lag) as f64);
            lag += (max_lag / 40).max(1);
        }
        total += best;
    }
    total / n as f64
}

/// Mean |pairwise correlation| over a sample of series pairs.
fn relatedness_proxy(ds: &Dataset) -> f64 {
    let n = ds.n_series().min(12);
    let t_len = ds.t_len();
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (ds.values.series(i), ds.values.series(j));
            let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
            total += (dot / t_len as f64).abs(); // series are z-scored
            count += 1;
        }
    }
    total / count.max(1) as f64
}

// ======================================================================
// Figure 4 — visual imputation comparison
// ======================================================================

/// Regenerates Fig 4: per-timestep imputations of CDRec, DynaMMO and DeepMVI
/// against ground truth on Electricity, for MCAR (top row) and Blackout (bottom).
pub fn fig4_visual(cfg: &ExpConfig) -> Vec<Table> {
    let ds = generate_scaled(DatasetName::Electricity, cfg.scale, cfg.seed);
    let methods = [Method::CdRec, Method::DynaMmo, Method::DeepMvi];
    let mut out = Vec::new();
    for (label, scenario) in [
        ("MCAR", Scenario::mcar(1.0)),
        ("Blackout", Scenario::Blackout { block_len: 100.min(ds.t_len() / 4) }),
    ] {
        let inst = scenario.apply(&ds, cfg.seed);
        let obs = inst.observed();
        let imputed: Vec<_> = methods
            .iter()
            .map(|m| m.build(cfg.budget))
            .map(|imp| (imp.name(), imp.impute(&obs)))
            .collect();
        let mut t = Table::new(
            format!("Figure 4 ({label}) — imputed values on Electricity, series 0"),
            &["t", "truth", "CDRec", "DynaMMO", "DeepMVI"],
        );
        // First few missing blocks of series 0.
        for (start, len) in inst.missing.runs(0).into_iter().take(5) {
            for tt in start..start + len {
                let mut row = vec![tt.to_string(), format!("{:.4}", ds.values.series(0)[tt])];
                for (_, imp) in &imputed {
                    row.push(format!("{:.4}", imp.series(0)[tt]));
                }
                t.push_row(row);
            }
        }
        out.push(t);
    }
    out
}

// ======================================================================
// Figure 5 — conventional methods, five datasets, four scenarios
// ======================================================================

/// Regenerates Fig 5: MAE of {CDRec, DynaMMO, TRMF, SVDImp, DeepMVI} on
/// {Chlorine, Temp, Gas, Meteo, BAFU} under MCAR(10%), MissDisj, MissOver and
/// Blackout(10).
pub fn fig5_conventional(cfg: &ExpConfig) -> Vec<Table> {
    let datasets = [
        DatasetName::Chlorine,
        DatasetName::Temperature,
        DatasetName::Gas,
        DatasetName::Meteo,
        DatasetName::Bafu,
    ];
    let methods = Method::conventional_figure_set();
    let scenarios: [(&str, Scenario); 4] = [
        ("MCAR", Scenario::mcar(0.1)),
        ("MissDisj", Scenario::MissDisj),
        ("MissOver", Scenario::MissOver),
        ("Blackout", Scenario::Blackout { block_len: 10 }),
    ];
    let mut tables = Vec::new();
    for (label, scenario) in scenarios {
        let mut t = Table::new(
            format!("Figure 5 ({label}) — MAE"),
            &["dataset", "CDRec", "DynaMMO", "TRMF", "SVDImp", "DeepMVI"],
        );
        for name in datasets {
            let ds = generate_scaled(name, cfg.scale, cfg.seed);
            let inst = scenario.apply(&ds, cfg.seed ^ name as u64);
            let results = run_all(&inst, &methods, cfg.budget);
            t.push_values(name.label(), &results.iter().map(|r| r.mae).collect::<Vec<_>>());
        }
        tables.push(t);
    }
    tables
}

// ======================================================================
// Figure 6 — sweeps on AirQ / Climate / Electricity
// ======================================================================

/// Regenerates Fig 6: MAE vs. percentage of incomplete series (MCAR, MissDisj,
/// MissOver) and vs. block size (Blackout) on AirQ, Climate and Electricity.
pub fn fig6_sweeps(cfg: &ExpConfig, pct_points: &[f64], blackout_sizes: &[usize]) -> Vec<Table> {
    let datasets = [DatasetName::AirQ, DatasetName::Climate, DatasetName::Electricity];
    let methods = Method::conventional_figure_set();
    let mut tables = Vec::new();
    for name in datasets {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        for (label, is_blackout) in
            [("MCAR", false), ("MissDisj", false), ("MissOver", false), ("Blackout", true)]
        {
            let mut t = Table::new(
                format!("Figure 6 ({} / {label}) — MAE", name.label()),
                &["x", "CDRec", "DynaMMO", "TRMF", "SVDImp", "DeepMVI"],
            );
            if is_blackout {
                for &size in blackout_sizes {
                    let size = size.min(ds.t_len() / 3);
                    let inst = Scenario::Blackout { block_len: size }.apply(&ds, cfg.seed);
                    let results = run_all(&inst, &methods, cfg.budget);
                    t.push_values(
                        &size.to_string(),
                        &results.iter().map(|r| r.mae).collect::<Vec<_>>(),
                    );
                }
            } else {
                for &pct in pct_points {
                    let scenario = match label {
                        "MCAR" => Scenario::mcar(pct),
                        // MissDisj/MissOver are defined over all series; the paper
                        // sweeps the share of series carrying a missing block by
                        // restricting to the first pct·N series — approximated by
                        // scaling MCAR-style placement for those scenarios.
                        "MissDisj" => Scenario::MissDisj,
                        _ => Scenario::MissOver,
                    };
                    // For MissDisj/MissOver the sweep only changes which fraction of
                    // series keep their block; emulate by masking a subset.
                    let inst = if label == "MCAR" {
                        scenario.apply(&ds, cfg.seed)
                    } else {
                        restrict_to_fraction(scenario.apply(&ds, cfg.seed), pct)
                    };
                    let results = run_all(&inst, &methods, cfg.budget);
                    t.push_values(
                        &format!("{:.0}%", pct * 100.0),
                        &results.iter().map(|r| r.mae).collect::<Vec<_>>(),
                    );
                }
            }
            tables.push(t);
        }
    }
    tables
}

/// Keeps missing blocks only in the first `pct` fraction of series.
fn restrict_to_fraction(mut inst: Instance, pct: f64) -> Instance {
    let n = inst.truth.n_series();
    let keep = ((pct * n as f64).round() as usize).clamp(1, n);
    let t_len = inst.truth.t_len();
    for s in keep..n {
        inst.missing.set_range(s, 0, t_len, false);
    }
    inst
}

// ======================================================================
// Table 2 — deep methods
// ======================================================================

/// Regenerates Table 2: MAE of {BRITS, GPVAE, Transformer, DeepMVI} on the two
/// multidimensional datasets (MCAR 100%) and on Climate/Electricity/Meteo under
/// MCAR(100%) and Blackout(100).
pub fn table2_deep(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "Table 2 — deep methods, MAE",
        &[
            "model",
            "M5 MCAR",
            "JantaHack MCAR",
            "Climate MCAR",
            "Climate Blk",
            "Electr MCAR",
            "Electr Blk",
            "Meteo MCAR",
            "Meteo Blk",
        ],
    );
    let methods = Method::deep_table_set();
    // Pre-build the eight instances.
    let mut instances: Vec<Instance> = Vec::new();
    for name in [DatasetName::M5, DatasetName::JanataHack] {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        instances.push(Scenario::mcar(1.0).apply(&ds, cfg.seed ^ name as u64));
    }
    for name in [DatasetName::Climate, DatasetName::Electricity, DatasetName::Meteo] {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        let block = 100.min(ds.t_len() / 4);
        instances.push(Scenario::mcar(1.0).apply(&ds, cfg.seed ^ name as u64));
        instances.push(Scenario::Blackout { block_len: block }.apply(&ds, cfg.seed ^ name as u64));
    }
    // Reorder to the table's column layout: M5, Janata, Cl-MCAR, Cl-Blk, El-MCAR,
    // El-Blk, Me-MCAR, Me-Blk (already in that order).
    for m in methods {
        let imp = m.build(cfg.budget);
        let maes: Vec<f64> =
            instances.iter().map(|inst| run_method(imp.as_ref(), inst).mae).collect();
        t.push_values(&imp.name(), &maes);
    }
    t
}

// ======================================================================
// Figure 7 — module ablations
// ======================================================================

/// Regenerates Fig 7: MAE of the DeepMVI ablations (no temporal transformer, no
/// context window, no kernel regression) vs. the full model under MCAR sweeps on
/// AirQ, Climate and Electricity.
pub fn fig7_ablation(cfg: &ExpConfig, pct_points: &[f64]) -> Vec<Table> {
    let datasets = [DatasetName::AirQ, DatasetName::Climate, DatasetName::Electricity];
    let methods =
        [Method::DeepMviNoTt, Method::DeepMviNoContext, Method::DeepMviNoKr, Method::DeepMvi];
    let mut tables = Vec::new();
    for name in datasets {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        let mut t = Table::new(
            format!("Figure 7 ({}) — ablations, MAE", name.label()),
            &["x", "NoTemporalTr", "NoContextWin", "NoKernelReg", "DeepMVI"],
        );
        for &pct in pct_points {
            let inst = Scenario::mcar(pct).apply(&ds, cfg.seed);
            let results = run_all(&inst, &methods, cfg.budget);
            t.push_values(
                &format!("{:.0}%", pct * 100.0),
                &results.iter().map(|r| r.mae).collect::<Vec<_>>(),
            );
        }
        tables.push(t);
    }
    tables
}

// ======================================================================
// Figure 8 — fine-grained local signal vs. block size
// ======================================================================

/// Regenerates Fig 8: MAE vs. missing-block size (1..10, 10% missing) on Climate,
/// comparing CDRec, DeepMVI without the fine-grained signal, and full DeepMVI.
pub fn fig8_finegrained(cfg: &ExpConfig, block_sizes: &[usize]) -> Table {
    let ds = generate_scaled(DatasetName::Climate, cfg.scale, cfg.seed);
    let methods = [Method::CdRec, Method::DeepMviNoFg, Method::DeepMvi];
    let mut t = Table::new(
        "Figure 8 — fine-grained signal on Climate, MAE vs block size",
        &["block", "CDRec", "NoFineGrained", "FineGrained"],
    );
    for &b in block_sizes {
        let inst = Scenario::MissPoint { block_len: b, missing_rate: 0.1 }.apply(&ds, cfg.seed);
        let results = run_all(&inst, &methods, cfg.budget);
        t.push_values(&b.to_string(), &results.iter().map(|r| r.mae).collect::<Vec<_>>());
    }
    t
}

// ======================================================================
// Figure 9 — multidimensional kernel regression
// ======================================================================

/// Regenerates Fig 9: MAE on JanataHack MCAR sweeps, comparing the conventional
/// methods, flattened DeepMVI1D and full multidimensional DeepMVI.
pub fn fig9_multidim(cfg: &ExpConfig, pct_points: &[f64]) -> Table {
    let ds = generate_scaled(DatasetName::JanataHack, cfg.scale, cfg.seed);
    let methods = [
        Method::CdRec,
        Method::DynaMmo,
        Method::Trmf,
        Method::SvdImp,
        Method::DeepMvi1D,
        Method::DeepMvi,
    ];
    let mut t = Table::new(
        "Figure 9 — JanataHack MCAR, MAE",
        &["x", "CDRec", "DynaMMO", "TRMF", "SVDImp", "DeepMVI1D", "DeepMVI"],
    );
    for &pct in pct_points {
        let inst = Scenario::mcar(pct).apply(&ds, cfg.seed);
        let results = run_all(&inst, &methods, cfg.budget);
        t.push_values(
            &format!("{:.0}%", pct * 100.0),
            &results.iter().map(|r| r.mae).collect::<Vec<_>>(),
        );
    }
    t
}

// ======================================================================
// Figure 10 — runtime
// ======================================================================

/// Regenerates Fig 10a: absolute runtime (seconds) of each method per dataset
/// (MCAR, 100% of series incomplete), datasets ordered by total size.
pub fn fig10a_runtime(cfg: &ExpConfig) -> Table {
    let datasets = [
        DatasetName::AirQ,
        DatasetName::Climate,
        DatasetName::Meteo,
        DatasetName::Bafu,
        DatasetName::JanataHack,
    ];
    let methods = [
        Method::CdRec,
        Method::DynaMmo,
        Method::Trmf,
        Method::SvdImp,
        Method::Transformer,
        Method::DeepMvi,
    ];
    let mut t = Table::new(
        "Figure 10a — runtime (seconds), MCAR x=100%",
        &["dataset", "CDRec", "DynaMMO", "TRMF", "SVDImp", "Transformer", "DeepMVI"],
    );
    for name in datasets {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        let inst = Scenario::mcar(1.0).apply(&ds, cfg.seed ^ name as u64);
        let results = run_all(&inst, &methods, cfg.budget);
        t.push_values(name.label(), &results.iter().map(|r| r.secs).collect::<Vec<_>>());
    }
    t
}

/// Regenerates Fig 10b: DeepMVI runtime vs. series length (10 series, lengths
/// `lengths`), demonstrating sub-linear growth.
pub fn fig10b_scaling(cfg: &ExpConfig, lengths: &[usize]) -> Table {
    let mut t = Table::new(
        "Figure 10b — DeepMVI runtime vs series length (10 series)",
        &["length", "seconds", "mae"],
    );
    for (i, &len) in lengths.iter().enumerate() {
        // Use the dataset family the paper uses at each length tier.
        let name = match i {
            0 => DatasetName::AirQ,
            1 => DatasetName::Climate,
            2 => DatasetName::Meteo,
            _ => DatasetName::Bafu,
        };
        let ds = generate_with_shape(name, &[10], len, cfg.seed);
        let inst = Scenario::mcar(1.0).apply(&ds, cfg.seed);
        let r = run_method(Method::DeepMvi.build(cfg.budget).as_ref(), &inst);
        t.push_row(vec![len.to_string(), format!("{:.3}", r.secs), format!("{:.4}", r.mae)]);
    }
    t
}

// ======================================================================
// Figure 11 — downstream analytics
// ======================================================================

/// Regenerates Fig 11: `MAE(DropCell) − MAE(method)` on the dimension-averaged
/// aggregate series (positive = imputing beats dropping), for Climate,
/// Electricity, JanataHack and M5 under MCAR(100%).
pub fn fig11_analytics(cfg: &ExpConfig) -> Table {
    let datasets =
        [DatasetName::Climate, DatasetName::Electricity, DatasetName::JanataHack, DatasetName::M5];
    let methods =
        [Method::CdRec, Method::Brits, Method::GpVae, Method::Transformer, Method::DeepMvi];
    let mut t = Table::new(
        "Figure 11 — aggregate analytics: MAE(DropCell) - MAE(method)  (x1000)",
        &["dataset", "CDRec", "BRITS", "GPVAE", "Transformer", "DeepMVI"],
    );
    for name in datasets {
        let ds = generate_scaled(name, cfg.scale, cfg.seed);
        let inst = Scenario::mcar(1.0).apply(&ds, cfg.seed ^ name as u64);
        let gains: Vec<f64> = methods
            .iter()
            .map(|m| {
                let imp = m.build(cfg.budget);
                evaluate_analytics(imp.as_ref(), &inst).gain_over_dropcell() * 1000.0
            })
            .collect();
        t.push_values(name.label(), &gains);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_table(t: &Table) {
        assert!(!t.rows.is_empty(), "{} empty", t.title);
        for (r, row) in t.rows.iter().enumerate() {
            for c in 1..row.len() {
                if let Some(v) = t.value(r, c) {
                    assert!(v.is_finite(), "{} [{r},{c}] not finite", t.title);
                }
            }
        }
    }

    #[test]
    fn table1_lists_all_ten_datasets() {
        let t = table1_datasets(&ExpConfig::smoke());
        assert_eq!(t.rows.len(), 10);
        finite_table(&t);
    }

    #[test]
    fn table1_relatedness_ordering_matches_paper() {
        let t = table1_datasets(&ExpConfig { scale: 0.2, ..ExpConfig::smoke() });
        let rel = |label: &str| -> f64 {
            let row = t.rows.iter().position(|r| r[0] == label).unwrap();
            t.value(row, 5).unwrap()
        };
        // Table 1: Temperature "High" vs Climate "Low" relatedness.
        assert!(rel("Temp") > rel("Climate"), "{} vs {}", rel("Temp"), rel("Climate"));
        // Chlorine high, M5 low.
        assert!(rel("Chlorine") > rel("M5"));
    }

    #[test]
    fn fig8_smoke_produces_rows_per_block_size() {
        let t = fig8_finegrained(&ExpConfig::smoke(), &[1, 5]);
        assert_eq!(t.rows.len(), 2);
        finite_table(&t);
    }

    #[test]
    fn restrict_to_fraction_reduces_missing() {
        let ds = generate_scaled(DatasetName::AirQ, 0.1, 3);
        let full = Scenario::MissDisj.apply(&ds, 1);
        let full_count = full.missing.count();
        let half = restrict_to_fraction(full, 0.5);
        assert!(half.missing.count() < full_count);
        assert!(half.missing.count() > 0);
    }
}
