//! Running a method on an instance and collecting error + runtime.

use mvi_data::dataset::Instance;
use mvi_data::imputer::Imputer;
use mvi_data::metrics::{mae, rmse};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One method × instance measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Mean absolute error over the missing entries (the paper's metric).
    pub mae: f64,
    /// Root mean squared error over the missing entries.
    pub rmse: f64,
    /// Wall-clock seconds for the full `impute` call (training included for the
    /// learned methods, matching Fig 10's measurement).
    pub secs: f64,
}

/// Runs one imputer on one instance, returning error metrics and wall time.
pub fn run_method(imputer: &dyn Imputer, instance: &Instance) -> RunResult {
    let obs = instance.observed();
    let start = Instant::now();
    let imputed = imputer.impute(&obs);
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(imputed.shape(), instance.truth.values.shape(), "imputer changed the shape");
    RunResult {
        method: imputer.name(),
        mae: mae(&instance.truth.values, &imputed, &instance.missing),
        rmse: rmse(&instance.truth.values, &imputed, &instance.missing),
        secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::{LinearInterpImputer, MeanImputer};
    use mvi_data::scenarios::Scenario;

    #[test]
    fn run_method_reports_metrics_and_time() {
        let ds = generate_with_shape(DatasetName::AirQ, &[5], 200, 1);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let r = run_method(&MeanImputer, &inst);
        assert_eq!(r.method, "MeanImpute");
        assert!(r.mae > 0.0 && r.mae.is_finite());
        assert!(r.rmse >= r.mae);
        assert!(r.secs >= 0.0);
    }

    #[test]
    fn interp_beats_mean_on_smooth_series() {
        let ds = generate_with_shape(DatasetName::Bafu, &[4], 300, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let interp = run_method(&LinearInterpImputer, &inst);
        let mean = run_method(&MeanImputer, &inst);
        assert!(interp.mae < mean.mae, "{} vs {}", interp.mae, mean.mae);
    }
}
