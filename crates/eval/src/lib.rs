//! Experiment harness: uniform method registry, scenario runners, per-figure
//! experiment drivers (§5), downstream-analytics evaluation (§5.7) and plain-text /
//! CSV reporting.
//!
//! Every table and figure of the paper's evaluation section has a driver in
//! [`experiments`]; the binaries in `crates/bench` are thin wrappers that print the
//! resulting [`report::Table`]s. The same drivers run at reduced scale inside the
//! integration test suite, so the reproduction pipeline itself is under test.

pub mod analytics;
pub mod experiments;
pub mod harness;
pub mod methods;
pub mod report;

pub use harness::{run_method, RunResult};
pub use methods::{Method, MethodBudget};
pub use report::Table;
