//! Uniform registry of every imputation method in the workspace.

use deepmvi::{DeepMvi, DeepMviConfig, KernelMode};
use mvi_baselines::{CdRec, DynaMmo, SoftImpute, Stmvl, SvdImp, Svt, Trmf};
use mvi_data::imputer::{Imputer, LinearInterpImputer, MeanImputer};
use mvi_neural::{Brits, GpVae, Mrnn, VanillaTransformer};
use serde::{Deserialize, Serialize};

/// Training/size budget for the learned methods.
///
/// `Paper` uses each method's published defaults; `Quick` shrinks network sizes and
/// training budgets so a full figure regenerates in minutes on a laptop while
/// preserving the qualitative ordering (the benchmark binaries default to `Quick`
/// and take `--full` for the paper budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodBudget {
    /// Published default hyper-parameters.
    Paper,
    /// Reduced budgets for fast regeneration.
    Quick,
}

impl MethodBudget {
    /// DeepMVI configuration under this budget.
    pub fn deepmvi_config(&self) -> DeepMviConfig {
        match self {
            MethodBudget::Paper => DeepMviConfig::default(),
            MethodBudget::Quick => DeepMviConfig {
                p: 16,
                n_heads: 2,
                ctx_windows: 32,
                max_steps: 350,
                batch_size: 12,
                val_instances: 32,
                eval_every: 35,
                lr: 4e-3,
                ..DeepMviConfig::default()
            },
        }
    }
}

/// Every method the paper evaluates, plus the reference imputers and the DeepMVI
/// ablations of §5.5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// CDRec \[11\] — iterative centroid decomposition.
    CdRec,
    /// DynaMMO \[14\] — Kalman/EM over series groups.
    DynaMmo,
    /// TRMF \[28\] — AR-regularized matrix factorization.
    Trmf,
    /// SVDImp \[24\] — iterative truncated SVD.
    SvdImp,
    /// SoftImpute \[19\] — soft-thresholded SVD.
    SoftImpute,
    /// SVT \[2\] — singular value thresholding.
    Svt,
    /// STMVL — four-view spatio-temporal CF.
    Stmvl,
    /// BRITS \[4\] — bidirectional recurrent imputation.
    Brits,
    /// GP-VAE \[8\] — latent-path variational autoencoder (simplified).
    GpVae,
    /// MRNN \[27\] — multi-directional recurrent imputation (§2.4).
    Mrnn,
    /// Vanilla Transformer \[25\] with per-point tokens.
    Transformer,
    /// DeepMVI — the paper's method.
    DeepMvi,
    /// DeepMVI with the multidimensional index flattened (Fig 9).
    DeepMvi1D,
    /// DeepMVI without the temporal transformer (Fig 7).
    DeepMviNoTt,
    /// DeepMVI without contextual window keys (Fig 7).
    DeepMviNoContext,
    /// DeepMVI without kernel regression (Fig 7).
    DeepMviNoKr,
    /// DeepMVI without the fine-grained local signal (Fig 8).
    DeepMviNoFg,
    /// Per-series observed mean (reference floor).
    MeanImpute,
    /// Per-series linear interpolation (reference floor).
    LinearInterp,
}

impl Method {
    /// The conventional methods shown in Fig 5 / Fig 6.
    pub fn conventional_figure_set() -> Vec<Method> {
        vec![Method::CdRec, Method::DynaMmo, Method::Trmf, Method::SvdImp, Method::DeepMvi]
    }

    /// All seven conventional baselines (§5.1.3 plus the abstract's count).
    pub fn all_conventional() -> Vec<Method> {
        vec![
            Method::SvdImp,
            Method::SoftImpute,
            Method::Svt,
            Method::CdRec,
            Method::Trmf,
            Method::Stmvl,
            Method::DynaMmo,
        ]
    }

    /// The deep methods of Table 2.
    pub fn deep_table_set() -> Vec<Method> {
        vec![Method::Brits, Method::GpVae, Method::Transformer, Method::DeepMvi]
    }

    /// Instantiates the imputer under a budget.
    pub fn build(&self, budget: MethodBudget) -> Box<dyn Imputer> {
        let quick = budget == MethodBudget::Quick;
        match self {
            Method::CdRec => Box::new(CdRec::default()),
            Method::DynaMmo => Box::new(if quick {
                DynaMmo { em_iters: 5, ..Default::default() }
            } else {
                DynaMmo::default()
            }),
            Method::Trmf => Box::new(if quick {
                Trmf { iters: 5, ..Default::default() }
            } else {
                Trmf::default()
            }),
            Method::SvdImp => Box::new(SvdImp::default()),
            Method::SoftImpute => Box::new(SoftImpute::default()),
            Method::Svt => Box::new(Svt::default()),
            Method::Stmvl => Box::new(Stmvl::default()),
            Method::Brits => Box::new(if quick {
                Brits { hidden: 24, train_samples: 80, ..Default::default() }
            } else {
                Brits::default()
            }),
            Method::GpVae => Box::new(if quick {
                GpVae { train_samples: 80, ..Default::default() }
            } else {
                GpVae::default()
            }),
            Method::Mrnn => Box::new(if quick {
                Mrnn { train_samples: 60, ..Default::default() }
            } else {
                Mrnn::default()
            }),
            Method::Transformer => Box::new(if quick {
                VanillaTransformer {
                    d_model: 16,
                    context: 96,
                    train_samples: 120,
                    ..Default::default()
                }
            } else {
                VanillaTransformer::default()
            }),
            Method::DeepMvi => Box::new(DeepMvi::new(budget.deepmvi_config())),
            Method::DeepMvi1D => Box::new(DeepMvi::new(DeepMviConfig {
                kernel_mode: KernelMode::Flattened,
                ..budget.deepmvi_config()
            })),
            Method::DeepMviNoTt => Box::new(DeepMvi::new(DeepMviConfig {
                use_temporal_transformer: false,
                ..budget.deepmvi_config()
            })),
            Method::DeepMviNoContext => Box::new(DeepMvi::new(DeepMviConfig {
                use_context_window: false,
                ..budget.deepmvi_config()
            })),
            Method::DeepMviNoKr => Box::new(DeepMvi::new(DeepMviConfig {
                kernel_mode: KernelMode::Off,
                ..budget.deepmvi_config()
            })),
            Method::DeepMviNoFg => Box::new(DeepMvi::new(DeepMviConfig {
                use_fine_grained: false,
                ..budget.deepmvi_config()
            })),
            Method::MeanImpute => Box::new(MeanImputer),
            Method::LinearInterp => Box::new(LinearInterpImputer),
        }
    }

    /// Display label (matches the paper's figures).
    pub fn label(&self, budget: MethodBudget) -> String {
        self.build(budget).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_count_matches_abstract() {
        // "seven conventional and three deep learning methods"
        assert_eq!(Method::all_conventional().len(), 7);
        assert_eq!(Method::deep_table_set().len(), 4); // 3 baselines + DeepMVI
    }

    #[test]
    fn every_method_builds_under_both_budgets() {
        let all = [
            Method::CdRec,
            Method::DynaMmo,
            Method::Trmf,
            Method::SvdImp,
            Method::SoftImpute,
            Method::Svt,
            Method::Stmvl,
            Method::Brits,
            Method::GpVae,
            Method::Mrnn,
            Method::Transformer,
            Method::DeepMvi,
            Method::DeepMvi1D,
            Method::DeepMviNoTt,
            Method::DeepMviNoContext,
            Method::DeepMviNoKr,
            Method::DeepMviNoFg,
            Method::MeanImpute,
            Method::LinearInterp,
        ];
        for m in all {
            for b in [MethodBudget::Paper, MethodBudget::Quick] {
                let imp = m.build(b);
                assert!(!imp.name().is_empty());
            }
        }
    }

    #[test]
    fn ablation_names_are_distinct() {
        let names: Vec<String> = [
            Method::DeepMvi,
            Method::DeepMvi1D,
            Method::DeepMviNoTt,
            Method::DeepMviNoContext,
            Method::DeepMviNoKr,
            Method::DeepMviNoFg,
        ]
        .iter()
        .map(|m| m.label(MethodBudget::Quick))
        .collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "{names:?}");
    }
}
