//! Plain-text and CSV rendering of experiment results.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A titled table of strings — what every experiment driver produces.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table {
    /// Table/figure title (e.g. `"Figure 5 — MCAR"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch in '{}'", self.title);
        self.rows.push(row);
    }

    /// Convenience for numeric rows: a label followed by fixed-precision values.
    pub fn push_values(&mut self, label: &str, values: &[f64]) {
        let mut row = vec![label.to_string()];
        row.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(row);
    }

    /// Renders an aligned, boxed plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String| {
            let _ = write!(out, "+");
            for w in &widths {
                let _ = write!(out, "{}+", "-".repeat(w + 2));
            }
            let _ = writeln!(out);
        };
        line(&mut out);
        let _ = write!(out, "|");
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {h:w$} |");
        }
        let _ = writeln!(out);
        line(&mut out);
        for row in &self.rows {
            let _ = write!(out, "|");
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:w$} |");
            }
            let _ = writeln!(out);
        }
        line(&mut out);
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| quote(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Cell at `(row, col)` parsed as f64, if possible.
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.parse().ok()
    }

    /// Column index of a header.
    pub fn col(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["method", "MAE"]);
        t.push_values("CDRec", &[0.1234]);
        t.push_values("DeepMVI", &[0.05]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| CDRec"));
        assert!(s.contains("0.0500"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn value_parses_numeric_cells() {
        let mut t = Table::new("v", &["m", "x"]);
        t.push_values("a", &[1.5]);
        assert_eq!(t.value(0, 1), Some(1.5));
        assert_eq!(t.value(0, 0), None);
        assert_eq!(t.col("x"), Some(1));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_validated() {
        let mut t = Table::new("w", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
