//! Cache-blocked, register-tiled, parallel `f64` compute kernels.
//!
//! This crate is the workspace's performance layer: every dense matmul in the
//! repo — the baselines' factorization inner loops through `mvi_linalg::ops`
//! and the autograd matmul nodes behind DeepMVI's attention — lowers to the
//! slice-level kernels here. The design (see `PERFORMANCE.md`):
//!
//! * **Register tiling.** The GEMM core is a register-accumulator
//!   microkernel: each output tile accumulates in SIMD registers across the
//!   *entire* shared dimension and touches memory once, so the inner loop
//!   issues one `B` vector load plus a handful of `A` scalar loads per tile
//!   of FMAs, instead of the seed `ikj` loop's load+store of the `C` row on
//!   every k step. Two variants dispatch at runtime: a hand-written 8×16
//!   AVX-512 kernel (16 zmm accumulators) when the CPU supports it, else a
//!   portable [`MR`]×[`NR`] (4×8) kernel whose fixed-width unrolled loops
//!   autovectorize without fast-math (each accumulator is an independent
//!   chain).
//! * **Cache blocking.** Column tiles are the outer loop, so the active `B`
//!   panel (`k × NR` ≈ 16 KB at k = 256) stays L1-resident while the row
//!   tiles sweep over it; `A` rows stream sequentially.
//! * **Parallelism.** Above [`PAR_FLOPS_PER_THREAD`] of work, output rows are
//!   split into contiguous spans via `mvi_parallel` — each worker owns a
//!   disjoint `&mut` span of `C`, so the kernels stay safe Rust with no
//!   synchronization in the inner loops. Worker counts are capped at the
//!   machine's available (logical-CPU) parallelism — oversubscribing that
//!   only hurts here.
//!
//! All matmul kernels *accumulate* (`C += ...`) into a caller-provided
//! buffer, which lets callers fuse the zero-init or chain updates. Unlike the
//! seed kernels there is no `a == 0.0` skip: dense branch-free loops are
//! faster on the dense matrices these paths see, at the (accepted) cost that
//! a `0 × NaN` product now propagates instead of being skipped.

#![deny(unsafe_op_in_unsafe_fn)]

/// Output rows per register tile.
pub const MR: usize = 4;

/// Output columns per register tile of the portable kernel (MR·NR = 32 f64
/// accumulators — eight AVX2 vectors, leaving registers for the `B` row and
/// the broadcast `A` coefficients; measured faster than both a 6×8 tile and
/// 512-bit *autovectorized* codegen — the AVX-512 win needed the
/// hand-written microkernel in \[`avx512`\]).
pub const NR: usize = 8;

/// Minimum multiply-add flops of work per worker thread before the outer loop
/// parallelizes; below this, spawn overhead would dominate.
pub const PAR_FLOPS_PER_THREAD: usize = 1 << 21;

/// Worker count for a kernel invocation doing `flops` multiply-adds.
#[inline]
fn threads_for(flops: usize) -> usize {
    (flops / PAR_FLOPS_PER_THREAD).clamp(1, mvi_parallel::current_threads())
}

// ---------------------------------------------------------------------------
// GEMM: C += A · B
// ---------------------------------------------------------------------------

/// `C += A · B` for row-major `A: [m,k]`, `B: [k,n]`, `C: [m,n]`.
///
/// # Panics
/// Panics if a slice length does not match its shape.
pub fn matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "matmul: A buffer/shape mismatch");
    assert_eq!(b.len(), k * n, "matmul: B buffer/shape mismatch");
    assert_eq!(c.len(), m * n, "matmul: C buffer/shape mismatch");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let threads = threads_for(m * k * n);
    mvi_parallel::for_row_spans_mut(c, n, threads, |first_row, c_span| {
        let rows = c_span.len() / n;
        let a_span = &a[first_row * k..(first_row + rows) * k];
        serial_matmul_nn(rows, k, n, a_span, b, c_span);
    });
}

/// Serial register-tiled `C += A · B` on a row span (A addressed row-major,
/// coefficient of row `r`, step `kk` at `a[r·k + kk]`).
fn serial_matmul_nn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    serial_gemm(m, k, n, a, k, 1, b, c);
}

/// Tiled GEMM driver dispatch: `C_span += coeff · B` where the `A`
/// coefficient of (local row `r`, k-step `kk`) sits at
/// `a[r·a_row + kk·a_k]`. Uses the hand-written AVX-512 microkernel when the
/// CPU has it and the output is big enough to fill its 8×16 tile; otherwise
/// the portable autovectorized [`MR`]×[`NR`] path.
#[allow(clippy::too_many_arguments)]
fn serial_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_row: usize,
    a_k: usize,
    b: &[f64],
    c: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if m >= avx512::TM && n >= avx512::TN && is_x86_feature_detected!("avx512f") {
        return avx512::gemm_tiled(m, k, n, a, a_row, a_k, b, c);
    }
    serial_gemm_tiled(m, k, n, a, a_row, a_k, b, c)
}

/// The portable tiled driver. Column tiles run outermost so each `B` panel
/// (`k × NR`) stays L1-resident across every row tile; each [`MR`]×[`NR`]
/// output tile accumulates in registers over the *entire* k loop and touches
/// memory once.
#[allow(clippy::too_many_arguments)]
fn serial_gemm_tiled(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    a_row: usize,
    a_k: usize,
    b: &[f64],
    c: &mut [f64],
) {
    let jd = n - n % NR;
    let id = m - m % MR;
    let mut j = 0;
    while j < jd {
        let mut i = 0;
        while i < id {
            micro_tile::<MR>(k, a, i * a_row, a_row, a_k, b, j, n, c, i * n + j);
            i += MR;
        }
        j += NR;
    }
    gemm_tails(m, k, id, jd, n, a, a_row, a_k, b, c);
}

/// Shared remainder handling for the tiled drivers: row tail (`id..m`) over
/// the tiled columns `[0, jd)`, then column tail (`jd..n`) over every row,
/// both as fused-`axpy` row updates.
#[allow(clippy::too_many_arguments)]
fn gemm_tails(
    m: usize,
    k: usize,
    id: usize,
    jd: usize,
    n: usize,
    a: &[f64],
    a_row: usize,
    a_k: usize,
    b: &[f64],
    c: &mut [f64],
) {
    for i in id..m {
        for kk in 0..k {
            let x = a[i * a_row + kk * a_k];
            axpy(&mut c[i * n..i * n + jd], x, &b[kk * n..kk * n + jd]);
        }
    }
    if jd < n {
        for i in 0..m {
            for kk in 0..k {
                let x = a[i * a_row + kk * a_k];
                axpy(&mut c[i * n + jd..(i + 1) * n], x, &b[kk * n + jd..(kk + 1) * n]);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx512 {
    //! Runtime-dispatched AVX-512 GEMM tile path.
    //!
    //! The autovectorized [`super::micro_tile`] plateaus at ~57% of AVX2 FMA
    //! peak; this hand-written 8×16 microkernel (16 zmm accumulators, two
    //! `B` vector loads + eight broadcasts per 16 FMAs) roughly doubles the
    //! per-core ceiling on AVX-512 hardware. Only reached when
    //! `is_x86_feature_detected!("avx512f")` holds and the output tile fits.

    use core::arch::x86_64::{_mm512_fmadd_pd, _mm512_loadu_pd, _mm512_set1_pd, _mm512_storeu_pd};

    /// Tile rows of the AVX-512 microkernel.
    pub const TM: usize = 8;
    /// Tile columns of the AVX-512 microkernel (two zmm registers wide).
    pub const TN: usize = 16;

    /// Tiled driver with the same contract as [`super::serial_gemm_tiled`].
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_tiled(
        m: usize,
        k: usize,
        n: usize,
        a: &[f64],
        a_row: usize,
        a_k: usize,
        b: &[f64],
        c: &mut [f64],
    ) {
        let jd = n - n % TN;
        let id = m - m % TM;
        let mut j = 0;
        while j < jd {
            let mut i = 0;
            while i < id {
                // SAFETY: `avx512f` was detected by the caller; the index
                // invariants below hold by the loop bounds (see micro_8x16).
                unsafe { micro_8x16(k, a, i * a_row, a_row, a_k, b, j, n, c, i * n + j) };
                i += TM;
            }
            j += TN;
        }
        super::gemm_tails(m, k, id, jd, n, a, a_row, a_k, b, c);
    }

    /// 8×16 register-accumulator microkernel:
    /// `C[c_off + r·n + jj] += Σ_kk a[r·a_row + kk·a_k] · B[b_off + kk·n + jj]`
    /// for `r < 8`, `jj < 16`.
    ///
    /// # Safety
    /// Requires the `avx512f` target feature at runtime, and in-bounds
    /// access: `c_off + 7n + 16 ≤ c.len()`, `b_off + (ks-1)·n + 16 ≤
    /// b.len()`, `7·a_row + (ks-1)·a_k < a.len()`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f")]
    unsafe fn micro_8x16(
        ks: usize,
        a: &[f64],
        a_base: usize,
        a_row: usize,
        a_k: usize,
        b: &[f64],
        b_off: usize,
        n: usize,
        c: &mut [f64],
        c_off: usize,
    ) {
        debug_assert!(c_off + (TM - 1) * n + TN <= c.len());
        debug_assert!(ks == 0 || b_off + (ks - 1) * n + TN <= b.len());
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut lo = [_mm512_set1_pd(0.0); TM];
        let mut hi = [_mm512_set1_pd(0.0); TM];
        for r in 0..TM {
            // SAFETY: the caller's `c_off + (TM-1)·n + TN ≤ c.len()` bound
            // keeps both unaligned 8-lane loads of output row `r` in bounds.
            unsafe {
                lo[r] = _mm512_loadu_pd(cp.add(c_off + r * n));
                hi[r] = _mm512_loadu_pd(cp.add(c_off + r * n + 8));
            }
        }
        for kk in 0..ks {
            let bs = b_off + kk * n;
            // SAFETY: `kk < ks` and the caller's `b_off + (ks-1)·n + TN ≤
            // b.len()` bound keep this B-panel load in bounds.
            let b0 = unsafe { _mm512_loadu_pd(bp.add(bs)) };
            // SAFETY: `bs + 8 + 8` is within the same B-panel bound as above.
            let b1 = unsafe { _mm512_loadu_pd(bp.add(bs + 8)) };
            let ab = a_base + kk * a_k;
            for r in 0..TM {
                // SAFETY: the caller's `(TM-1)·a_row + (ks-1)·a_k < a.len()`
                // bound covers this scalar A load.
                let x = unsafe { _mm512_set1_pd(*ap.add(ab + r * a_row)) };
                lo[r] = _mm512_fmadd_pd(x, b0, lo[r]);
                hi[r] = _mm512_fmadd_pd(x, b1, hi[r]);
            }
        }
        for r in 0..TM {
            // SAFETY: same output-row bound as the accumulator loads above.
            unsafe {
                _mm512_storeu_pd(cp.add(c_off + r * n), lo[r]);
                _mm512_storeu_pd(cp.add(c_off + r * n + 8), hi[r]);
            }
        }
    }
}

/// The `R`×[`NR`] register-accumulator microkernel:
/// `C[c_off..][tile] += Σ_kk a(r, kk) · B[kk, b_off..b_off+NR]`.
///
/// The R·NR accumulators live in SIMD registers for the whole k loop — per k
/// step the kernel does R scalar `A` loads, one `NR`-wide `B` load, and R·NR
/// FMAs, with no stores; `C` is read and written exactly once. This is what
/// moves the kernel from store-port-bound (~12 GFLOP/s on an axpy-style
/// row update) toward FMA-bound.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro_tile<const R: usize>(
    ks: usize,
    a: &[f64],
    a_base: usize,
    a_row: usize,
    a_k: usize,
    b: &[f64],
    b_off: usize,
    n: usize,
    c: &mut [f64],
    c_off: usize,
) {
    let mut acc = [[0.0f64; NR]; R];
    for (r, row) in acc.iter_mut().enumerate() {
        let base = c_off + r * n;
        row.copy_from_slice(&c[base..base + NR]);
    }
    for kk in 0..ks {
        let bs = b_off + kk * n;
        let bv: &[f64; NR] = b[bs..bs + NR].try_into().expect("B tile width");
        let ab = a_base + kk * a_k;
        let mut x = [0.0f64; R];
        for (r, xv) in x.iter_mut().enumerate() {
            *xv = a[ab + r * a_row];
        }
        for r in 0..R {
            for jj in 0..NR {
                acc[r][jj] += x[r] * bv[jj];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let base = c_off + r * n;
        c[base..base + NR].copy_from_slice(row);
    }
}

// ---------------------------------------------------------------------------
// GEMM: C += Aᵀ · B
// ---------------------------------------------------------------------------

/// `C += Aᵀ · B` for row-major `A: [k,m]`, `B: [k,n]`, `C: [m,n]`, without
/// materializing `Aᵀ` (the `A` coefficient loads are column-strided).
pub fn matmul_tn(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), k * m, "matmul_tn: A buffer/shape mismatch");
    assert_eq!(b.len(), k * n, "matmul_tn: B buffer/shape mismatch");
    assert_eq!(c.len(), m * n, "matmul_tn: C buffer/shape mismatch");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let threads = threads_for(m * k * n);
    mvi_parallel::for_row_spans_mut(c, n, threads, |first_row, c_span| {
        let rows = c_span.len() / n;
        serial_matmul_tn(k, first_row, rows, m, n, a, b, c_span);
    });
}

/// Serial register-tiled `C_span += (Aᵀ B)[i0..i0+rows, :]` (`A: [k,m]`, so
/// the coefficient of local row `r`, step `kk` sits at `a[i0 + r + kk·m]` —
/// same tiled driver as the plain kernel with swapped strides).
#[allow(clippy::too_many_arguments)]
fn serial_matmul_tn(
    k: usize,
    i0: usize,
    rows: usize,
    m: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    serial_gemm(rows, k, n, &a[i0..], 1, m, b, c);
}

// ---------------------------------------------------------------------------
// GEMM: C += A · Bᵀ
// ---------------------------------------------------------------------------

/// Multiply-add flops above which `matmul_nt` packs `Bᵀ` into a scratch panel
/// and runs the register-accumulator NN microkernels instead of the 2×2
/// dot-product tile. The dot-product form cannot keep accumulators in SIMD
/// registers across `k` (each output needs a horizontal reduction), which
/// pinned it near ~10 GFLOP/s while `matmul`/`matmul_tn` ran 4× faster; the
/// O(k·n) transpose pack is noise against O(m·k·n) compute once shapes leave
/// toy territory. Below the threshold (or when the row count cannot fill a
/// tile) the pack + buffer would dominate, so the dot path stays.
pub const NT_PACK_FLOPS: usize = 1 << 15;

/// `C += A · Bᵀ` for row-major `A: [m,k]`, `B: [n,k]`, `C: [m,n]`.
///
/// Large shapes pack `Bᵀ` once ([`NT_PACK_FLOPS`]) and reuse the tiled NN
/// GEMM drivers — including the AVX-512 microkernel — so the backward-pass
/// matmuls that lower here (attention gradients) run at the same per-core
/// throughput as the forward kernels. Small shapes keep the pack-free
/// 2×2 dot tile. The path choice depends only on the shape, so results stay
/// deterministic and thread-count invariant.
pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "matmul_nt: A buffer/shape mismatch");
    assert_eq!(b.len(), n * k, "matmul_nt: B buffer/shape mismatch");
    assert_eq!(c.len(), m * n, "matmul_nt: C buffer/shape mismatch");
    if m == 0 || k == 0 || n == 0 {
        return;
    }
    let threads = threads_for(m * k * n);
    if m * k * n >= NT_PACK_FLOPS && m >= MR {
        let mut bt = vec![0.0; k * n];
        pack_transpose(n, k, b, &mut bt);
        mvi_parallel::for_row_spans_mut(c, n, threads, |first_row, c_span| {
            let rows = c_span.len() / n;
            let a_span = &a[first_row * k..(first_row + rows) * k];
            serial_matmul_nn(rows, k, n, a_span, &bt, c_span);
        });
        return;
    }
    mvi_parallel::for_row_spans_mut(c, n, threads, |first_row, c_span| {
        let rows = c_span.len() / n;
        let a_span = &a[first_row * k..(first_row + rows) * k];
        serial_matmul_nt(rows, k, n, a_span, b, c_span);
    });
}

/// Writes `Bᵀ` of a row-major `B: [n,k]` into `bt: [k,n]`
/// (`bt[kk·n + j] = b[j·k + kk]`), in 8×8 blocks so both sides stream through
/// cache lines instead of one of them striding.
fn pack_transpose(n: usize, k: usize, b: &[f64], bt: &mut [f64]) {
    const TB: usize = 8;
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TB).min(n);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + TB).min(k);
            for j in j0..j1 {
                for kk in k0..k1 {
                    bt[kk * n + j] = b[j * k + kk];
                }
            }
            k0 = k1;
        }
        j0 = j1;
    }
}

/// Serial 2×2-tiled `C += A · Bᵀ` on a row span: each 2×2 output tile shares
/// its two `A`-row and two `B`-row loads across four dot accumulators.
fn serial_matmul_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let mut i = 0;
    while i + 2 <= m {
        let (a0, a1) = (&a[i * k..(i + 1) * k], &a[(i + 1) * k..(i + 2) * k]);
        let block = &mut c[i * n..(i + 2) * n];
        let (c0, c1) = block.split_at_mut(n);
        let mut j = 0;
        while j + 2 <= n {
            let (b0, b1) = (&b[j * k..(j + 1) * k], &b[(j + 1) * k..(j + 2) * k]);
            let (mut s00, mut s01, mut s10, mut s11) = (0.0, 0.0, 0.0, 0.0);
            for kk in 0..k {
                let (x0, x1) = (a0[kk], a1[kk]);
                let (y0, y1) = (b0[kk], b1[kk]);
                s00 += x0 * y0;
                s01 += x0 * y1;
                s10 += x1 * y0;
                s11 += x1 * y1;
            }
            c0[j] += s00;
            c0[j + 1] += s01;
            c1[j] += s10;
            c1[j + 1] += s11;
            j += 2;
        }
        if j < n {
            let brow = &b[j * k..(j + 1) * k];
            c0[j] += dot(a0, brow);
            c1[j] += dot(a1, brow);
        }
        i += 2;
    }
    if i < m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv += dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

// ---------------------------------------------------------------------------
// Fused vector primitives
// ---------------------------------------------------------------------------

/// Dot product with four independent partial sums (breaks the reduction
/// dependence chain so the loop can use SIMD/ILP without fast-math).
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let n4 = a.len() / 4 * 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < n4 {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < a.len() {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Fused `y += alpha · x`.
///
/// # Panics
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `y *= alpha`.
pub fn scale(y: &mut [f64], alpha: f64) {
    for yv in y.iter_mut() {
        *yv *= alpha;
    }
}

/// `y += x` elementwise.
///
/// # Panics
/// Panics if the lengths differ.
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    assert_eq!(y.len(), x.len(), "add_assign length mismatch");
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

/// Squared Euclidean norm (4-way unrolled like [`dot`]).
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

// ---------------------------------------------------------------------------
// Reference kernels (correctness oracle + benchmark baseline)
// ---------------------------------------------------------------------------

pub mod reference {
    //! The seed's naive kernels, kept verbatim as the correctness oracle for
    //! property tests and the baseline the bench harness measures speedups
    //! against. Not used on any hot path.

    /// The seed's single-threaded `ikj` matmul (`C += A · B`), including its
    /// original `a == 0.0` skip.
    pub fn matmul_ikj(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
    }

    /// Naive `C += Aᵀ · B` (`A: [k,m]`).
    pub fn matmul_tn(k: usize, m: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        for kk in 0..k {
            for i in 0..m {
                let x = a[kk * m + i];
                for j in 0..n {
                    c[i * n + j] += x * b[kk * n + j];
                }
            }
        }
    }

    /// Naive `C += A · Bᵀ` (`B: [n,k]`).
    pub fn matmul_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[j * k + kk];
                }
                c[i * n + j] += s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
                ((h >> 32) % 2000) as f64 / 500.0 - 2.0
            })
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let tol = 1e-9 * (1.0 + x.abs().max(y.abs()));
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    /// Shapes that stress tile remainders: below/at/above MR and KC edges.
    const EDGE_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 2),
        (4, 4, 4),
        (5, 257, 3),
        (8, 256, 8),
        (9, 255, 7),
        (17, 300, 13),
        (33, 64, 31),
        // Above the AVX-512 8×16 tile with remainders in both dimensions.
        (41, 300, 43),
    ];

    #[test]
    fn matmul_matches_reference_on_edge_shapes() {
        for &(m, k, n) in EDGE_SHAPES {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul(m, k, n, &a, &b, &mut c);
            reference::matmul_ikj(m, k, n, &a, &b, &mut c_ref);
            assert_close(&c, &c_ref, &format!("matmul {m}x{k}x{n}"));
        }
    }

    #[test]
    fn matmul_tn_matches_reference_on_edge_shapes() {
        for &(m, k, n) in EDGE_SHAPES {
            let a = pseudo(k * m, 3);
            let b = pseudo(k * n, 4);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul_tn(k, m, n, &a, &b, &mut c);
            reference::matmul_tn(k, m, n, &a, &b, &mut c_ref);
            assert_close(&c, &c_ref, &format!("matmul_tn {m}x{k}x{n}"));
        }
    }

    #[test]
    fn matmul_nt_matches_reference_on_edge_shapes() {
        for &(m, k, n) in EDGE_SHAPES {
            let a = pseudo(m * k, 5);
            let b = pseudo(n * k, 6);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul_nt(m, k, n, &a, &b, &mut c);
            reference::matmul_nt(m, k, n, &a, &b, &mut c_ref);
            assert_close(&c, &c_ref, &format!("matmul_nt {m}x{k}x{n}"));
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        for (m, k, n) in [(0, 3, 4), (3, 0, 4), (3, 4, 0), (0, 0, 0)] {
            let a = pseudo(m * k, 7);
            let b = pseudo(k * n, 8);
            let mut c = vec![0.0; m * n];
            matmul(m, k, n, &a, &b, &mut c);
            assert!(c.iter().all(|&x| x == 0.0));
            let a_t = pseudo(k * m, 7);
            matmul_tn(k, m, n, &a_t, &b, &mut c);
            assert!(c.iter().all(|&x| x == 0.0));
            let b_t = pseudo(n * k, 8);
            matmul_nt(m, k, n, &a, &b_t, &mut c);
            assert!(c.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn accumulation_semantics() {
        let (m, k, n) = (3, 4, 5);
        let a = pseudo(m * k, 9);
        let b = pseudo(k * n, 10);
        let mut c = vec![1.0; m * n];
        let mut fresh = vec![0.0; m * n];
        matmul(m, k, n, &a, &b, &mut c);
        matmul(m, k, n, &a, &b, &mut fresh);
        for (cv, fv) in c.iter().zip(&fresh) {
            assert!((cv - (fv + 1.0)).abs() < 1e-12, "matmul must accumulate into C");
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough that threads_for() > 1 on any multicore machine.
        let (m, k, n) = (192, 160, 144);
        let a = pseudo(m * k, 11);
        let b = pseudo(k * n, 12);
        let mut c_par = vec![0.0; m * n];
        matmul(m, k, n, &a, &b, &mut c_par);
        let mut c_ser = vec![0.0; m * n];
        serial_matmul_nn(m, k, n, &a, &b, &mut c_ser);
        assert_eq!(c_par, c_ser, "parallel split changed results");
    }

    #[test]
    fn vector_primitives() {
        let a = pseudo(1003, 13);
        let b = pseudo(1003, 14);
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9 * (1.0 + naive.abs()));
        assert!((norm2_sq(&a) - dot(&a, &a)).abs() < 1e-12);

        let mut y = b.clone();
        axpy(&mut y, 0.5, &a);
        for ((yv, bv), av) in y.iter().zip(&b).zip(&a) {
            assert!((yv - (bv + 0.5 * av)).abs() < 1e-12);
        }
        scale(&mut y, 2.0);
        add_assign(&mut y, &a);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_blocked_matmul_matches_reference(
            m in 1usize..24, k in 1usize..40, n in 1usize..24, seed in 0u64..1000
        ) {
            let a = pseudo(m * k, seed);
            let b = pseudo(k * n, seed ^ 0xABCD);
            let mut c = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul(m, k, n, &a, &b, &mut c);
            reference::matmul_ikj(m, k, n, &a, &b, &mut c_ref);
            for (x, y) in c.iter().zip(&c_ref) {
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{} vs {}", x, y);
            }
        }

        #[test]
        fn prop_transposed_kernels_agree_with_plain(
            m in 1usize..16, k in 1usize..32, n in 1usize..16, seed in 0u64..1000
        ) {
            let a = pseudo(m * k, seed.wrapping_add(1));
            let b = pseudo(k * n, seed.wrapping_add(2));
            // Materialize Aᵀ ([k,m]) and Bᵀ ([n,k]) by hand.
            let mut a_t = vec![0.0; m * k];
            for i in 0..m {
                for kk in 0..k {
                    a_t[kk * m + i] = a[i * k + kk];
                }
            }
            let mut b_t = vec![0.0; k * n];
            for kk in 0..k {
                for j in 0..n {
                    b_t[j * k + kk] = b[kk * n + j];
                }
            }
            let mut c = vec![0.0; m * n];
            matmul(m, k, n, &a, &b, &mut c);
            let mut c_tn = vec![0.0; m * n];
            matmul_tn(k, m, n, &a_t, &b, &mut c_tn);
            let mut c_nt = vec![0.0; m * n];
            matmul_nt(m, k, n, &a, &b_t, &mut c_nt);
            for ((x, y), z) in c.iter().zip(&c_tn).zip(&c_nt) {
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "tn: {} vs {}", x, y);
                prop_assert!((x - z).abs() <= 1e-9 * (1.0 + x.abs()), "nt: {} vs {}", x, z);
            }
        }
    }
}
