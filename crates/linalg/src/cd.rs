//! Centroid decomposition (CD) with the greedy sign-vector search.
//!
//! CDRec \[11\] recovers missing blocks by iterating a truncated *centroid
//! decomposition* `X ≈ L · Rᵀ`. Each component is found by searching for the sign
//! vector `z ∈ {−1, +1}^m` that maximizes `‖Xᵀ z‖`; the centroid direction is then
//! `r = Xᵀ z / ‖Xᵀ z‖` and the loading `l = X r`, after which the rank-one term is
//! subtracted and the search repeats. The sign-vector search below is the standard
//! greedy flipping scheme (start from all-ones, flip the single sign that most
//! increases `‖Xᵀ z‖²`, repeat until no improvement), which is the Scalable Sign
//! Vector strategy of the CDRec line of work.

use crate::ops::{matvec_t, norm2, rank1_update};
use mvi_tensor::Tensor;

/// Result of a rank-`k` centroid decomposition `X ≈ L · Rᵀ`.
#[derive(Clone, Debug)]
pub struct CentroidDecomposition {
    /// Loading matrix `[m, k]`.
    pub l: Tensor,
    /// Relevance (centroid direction) matrix `[n, k]` with unit-norm columns.
    pub r: Tensor,
}

impl CentroidDecomposition {
    /// Reconstructs `L · Rᵀ`.
    pub fn reconstruct(&self) -> Tensor {
        crate::ops::matmul_nt(&self.l, &self.r)
    }
}

/// Greedy search for the sign vector maximizing `‖Xᵀ z‖²`.
///
/// Returns the sign vector (entries ±1). Runs in `O(sweeps · m · n)`.
pub fn sign_vector(x: &Tensor) -> Vec<f64> {
    let m = x.rows();
    let mut z = vec![1.0f64; m];
    // v = Xᵀ z, maintained incrementally as signs flip.
    let mut v = matvec_t(x, &z);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut best_gain = 0.0f64;
        let mut best_i = None;
        for i in 0..m {
            // Flipping z_i changes v by -2 z_i x_i (x_i = row i of X).
            // Gain = ‖v - 2 z_i x_i‖² - ‖v‖² = -4 z_i (v·x_i) + 4 ‖x_i‖².
            let xi = x.row(i);
            let vdot: f64 = v.iter().zip(xi).map(|(&a, &b)| a * b).sum();
            let xnorm2: f64 = xi.iter().map(|&a| a * a).sum();
            let gain = -4.0 * z[i] * vdot + 4.0 * xnorm2;
            if gain > best_gain + 1e-12 {
                best_gain = gain;
                best_i = Some(i);
            }
        }
        match best_i {
            Some(i) => {
                let coeff = -2.0 * z[i];
                for (vj, &xij) in v.iter_mut().zip(x.row(i)) {
                    *vj += coeff * xij;
                }
                z[i] = -z[i];
            }
            None => break,
        }
    }
    z
}

/// Rank-`k` centroid decomposition of `x` (`[m, n]`).
///
/// # Panics
/// Panics if `k > min(m, n)`.
pub fn centroid_decomposition(x: &Tensor, k: usize) -> CentroidDecomposition {
    let (m, n) = (x.rows(), x.cols());
    assert!(k <= m.min(n), "rank {k} exceeds min dimension of {m}x{n}");
    let mut work = x.clone();
    let mut l = Tensor::zeros(&[m, k]);
    let mut r = Tensor::zeros(&[n, k]);
    for comp in 0..k {
        let z = sign_vector(&work);
        let c = matvec_t(&work, &z);
        let cnorm = norm2(&c);
        if cnorm < 1e-12 {
            break; // residual is (numerically) zero: lower-rank matrix
        }
        let rcol: Vec<f64> = c.iter().map(|&v| v / cnorm).collect();
        let lcol = crate::ops::matvec(&work, &rcol);
        for i in 0..m {
            l.set_m(i, comp, lcol[i]);
        }
        for j in 0..n {
            r.set_m(j, comp, rcol[j]);
        }
        rank1_update(&mut work, -1.0, &lcol, &rcol);
    }
    CentroidDecomposition { l, r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn pseudo_random(m: usize, n: usize, seed: u64) -> Tensor {
        Tensor::from_fn(&[m, n], |idx| {
            let h = (idx[0] as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((idx[1] as u64).wrapping_mul(0xD1B54A32D192ED03))
                .wrapping_add(seed);
            ((h >> 32) % 1000) as f64 / 100.0 - 5.0
        })
    }

    #[test]
    fn sign_vector_maximizes_locally() {
        let x = pseudo_random(5, 8, 2);
        let z = sign_vector(&x);
        assert!(z.iter().all(|&v| v == 1.0 || v == -1.0));
        let base = norm2(&matvec_t(&x, &z));
        // No single flip should improve the objective.
        for i in 0..5 {
            let mut zf = z.clone();
            zf[i] = -zf[i];
            let flipped = norm2(&matvec_t(&x, &zf));
            assert!(flipped <= base + 1e-9, "flip {i} improved {base} -> {flipped}");
        }
    }

    #[test]
    fn full_rank_cd_reconstructs() {
        let x = pseudo_random(4, 6, 7);
        let cd = centroid_decomposition(&x, 4);
        let rec = cd.reconstruct();
        for (a, b) in rec.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn r_columns_are_unit_norm() {
        let x = pseudo_random(6, 5, 13);
        let cd = centroid_decomposition(&x, 3);
        for k in 0..3 {
            let norm: f64 = (0..5).map(|j| cd.r.m(j, k).powi(2)).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn truncated_cd_reduces_residual_monotonically() {
        let x = pseudo_random(6, 10, 29);
        let mut last = f64::INFINITY;
        for k in 1..=4 {
            let cd = centroid_decomposition(&x, k);
            let rec = cd.reconstruct();
            let resid = x.zip_map(&rec, |a, b| a - b).frobenius_norm();
            assert!(resid <= last + 1e-9, "rank {k}: {resid} > {last}");
            last = resid;
        }
    }

    #[test]
    fn rank_one_matrix_recovered_by_one_component() {
        let u = [1.0, -2.0, 0.5];
        let v = [3.0, 1.0, -1.0, 2.0];
        let x = Tensor::from_fn(&[3, 4], |idx| u[idx[0]] * v[idx[1]]);
        let cd = centroid_decomposition(&x, 1);
        let rec = cd.reconstruct();
        for (a, b) in rec.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_cd_never_increases_residual_with_rank(
            m in 2usize..6, n in 2usize..8, seed in 0u64..40
        ) {
            let x = pseudo_random(m, n, seed);
            let kmax = m.min(n);
            let full = centroid_decomposition(&x, kmax).reconstruct();
            // Full-rank CD reconstructs X (CD is an exact decomposition at full rank).
            for (a, b) in full.data().iter().zip(x.data()) {
                prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
            }
        }
    }
}
