//! Dense linear-algebra kernels for the imputation baselines.
//!
//! Everything operates on rank-2 [`mvi_tensor::Tensor`]s ("matrices"). No external
//! BLAS/LAPACK: the decompositions the baselines need are implemented here from
//! scratch and validated by property-based tests against their defining identities.
//!
//! * [`ops`] — matmul (plain / transposed variants), matvec, transpose, identity,
//!   vector helpers.
//! * [`qr`](mod@qr) — Householder QR.
//! * [`svd`](mod@svd) — one-sided Jacobi singular value decomposition (used by SVDImp \[24\],
//!   SoftImpute \[19\] and SVT \[2\]).
//! * [`solve`] — Cholesky and partially-pivoted LU solves (used by TRMF's ridge
//!   regressions and DynaMMO's Kalman/EM updates).
//! * [`cd`] — the centroid decomposition with the greedy sign-vector search used by
//!   CDRec \[11\].

pub mod cd;
pub mod ops;
pub mod qr;
pub mod solve;
pub mod svd;

pub use cd::centroid_decomposition;
pub use ops::{identity, matmul, matmul_nt, matmul_tn, matvec, transpose};
pub use qr::qr;
pub use solve::{cholesky, lu_solve, solve_spd};
pub use svd::{svd, Svd};
