//! Basic dense matrix/vector operations.
//!
//! The matmul kernels use the cache-friendly `ikj` loop order; per the workspace
//! performance guide this is within a small factor of a tuned BLAS for the modest
//! matrix sizes the baselines need (series-count × rank, rank × rank).

use mvi_tensor::Tensor;

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`.
///
/// # Panics
/// Panics on rank or inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let crow = &mut cd[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aik * bv;
            }
        }
    }
    c
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_tn inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    let (ad, bd) = (a.data(), b.data());
    let cd = c.data_mut();
    for kk in 0..k {
        let arow = &ad[kk * m..(kk + 1) * m];
        let brow = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aki * bv;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_nt inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let dot: f64 = arow.iter().zip(brow).map(|(&x, &y)| x * y).sum();
            c.set_m(i, j, dot);
        }
    }
    c
}

/// `y = A · x` for `A: [m,n]`, `x: [n]`.
pub fn matvec(a: &Tensor, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(n, x.len(), "matvec dims: {n} vs {}", x.len());
    (0..m)
        .map(|i| a.row(i).iter().zip(x).map(|(&aij, &xj)| aij * xj).sum())
        .collect()
}

/// `y = Aᵀ · x` for `A: [m,n]`, `x: [m]`.
pub fn matvec_t(a: &Tensor, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(m, x.len(), "matvec_t dims: {m} vs {}", x.len());
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        for (yj, &aij) in y.iter_mut().zip(a.row(i)) {
            *yj += aij * xi;
        }
    }
    y
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut t = Tensor::zeros(&[n, m]);
    for i in 0..m {
        for (j, &v) in a.row(i).iter().enumerate() {
            t.set_m(j, i, v);
        }
    }
    t
}

/// The `n × n` identity matrix.
pub fn identity(n: usize) -> Tensor {
    let mut i = Tensor::zeros(&[n, n]);
    for d in 0..n {
        i.set_m(d, d, 1.0);
    }
    i
}

/// Euclidean dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Outer-product update `A -= alpha * u vᵀ` for `A: [m,n]`, `u: [m]`, `v: [n]`.
pub fn rank1_update(a: &mut Tensor, alpha: f64, u: &[f64], v: &[f64]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(m, u.len());
    assert_eq!(n, v.len());
    for (i, &ui) in u.iter().enumerate() {
        let coeff = alpha * ui;
        if coeff == 0.0 {
            continue;
        }
        for (av, &vj) in a.row_mut(i).iter_mut().zip(v) {
            *av += coeff * vj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t2(rows: usize, cols: usize, vals: &[f64]) -> Tensor {
        Tensor::from_vec(vec![rows, cols], vals.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t2(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(matmul(&a, &identity(3)), a);
        assert_eq!(matmul(&identity(3), &a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t2(2, 3, &[1.0, -1.0, 2.0, 0.5, 3.0, -2.0]);
        let x = [2.0, 1.0, -1.0];
        let y = matvec(&a, &x);
        assert_eq!(y, vec![-1.0, 6.0]);
        // Aᵀy computed directly must match matvec on the materialized transpose.
        let yt = matvec_t(&a, &y);
        let yt_ref = matvec(&transpose(&a), &y);
        assert_eq!(yt, yt_ref);
    }

    #[test]
    fn rank1_update_subtracts_outer_product() {
        let mut a = identity(2);
        rank1_update(&mut a, -1.0, &[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(a.m(0, 0), 0.0);
        assert_eq!(a.m(1, 1), 1.0);
    }

    proptest! {
        #[test]
        fn prop_transposed_variants_agree(
            m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..50
        ) {
            let a = Tensor::from_fn(&[m, k], |idx| ((idx[0] * 3 + idx[1] * 7 + seed as usize) % 11) as f64 - 5.0);
            let b = Tensor::from_fn(&[k, n], |idx| ((idx[0] * 5 + idx[1] * 2 + seed as usize) % 13) as f64 - 6.0);
            let c = matmul(&a, &b);
            let c_tn = matmul_tn(&transpose(&a), &b);
            let c_nt = matmul_nt(&a, &transpose(&b));
            for (x, y) in c.data().iter().zip(c_tn.data()) {
                prop_assert!((x - y).abs() < 1e-10);
            }
            for (x, y) in c.data().iter().zip(c_nt.data()) {
                prop_assert!((x - y).abs() < 1e-10);
            }
        }

        #[test]
        fn prop_transpose_involution(m in 1usize..8, n in 1usize..8) {
            let a = Tensor::from_fn(&[m, n], |idx| (idx[0] * n + idx[1]) as f64);
            prop_assert_eq!(transpose(&transpose(&a)), a);
        }

        #[test]
        fn prop_matmul_associative(
            m in 1usize..4, k in 1usize..4, l in 1usize..4, n in 1usize..4
        ) {
            let a = Tensor::from_fn(&[m, k], |idx| (1 + idx[0] + 2 * idx[1]) as f64);
            let b = Tensor::from_fn(&[k, l], |idx| (1.0 + idx[0] as f64 - idx[1] as f64));
            let c = Tensor::from_fn(&[l, n], |idx| (idx[0] * 2 + idx[1]) as f64);
            let left = matmul(&matmul(&a, &b), &c);
            let right = matmul(&a, &matmul(&b, &c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
