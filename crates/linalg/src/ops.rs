//! Basic dense matrix/vector operations.
//!
//! Since the kernel-layer refactor these are thin shape-checking wrappers over
//! [`mvi_kernels`]: the matmul variants lower to the cache-blocked,
//! register-tiled, parallel GEMM kernels, and the vector helpers to the fused
//! `dot`/`axpy` primitives. Signatures are unchanged, so every baseline and
//! autograd node picks the fast path up transparently. See `PERFORMANCE.md`
//! for the kernel design and measured throughput.

use mvi_kernels as kern;
use mvi_tensor::Tensor;

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`.
///
/// # Panics
/// Panics on rank or inner-dimension mismatch.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    kern::matmul(m, k, n, a.data(), b.data(), c.data_mut());
    c
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` without materializing `Aᵀ`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_tn inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    kern::matmul_tn(k, m, n, a.data(), b.data(), c.data_mut());
    c
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` without materializing `Bᵀ`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_nt inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    kern::matmul_nt(m, k, n, a.data(), b.data(), c.data_mut());
    c
}

/// `y = A · x` for `A: [m,n]`, `x: [n]`.
pub fn matvec(a: &Tensor, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(n, x.len(), "matvec dims: {n} vs {}", x.len());
    (0..m).map(|i| kern::dot(a.row(i), x)).collect()
}

/// `y = Aᵀ · x` for `A: [m,n]`, `x: [m]`.
pub fn matvec_t(a: &Tensor, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(m, x.len(), "matvec_t dims: {m} vs {}", x.len());
    let mut y = vec![0.0; n];
    for (i, &xi) in x.iter().enumerate() {
        if xi == 0.0 {
            continue;
        }
        kern::axpy(&mut y, xi, a.row(i));
    }
    y
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut t = Tensor::zeros(&[n, m]);
    for i in 0..m {
        for (j, &v) in a.row(i).iter().enumerate() {
            t.set_m(j, i, v);
        }
    }
    t
}

/// The `n × n` identity matrix.
pub fn identity(n: usize) -> Tensor {
    let mut i = Tensor::zeros(&[n, n]);
    for d in 0..n {
        i.set_m(d, d, 1.0);
    }
    i
}

/// Euclidean dot product of two equal-length slices (4-way unrolled kernel).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kern::dot(a, b)
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    kern::norm2_sq(a).sqrt()
}

/// Outer-product update `A += alpha * u vᵀ` for `A: [m,n]`, `u: [m]`, `v: [n]`.
pub fn rank1_update(a: &mut Tensor, alpha: f64, u: &[f64], v: &[f64]) {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(m, u.len());
    assert_eq!(n, v.len());
    for (i, &ui) in u.iter().enumerate() {
        let coeff = alpha * ui;
        if coeff == 0.0 {
            continue;
        }
        kern::axpy(a.row_mut(i), coeff, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t2(rows: usize, cols: usize, vals: &[f64]) -> Tensor {
        Tensor::from_vec(vec![rows, cols], vals.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = t2(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t2(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t2(3, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert_eq!(matmul(&a, &identity(3)), a);
        assert_eq!(matmul(&identity(3), &a), a);
    }

    #[test]
    fn matmul_empty_dims() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert_eq!(matmul(&a, &b).shape(), &[0, 2]);
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = t2(2, 3, &[1.0, -1.0, 2.0, 0.5, 3.0, -2.0]);
        let x = [2.0, 1.0, -1.0];
        let y = matvec(&a, &x);
        assert_eq!(y, vec![-1.0, 6.0]);
        // Aᵀy computed directly must match matvec on the materialized transpose.
        let yt = matvec_t(&a, &y);
        let yt_ref = matvec(&transpose(&a), &y);
        assert_eq!(yt, yt_ref);
    }

    #[test]
    fn rank1_update_subtracts_outer_product() {
        let mut a = identity(2);
        rank1_update(&mut a, -1.0, &[1.0, 0.0], &[1.0, 0.0]);
        assert_eq!(a.m(0, 0), 0.0);
        assert_eq!(a.m(1, 1), 1.0);
    }

    proptest! {
        #[test]
        fn prop_transposed_variants_agree(
            m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..50
        ) {
            let a = Tensor::from_fn(&[m, k], |idx| ((idx[0] * 3 + idx[1] * 7 + seed as usize) % 11) as f64 - 5.0);
            let b = Tensor::from_fn(&[k, n], |idx| ((idx[0] * 5 + idx[1] * 2 + seed as usize) % 13) as f64 - 6.0);
            let c = matmul(&a, &b);
            let c_tn = matmul_tn(&transpose(&a), &b);
            let c_nt = matmul_nt(&a, &transpose(&b));
            for (x, y) in c.data().iter().zip(c_tn.data()) {
                prop_assert!((x - y).abs() < 1e-10);
            }
            for (x, y) in c.data().iter().zip(c_nt.data()) {
                prop_assert!((x - y).abs() < 1e-10);
            }
        }

        #[test]
        fn prop_transpose_involution(m in 1usize..8, n in 1usize..8) {
            let a = Tensor::from_fn(&[m, n], |idx| (idx[0] * n + idx[1]) as f64);
            prop_assert_eq!(transpose(&transpose(&a)), a);
        }

        #[test]
        fn prop_matmul_associative(
            m in 1usize..4, k in 1usize..4, l in 1usize..4, n in 1usize..4
        ) {
            let a = Tensor::from_fn(&[m, k], |idx| (1 + idx[0] + 2 * idx[1]) as f64);
            let b = Tensor::from_fn(&[k, l], |idx| 1.0 + idx[0] as f64 - idx[1] as f64);
            let c = Tensor::from_fn(&[l, n], |idx| (idx[0] * 2 + idx[1]) as f64);
            let left = matmul(&matmul(&a, &b), &c);
            let right = matmul(&a, &matmul(&b, &c));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        // Kernel-layer contract: the blocked/parallel kernels must agree with
        // the seed's naive ikj reference on random shapes, including
        // non-multiple-of-tile edge sizes (the tile width is 4, the k-panel 256).
        #[test]
        fn prop_blocked_kernels_match_naive_reference(
            m in 1usize..12, k in 1usize..20, n in 1usize..12, seed in 0u64..200
        ) {
            let a = Tensor::from_fn(&[m, k], |idx| {
                ((idx[0] * 13 + idx[1] * 3 + seed as usize) % 17) as f64 / 4.0 - 2.0
            });
            let b = Tensor::from_fn(&[k, n], |idx| {
                ((idx[0] * 7 + idx[1] * 11 + seed as usize) % 19) as f64 / 4.0 - 2.0
            });
            let fast = matmul(&a, &b);
            let mut c_ref = Tensor::zeros(&[m, n]);
            mvi_kernels::reference::matmul_ikj(m, k, n, a.data(), b.data(), c_ref.data_mut());
            for (x, y) in fast.data().iter().zip(c_ref.data()) {
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{} vs {}", x, y);
            }
        }
    }
}
