//! Householder QR decomposition.

use crate::ops::identity;
use mvi_tensor::Tensor;

/// Thin QR decomposition `A = Q · R` of an `m × n` matrix with `m ≥ n`.
///
/// Returns `(Q: [m,n], R: [n,n])` with orthonormal `Q` columns and upper-triangular
/// `R`. Uses Householder reflections accumulated into `Q`.
///
/// # Panics
/// Panics if `m < n`.
pub fn qr(a: &Tensor) -> (Tensor, Tensor) {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "thin QR needs m >= n, got {m} x {n}");
    let mut r = a.clone();
    // Q starts as the m×m identity restricted later to the first n columns; we keep it
    // m×m during accumulation for simplicity (m is small in all our uses).
    let mut q = identity(m);

    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut v = vec![0.0; m - k];
        for i in k..m {
            v[i - k] = r.m(i, k);
        }
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if alpha == 0.0 {
            continue; // column already zero below (and at) the diagonal
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < f64::EPSILON {
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to R (rows k..m) and accumulate into Q.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r.m(i, j)).sum();
            let coeff = 2.0 * dot / vnorm2;
            for i in k..m {
                let val = r.m(i, j) - coeff * v[i - k];
                r.set_m(i, j, val);
            }
        }
        for j in 0..m {
            let dot: f64 = (k..m).map(|i| v[i - k] * q.m(j, i)).sum();
            let coeff = 2.0 * dot / vnorm2;
            for i in k..m {
                let val = q.m(j, i) - coeff * v[i - k];
                q.set_m(j, i, val);
            }
        }
    }

    // Thin factors: first n columns of Q, first n rows of R (zeroing round-off below
    // the diagonal).
    let mut q_thin = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            q_thin.set_m(i, j, q.m(i, j));
        }
    }
    let mut r_thin = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in i..n {
            r_thin.set_m(i, j, r.m(i, j));
        }
    }
    (q_thin, r_thin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_tn};
    use proptest::prelude::*;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn qr_reconstructs_small_matrix() {
        let a = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let (q, r) = qr(&a);
        assert_close(&matmul(&q, &r), &a, 1e-10);
    }

    #[test]
    fn qr_q_is_orthonormal() {
        let a = Tensor::from_fn(&[5, 3], |idx| ((idx[0] * 7 + idx[1] * 3) % 5) as f64 + 1.0);
        let (q, _) = qr(&a);
        let qtq = matmul_tn(&q, &q);
        assert_close(&qtq, &crate::ops::identity(3), 1e-10);
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Second column is a multiple of the first.
        let a = Tensor::from_vec(vec![3, 2], vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        let (q, r) = qr(&a);
        assert_close(&matmul(&q, &r), &a, 1e-10);
        assert!(r.m(1, 1).abs() < 1e-10, "rank-deficient R should have zero diagonal");
    }

    proptest! {
        #[test]
        fn prop_qr_identity_holds(m in 2usize..8, n in 1usize..5, seed in 0u64..100) {
            prop_assume!(m >= n);
            let a = Tensor::from_fn(&[m, n], |idx| {
                let h = idx[0].wrapping_mul(2654435761).wrapping_add(idx[1].wrapping_mul(97))
                    .wrapping_add(seed as usize);
                ((h % 1000) as f64 / 100.0) - 5.0
            });
            let (q, r) = qr(&a);
            let qr_prod = matmul(&q, &r);
            for (x, y) in qr_prod.data().iter().zip(a.data()) {
                prop_assert!((x - y).abs() < 1e-8, "{} vs {}", x, y);
            }
            // R upper triangular.
            for i in 0..n {
                for j in 0..i {
                    prop_assert!(r.m(i, j).abs() < 1e-12);
                }
            }
        }
    }
}
