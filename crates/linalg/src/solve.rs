//! Direct solvers: Cholesky for SPD systems, partially-pivoted LU for general ones.
//!
//! These back the ridge regressions of TRMF, the view combiner of STMVL and the
//! Kalman-filter/EM updates of DynaMMO, all of which solve small (`rank`- or
//! `hidden-dim`-sized) systems thousands of times.

use mvi_tensor::Tensor;

/// Cholesky factorization `A = L · Lᵀ` of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor, or `None` if the matrix is not numerically
/// positive-definite (a non-positive pivot was encountered).
pub fn cholesky(a: &Tensor) -> Option<Tensor> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "cholesky needs a square matrix");
    let mut l = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.m(i, j);
            for k in 0..j {
                sum -= l.m(i, k) * l.m(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set_m(i, j, sum.sqrt());
            } else {
                l.set_m(i, j, sum / l.m(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// Adds a tiny diagonal jitter and retries once if the factorization fails, which is
/// the standard remedy for the nearly-singular normal equations that arise in ALS
/// with degenerate factors. Returns `None` if even the jittered system fails.
pub fn solve_spd(a: &Tensor, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(b.len(), n, "solve_spd rhs length mismatch");
    let l = match cholesky(a) {
        Some(l) => l,
        None => {
            let mut aj = a.clone();
            let jitter = 1e-8 * (1.0 + a.max_abs());
            for i in 0..n {
                let v = aj.m(i, i) + jitter;
                aj.set_m(i, i, v);
            }
            cholesky(&aj)?
        }
    };
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.m(i, k) * y[k];
        }
        y[i] = sum / l.m(i, i);
    }
    // Backward solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l.m(k, i) * x[k];
        }
        x[i] = sum / l.m(i, i);
    }
    Some(x)
}

/// Solves `A x = b` for a general square matrix via LU with partial pivoting.
///
/// Returns `None` for (numerically) singular systems.
pub fn lu_solve(a: &Tensor, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu_solve needs a square matrix");
    assert_eq!(b.len(), n, "lu_solve rhs length mismatch");
    let mut lu = a.clone();
    let mut x: Vec<f64> = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for k in 0..n {
        // Partial pivot.
        let mut pivot = k;
        let mut best = lu.m(k, k).abs();
        for i in (k + 1)..n {
            let v = lu.m(i, k).abs();
            if v > best {
                best = v;
                pivot = i;
            }
        }
        if best < 1e-300 {
            return None;
        }
        if pivot != k {
            for j in 0..n {
                let tmp = lu.m(k, j);
                lu.set_m(k, j, lu.m(pivot, j));
                lu.set_m(pivot, j, tmp);
            }
            perm.swap(k, pivot);
            x.swap(k, pivot);
        }
        let pivval = lu.m(k, k);
        for i in (k + 1)..n {
            let factor = lu.m(i, k) / pivval;
            lu.set_m(i, k, factor);
            for j in (k + 1)..n {
                let v = lu.m(i, j) - factor * lu.m(k, j);
                lu.set_m(i, j, v);
            }
            x[i] -= factor * x[k];
        }
    }
    // Back substitution on U.
    for i in (0..n).rev() {
        let mut sum = x[i];
        for j in (i + 1)..n {
            sum -= lu.m(i, j) * x[j];
        }
        x[i] = sum / lu.m(i, i);
    }
    Some(x)
}

/// Inverse of a general square matrix via column-by-column LU solves.
///
/// Only used on small matrices (Kalman innovation covariances); returns `None` when
/// singular.
pub fn inverse(a: &Tensor) -> Option<Tensor> {
    let n = a.rows();
    let mut inv = Tensor::zeros(&[n, n]);
    let mut e = vec![0.0; n];
    for j in 0..n {
        e[j] = 1.0;
        let col = lu_solve(a, &e)?;
        e[j] = 0.0;
        for i in 0..n {
            inv.set_m(i, j, col[i]);
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{identity, matmul, matmul_tn, matvec, transpose};
    use proptest::prelude::*;

    fn spd(n: usize, seed: u64) -> Tensor {
        // B Bᵀ + n·I is SPD.
        let b = Tensor::from_fn(&[n, n], |idx| {
            let h =
                (idx[0] as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(idx[1] as u64 + seed);
            ((h >> 30) % 100) as f64 / 25.0 - 2.0
        });
        let mut a = matmul(&b, &transpose(&b));
        for i in 0..n {
            let v = a.m(i, i) + n as f64;
            a.set_m(i, i, v);
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(4, 1);
        let l = cholesky(&a).expect("SPD");
        let llt = matmul(&l, &transpose(&l));
        for (x, y) in llt.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_spd_solves() {
        let a = spd(5, 3);
        let x_true = [1.0, -2.0, 0.5, 3.0, -1.0];
        let b = matvec(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_solve_nonsymmetric() {
        let a = Tensor::from_vec(vec![3, 3], vec![0.0, 2.0, 1.0, 1.0, 0.0, 0.0, 3.0, 1.0, 2.0]);
        let x_true = [2.0, -1.0, 4.0];
        let b = matvec(&a, &x_true);
        let x = lu_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn lu_solve_detects_singular() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 2.0, 4.0]);
        assert!(lu_solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd(4, 9);
        let inv = inverse(&a).unwrap();
        let prod = matmul(&inv, &a);
        for (x, y) in prod.data().iter().zip(identity(4).data()) {
            assert!((x - y).abs() < 1e-8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_solvers_agree_on_spd(n in 1usize..7, seed in 0u64..50) {
            let a = spd(n, seed);
            let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
            let x1 = solve_spd(&a, &b).unwrap();
            let x2 = lu_solve(&a, &b).unwrap();
            for (p, q) in x1.iter().zip(&x2) {
                prop_assert!((p - q).abs() < 1e-7);
            }
        }

        #[test]
        fn prop_cholesky_gram_is_spd(n in 1usize..7, seed in 0u64..50) {
            let g = spd(n, seed);
            let l = cholesky(&g);
            prop_assert!(l.is_some());
            let l = l.unwrap();
            let llt = matmul_tn(&transpose(&l), &transpose(&l));
            for (x, y) in llt.data().iter().zip(g.data()) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }
}
