//! Singular value decomposition via the one-sided Jacobi method.
//!
//! One-sided Jacobi orthogonalizes the columns of a working copy `G` of `A` with
//! plane rotations accumulated into `V`; at convergence the column norms of `G` are
//! the singular values and the normalized columns are `U`. It is simple, numerically
//! robust, and fast enough for the `series × rank`-scale matrices the imputation
//! baselines decompose (the long time axis only ever appears as the *row* count,
//! where the method scales linearly).

use crate::ops::transpose;
use mvi_tensor::Tensor;

/// A thin singular value decomposition `A = U · diag(S) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `[m, r]` with `r = min(m, n)`.
    pub u: Tensor,
    /// Singular values in non-increasing order, length `r`.
    pub s: Vec<f64>,
    /// Right singular vectors, `[n, r]`.
    pub v: Tensor,
}

impl Svd {
    /// Reconstructs `U · diag(S') · Vᵀ` where `S'` keeps only the first `rank`
    /// singular values (the classical truncated-SVD low-rank approximation).
    pub fn reconstruct(&self, rank: usize) -> Tensor {
        let m = self.u.rows();
        let n = self.v.rows();
        let r = rank.min(self.s.len());
        let mut out = Tensor::zeros(&[m, n]);
        for k in 0..r {
            let sk = self.s[k];
            if sk == 0.0 {
                continue;
            }
            for i in 0..m {
                let uik = self.u.m(i, k) * sk;
                if uik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let val = out.m(i, j) + uik * self.v.m(j, k);
                    out.set_m(i, j, val);
                }
            }
        }
        out
    }

    /// Reconstructs with each singular value passed through `f` (soft-thresholding
    /// for SoftImpute/SVT).
    pub fn reconstruct_with(&self, f: impl Fn(f64) -> f64) -> Tensor {
        let shrunk: Vec<f64> = self.s.iter().map(|&s| f(s)).collect();
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Tensor::zeros(&[m, n]);
        for (k, &sk) in shrunk.iter().enumerate() {
            if sk == 0.0 {
                continue;
            }
            for i in 0..m {
                let uik = self.u.m(i, k) * sk;
                if uik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let val = out.m(i, j) + uik * self.v.m(j, k);
                    out.set_m(i, j, val);
                }
            }
        }
        out
    }
}

/// Computes the thin SVD of an arbitrary dense matrix.
///
/// Internally transposes so the Jacobi sweeps always run over `min(m, n)` columns.
pub fn svd(a: &Tensor) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        // A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ.
        let t = svd(&transpose(a));
        return Svd { u: t.v, s: t.s, v: t.u };
    }
    jacobi_tall(a)
}

/// One-sided Jacobi on a tall (or square) matrix, `m ≥ n`.
fn jacobi_tall(a: &Tensor) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    // Column-major working copy of A for cache-friendly column rotations.
    let mut g: Vec<Vec<f64>> = (0..n).map(|j| (0..m).map(|i| a.m(i, j)).collect()).collect();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|j| {
            let mut col = vec![0.0; n];
            col[j] = 1.0;
            col
        })
        .collect();

    let eps = 1e-12;
    let max_sweeps = 60;
    for _ in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha: f64 = g[p].iter().map(|x| x * x).sum();
                let beta: f64 = g[q].iter().map(|x| x * x).sum();
                let gamma: f64 = g[p].iter().zip(&g[q]).map(|(&x, &y)| x * y).sum();
                let denom = (alpha * beta).sqrt();
                if denom <= 0.0 {
                    continue;
                }
                let ortho = gamma.abs() / denom;
                off = off.max(ortho);
                if ortho <= eps {
                    continue;
                }
                // Jacobi rotation annihilating the (p,q) off-diagonal of GᵀG.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate(&mut g, p, q, c, s);
                rotate(&mut v, p, q, c, s);
            }
        }
        if off <= eps {
            break;
        }
    }

    // Singular values = column norms; sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> =
        g.iter().map(|col| col.iter().map(|x| x * x).sum::<f64>().sqrt()).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).unwrap());

    let mut u = Tensor::zeros(&[m, n]);
    let mut vt = Tensor::zeros(&[n, n]);
    let mut s = Vec::with_capacity(n);
    for (rank, &j) in order.iter().enumerate() {
        let sigma = norms[j];
        s.push(sigma);
        if sigma > 0.0 {
            for i in 0..m {
                u.set_m(i, rank, g[j][i] / sigma);
            }
        }
        for i in 0..n {
            vt.set_m(i, rank, v[j][i]);
        }
    }
    Svd { u, s, v: vt }
}

/// Applies the plane rotation `(cols[p], cols[q]) <- (c·p - s·q, s·p + c·q)`.
fn rotate(cols: &mut [Vec<f64>], p: usize, q: usize, c: f64, s: f64) {
    // Split borrows of the two columns.
    let (lo, hi) = if p < q { (p, q) } else { (q, p) };
    let (head, tail) = cols.split_at_mut(hi);
    let (cp, cq) =
        if p < q { (&mut head[lo], &mut tail[0]) } else { (&mut tail[0], &mut head[lo]) };
    for (x, y) in cp.iter_mut().zip(cq.iter_mut()) {
        let xp = c * *x - s * *y;
        let yq = s * *x + c * *y;
        *x = xp;
        *y = yq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{matmul, matmul_tn};
    use proptest::prelude::*;

    fn assert_close(a: &Tensor, b: &Tensor, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    fn pseudo_random(m: usize, n: usize, seed: u64) -> Tensor {
        Tensor::from_fn(&[m, n], |idx| {
            let h = (idx[0] as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(idx[1] as u64)
                .wrapping_mul(1442695040888963407)
                .wrapping_add(seed);
            ((h >> 33) % 2000) as f64 / 100.0 - 10.0
        })
    }

    #[test]
    fn svd_reconstructs_exactly_at_full_rank() {
        let a = pseudo_random(6, 4, 3);
        let d = svd(&a);
        assert_close(&d.reconstruct(4), &a, 1e-8);
    }

    #[test]
    fn svd_wide_matrix() {
        let a = pseudo_random(3, 7, 11);
        let d = svd(&a);
        assert_eq!(d.u.shape(), &[3, 3]);
        assert_eq!(d.v.shape(), &[7, 3]);
        assert_close(&d.reconstruct(3), &a, 1e-8);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let a = pseudo_random(8, 5, 7);
        let d = svd(&a);
        for w in d.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(d.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn u_and_v_have_orthonormal_columns() {
        let a = pseudo_random(6, 4, 21);
        let d = svd(&a);
        assert_close(&matmul_tn(&d.u, &d.u), &crate::ops::identity(4), 1e-9);
        assert_close(&matmul_tn(&d.v, &d.v), &crate::ops::identity(4), 1e-9);
    }

    #[test]
    fn rank_one_matrix_has_one_singular_value() {
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Tensor::from_fn(&[3, 2], |idx| u[idx[0]] * v[idx[1]]);
        let d = svd(&a);
        assert!(d.s[0] > 1.0);
        assert!(d.s[1].abs() < 1e-9);
        assert_close(&d.reconstruct(1), &a, 1e-9);
    }

    #[test]
    fn truncation_matches_best_low_rank_error() {
        // Eckart–Young: truncated reconstruction error equals the dropped σ's.
        let a = pseudo_random(6, 6, 5);
        let d = svd(&a);
        let approx = d.reconstruct(3);
        let diff = Tensor::from_fn(&[6, 6], |idx| a.get(idx) - approx.get(idx));
        let err = diff.frobenius_norm();
        let expected: f64 = d.s[3..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!((err - expected).abs() < 1e-6, "{err} vs {expected}");
    }

    #[test]
    fn reconstruct_with_soft_threshold_shrinks() {
        let a = pseudo_random(5, 5, 9);
        let d = svd(&a);
        let tau = d.s[0] * 0.5;
        let shrunk = d.reconstruct_with(|s| (s - tau).max(0.0));
        // Shrunk matrix has strictly smaller Frobenius norm than original.
        assert!(shrunk.frobenius_norm() < a.frobenius_norm());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_svd_identity(m in 1usize..8, n in 1usize..8, seed in 0u64..100) {
            let a = pseudo_random(m, n, seed);
            let d = svd(&a);
            let r = m.min(n);
            let rec = d.reconstruct(r);
            for (x, y) in rec.data().iter().zip(a.data()) {
                prop_assert!((x - y).abs() < 1e-6, "{} vs {}", x, y);
            }
            // Frobenius norm preserved by the spectrum.
            let norm_s: f64 = d.s.iter().map(|s| s * s).sum::<f64>().sqrt();
            prop_assert!((norm_s - a.frobenius_norm()).abs() < 1e-6);
        }

        #[test]
        fn prop_product_svd_consistency(m in 2usize..6, seed in 0u64..30) {
            // A = B·Bᵀ is PSD: singular values equal eigenvalues, U ≈ V (up to sign).
            let b = pseudo_random(m, m, seed);
            let a = matmul(&b, &crate::ops::transpose(&b));
            let d = svd(&a);
            for k in 0..m {
                // |u_k · v_k| = 1 for distinct eigenvalues; allow slack for clusters.
                let dotuv: f64 = (0..m).map(|i| d.u.m(i, k) * d.v.m(i, k)).sum();
                prop_assert!(dotuv.abs() > 0.9, "column {} dot {}", k, dotuv);
            }
        }
    }
}
