//! The blocking network client: framed queries with connect/read/write
//! timeouts and a seeded-deterministic retry loop.
//!
//! ## Retry semantics (the part that matters)
//!
//! The client retries **only** failures the protocol proves are safe to
//! retry:
//!
//! * **connect failures** (refused/timed out — e.g. the server is mid
//!   restart): nothing was ever sent, so retrying cannot double-execute;
//! * **typed [`ErrorCode::Overloaded`] replies**: the server states the
//!   request was shed *before* execution, and carries a `retry_after_ms`
//!   backoff hint the client honors;
//! * **typed [`ErrorCode::TenantLoading`] replies**: the tenant's snapshot
//!   is mid-load server-side; the request was likewise shed before
//!   execution, and the hint covers the expected load time.
//!
//! Everything else is **never retried automatically**. In particular, once
//! the request frame has started onto the wire, any I/O failure is treated
//! as *ambiguous in flight* — the server may or may not have executed the
//! request — and is returned to the caller as a typed [`NetError::Io`]. The
//! caller, who knows whether its request is idempotent, decides. Typed
//! server errors other than the two above (deadline, shutdown, invalid,
//! unknown-tenant, registry-full, …) are likewise surfaced as
//! [`NetError::Server`] for the caller to act on.
//!
//! ## Tenancy
//!
//! A client built with [`NetClient::with_tenant`] stamps every request with
//! its tenant id (frame v2), routing it to that tenant's model behind the
//! server's registry. [`NetClient::new`] leaves the tenant empty — the
//! server's default tenant — which is also what a v1 peer gets.
//!
//! Backoff is exponential with multiplicative jitter drawn from a seeded
//! xorshift generator, so a given [`RetryPolicy`] produces the *same* delay
//! schedule every run — reproducible in tests, well-spread in a fleet when
//! each client seeds differently.

use crate::frame::{
    read_frame, write_frame, ErrorCode, Frame, FrameError, HealthFrame, RecvError, WireError,
    DEFAULT_MAX_FRAME, MAX_TENANT_LEN,
};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How the client retries retry-safe failures; see the module docs for what
/// qualifies. The schedule is deterministic in `seed`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per retry (exponential growth).
    pub factor: f64,
    /// Cap on any single delay.
    pub max_delay: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1]`, de-synchronizing retry herds.
    pub jitter: f64,
    /// Seed for the jitter stream — the whole schedule is a pure function of
    /// the policy, so tests replay it exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base: Duration::from_millis(10),
            factor: 2.0,
            max_delay: Duration::from_millis(500),
            jitter: 0.25,
            seed: 0x006d_7669_5f6e_6574, // "mvi_net"
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// The deterministic delay schedule this policy produces: an infinite
    /// iterator of backoff delays (element `k` is the pause before retry
    /// `k + 1`).
    pub fn schedule(&self) -> Backoff {
        Backoff {
            policy: *self,
            attempt: 0,
            // xorshift state must be non-zero; fold the seed onto a constant.
            rng: self.seed | 0x9E37_79B9_0000_0001,
        }
    }
}

/// Iterator over a [`RetryPolicy`]'s backoff delays (seeded, deterministic).
#[derive(Clone, Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// xorshift64* — tiny, seedable, plenty for jitter.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let out = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (out >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        let raw = self.policy.base.as_secs_f64()
            * self.policy.factor.max(1.0).powi(self.attempt.min(62) as i32);
        let raw = raw.min(self.policy.max_delay.as_secs_f64());
        self.attempt = self.attempt.saturating_add(1);
        let jitter = self.policy.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter * self.next_unit();
        Some(Duration::from_secs_f64((raw * scale).max(0.0)))
    }
}

/// Client tuning: per-phase timeouts, frame cap, retry policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientConfig {
    /// Timeout for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Timeout for reading one reply frame (must exceed the server's
    /// request deadline, or the client gives up before the server's typed
    /// deadline reply arrives).
    pub read_timeout: Duration,
    /// Timeout for writing one request frame.
    pub write_timeout: Duration,
    /// Largest reply frame the client will accept.
    pub max_frame: u32,
    /// The retry policy (see the module docs for what is retryable).
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(1),
            max_frame: DEFAULT_MAX_FRAME,
            retry: RetryPolicy::default(),
        }
    }
}

/// Everything a client call can fail with. [`NetError::retryable`] encodes
/// the retry contract; the automatic retry loop uses exactly that predicate.
#[derive(Debug)]
pub enum NetError {
    /// Establishing the connection failed — nothing was sent, retry-safe.
    Connect {
        /// The address the connect targeted.
        addr: SocketAddr,
        /// The underlying I/O error kind.
        kind: io::ErrorKind,
        /// The underlying error text.
        msg: String,
    },
    /// An I/O failure after the request started onto the wire (`during` is
    /// `"write"` or `"read"`). Ambiguous in flight: the server may have
    /// executed the request, so this is never retried automatically.
    Io {
        /// Which phase failed.
        during: &'static str,
        /// The underlying I/O error kind.
        kind: io::ErrorKind,
        /// The underlying error text.
        msg: String,
    },
    /// The reply bytes did not decode as a frame.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Server(WireError),
    /// An automatic retry sequence used up [`RetryPolicy::max_attempts`];
    /// `last` is the final retryable failure.
    Exhausted {
        /// Attempts made (== the policy's `max_attempts`).
        attempts: u32,
        /// The last failure observed.
        last: Box<NetError>,
    },
    /// The server answered with a frame type that makes no sense for the
    /// request (protocol violation).
    Protocol(&'static str),
}

impl NetError {
    /// Whether the automatic retry loop may re-submit after this failure:
    /// connect failures and typed `Overloaded` replies only.
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Connect { .. } => true,
            NetError::Server(e) => e.code.retryable(),
            _ => false,
        }
    }

    /// The server's backoff hint, when the reply carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            NetError::Server(e) if e.retry_after_ms > 0 => {
                Some(Duration::from_millis(u64::from(e.retry_after_ms)))
            }
            _ => None,
        }
    }

    /// The wire error code, when the failure was a typed server reply.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server(e) => Some(e.code),
            NetError::Exhausted { last, .. } => last.code(),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Connect { addr, kind, msg } => {
                write!(f, "connect to {addr} failed ({kind:?}): {msg}")
            }
            NetError::Io { during, kind, msg } => {
                write!(
                    f,
                    "i/o failure during {during} ({kind:?}): {msg} (ambiguous in flight — \
                           not retried automatically)"
                )
            }
            NetError::Frame(e) => write!(f, "reply framing error: {e}"),
            NetError::Server(e) => {
                write!(f, "server error [{}]: {}", e.code, e.message)?;
                if e.retry_after_ms > 0 {
                    write!(f, " (retry after {}ms)", e.retry_after_ms)?;
                }
                Ok(())
            }
            NetError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A blocking client for the framed-TCP serving protocol. Holds one
/// connection, reconnecting lazily; not `Sync` — use one client per thread
/// (they are cheap) or clone the config.
#[derive(Debug)]
pub struct NetClient {
    addr: SocketAddr,
    config: ClientConfig,
    tenant: String,
    conn: Option<TcpStream>,
}

impl NetClient {
    /// A client for the server at `addr`, addressing the default tenant. No
    /// I/O happens until the first call — connecting is lazy and
    /// re-established on demand.
    pub fn new(addr: SocketAddr, config: ClientConfig) -> Self {
        Self { addr, config, tenant: String::new(), conn: None }
    }

    /// A client whose every request routes to `tenant`'s model on the
    /// server's registry.
    pub fn with_tenant(addr: SocketAddr, tenant: impl Into<String>, config: ClientConfig) -> Self {
        Self { addr, config, tenant: tenant.into(), conn: None }
    }

    /// Re-points this client at a different tenant (the connection is kept —
    /// tenancy is per-request on the wire, not per-connection).
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = tenant.into();
    }

    /// The tenant id requests are stamped with (empty = default tenant).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Rejects a tenant id that cannot ride the wire before any I/O happens,
    /// so an oversized id fails loudly instead of being silently truncated
    /// into some *other* tenant's name.
    fn check_tenant(&self) -> Result<(), NetError> {
        if self.tenant.len() > MAX_TENANT_LEN {
            return Err(NetError::Protocol("tenant id exceeds the 64-byte wire cap"));
        }
        Ok(())
    }

    /// Verifies a reply's tenant echo. An empty echo is a wildcard (v1-era
    /// peers cannot carry one); a non-empty echo naming a *different* tenant
    /// means the server cross-wired replies — drop the connection rather
    /// than trust its alignment.
    fn check_echo(&mut self, reply_tenant: &str) -> Result<(), NetError> {
        if !reply_tenant.is_empty() && reply_tenant != self.tenant {
            self.conn = None;
            return Err(NetError::Protocol("reply names a different tenant than the request"));
        }
        Ok(())
    }

    /// Points the client at a different server (drops any live connection).
    /// Combined with connect-retries this is the failover primitive: a
    /// killed server's clients redirect and back off until the replacement
    /// accepts.
    pub fn redirect(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.conn = None;
    }

    /// The address the client currently targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Imputed values of `[start, end)` in series `s`, with automatic
    /// retry/backoff on retry-safe failures (see the module docs).
    ///
    /// # Errors
    /// Any [`NetError`]; only connect failures and typed `Overloaded` replies
    /// are retried before surfacing.
    pub fn query(&mut self, s: u32, start: u32, end: u32) -> Result<Vec<f64>, NetError> {
        self.check_tenant()?;
        let request = Frame::Query { tenant: self.tenant.clone(), s, start, end };
        let reply = self.call_with_retry(&request)?;
        match reply {
            Frame::Values { tenant, values } => {
                self.check_echo(&tenant)?;
                Ok(values)
            }
            Frame::Error(e) => Err(NetError::Server(e)),
            _ => {
                self.conn = None;
                Err(NetError::Protocol("query answered with a non-values, non-error frame"))
            }
        }
    }

    /// The server's health counters (engine faults, queue depth, connection
    /// count, drain flag). Same retry semantics as [`NetClient::query`].
    ///
    /// # Errors
    /// Any [`NetError`], as for [`NetClient::query`].
    pub fn health(&mut self) -> Result<HealthFrame, NetError> {
        self.check_tenant()?;
        let request = Frame::HealthReq { tenant: self.tenant.clone() };
        let reply = self.call_with_retry(&request)?;
        match reply {
            Frame::Health { tenant, health } => {
                self.check_echo(&tenant)?;
                Ok(health)
            }
            Frame::Error(e) => Err(NetError::Server(e)),
            _ => {
                self.conn = None;
                Err(NetError::Protocol("health answered with an unexpected frame type"))
            }
        }
    }

    /// One request/reply exchange under the retry loop. Retryable failures
    /// sleep `max(backoff delay, server retry-after hint)` between attempts.
    fn call_with_retry(&mut self, request: &Frame) -> Result<Frame, NetError> {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut backoff = self.config.retry.schedule();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match self.call_once(request) {
                Ok(Frame::Error(e)) if e.code.retryable() => NetError::Server(e),
                Err(e) if e.retryable() => e,
                other => return other,
            };
            if attempt >= max_attempts {
                return Err(if attempt > 1 {
                    NetError::Exhausted { attempts: attempt, last: Box::new(err) }
                } else {
                    err
                });
            }
            let delay = backoff.next().unwrap_or(self.config.retry.max_delay);
            let delay = err.retry_after().map_or(delay, |hint| delay.max(hint));
            std::thread::sleep(delay);
        }
    }

    /// One attempt: ensure a connection, write the request, read one reply.
    /// Retry-safe connect failures surface as [`NetError::Connect`]; the
    /// retry loop also re-submits on typed `Overloaded` reply frames (which
    /// this returns as `Ok(Frame::Error(..))` so the loop can distinguish a
    /// still-healthy connection from a transport failure).
    fn call_once(&mut self, request: &Frame) -> Result<Frame, NetError> {
        if self.conn.is_none() {
            let stream =
                TcpStream::connect_timeout(&self.addr, self.config.connect_timeout).map_err(
                    |e| NetError::Connect { addr: self.addr, kind: e.kind(), msg: e.to_string() },
                )?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(self.config.read_timeout));
            let _ = stream.set_write_timeout(Some(self.config.write_timeout));
            self.conn = Some(stream);
        }
        let Some(stream) = self.conn.as_mut() else {
            return Err(NetError::Protocol("connection vanished between establish and use"));
        };
        if let Err(e) = write_frame(stream, request) {
            // The frame may have partially left the machine: ambiguous.
            self.conn = None;
            return Err(NetError::Io { during: "write", kind: e.kind(), msg: e.to_string() });
        }
        match read_frame(stream, self.config.max_frame) {
            Ok(frame) => {
                // An over-cap admission refusal and a drain reply both
                // precede a server-side close: drop the cached connection so
                // the next attempt (retry or caller-driven) reconnects fresh
                // instead of writing into a dead socket. A queue-shed
                // `Overloaded` keeps its connection, but reconnecting is
                // cheap and always correct — the protocol is stateless
                // between frames. The tenancy codes (`TenantLoading`,
                // `RegistryFull`, `UnknownTenant`) are deliberately *not* in
                // this set: they are request-level errors on a connection
                // whose framing is intact, and the server keeps it open —
                // same contract as `Invalid` (the loopback hygiene test pins
                // both sides of this).
                if let Frame::Error(e) = &frame {
                    if matches!(e.code, ErrorCode::Overloaded | ErrorCode::Shutdown) {
                        self.conn = None;
                    }
                }
                Ok(frame)
            }
            Err(RecvError::Closed) => {
                self.conn = None;
                Err(NetError::Io {
                    during: "read",
                    kind: io::ErrorKind::UnexpectedEof,
                    msg: "connection closed before a reply frame arrived".into(),
                })
            }
            Err(RecvError::Io(e)) => {
                self.conn = None;
                Err(NetError::Io { during: "read", kind: e.kind(), msg: e.to_string() })
            }
            Err(RecvError::Frame(e)) => {
                // Framing is lost; the connection cannot be reused.
                self.conn = None;
                Err(NetError::Frame(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        let a: Vec<Duration> = policy.schedule().take(8).collect();
        let b: Vec<Duration> = policy.schedule().take(8).collect();
        assert_eq!(a, b, "same policy must replay the same schedule");

        let other = RetryPolicy { seed: 42, ..policy };
        let c: Vec<Duration> = other.schedule().take(8).collect();
        assert_ne!(a, c, "different seeds must jitter differently");
    }

    #[test]
    fn backoff_grows_exponentially_and_caps_without_jitter() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2.0,
            max_delay: Duration::from_millis(100),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let delays: Vec<u128> = policy.schedule().take(6).map(|d| d.as_millis()).collect();
        assert_eq!(delays, [10, 20, 40, 80, 100, 100], "pure exponential with cap");
    }

    #[test]
    fn jitter_only_shrinks_within_its_fraction() {
        let policy = RetryPolicy {
            base: Duration::from_millis(100),
            factor: 1.0,
            max_delay: Duration::from_millis(100),
            jitter: 0.25,
            ..RetryPolicy::default()
        };
        for d in policy.schedule().take(64) {
            let ms = d.as_secs_f64() * 1e3;
            assert!((75.0..=100.0).contains(&ms), "jittered delay {ms}ms outside [75, 100]");
        }
    }

    #[test]
    fn retryability_is_exactly_connect_overloaded_and_tenant_loading() {
        let overloaded = NetError::Server(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: 30,
            message: "shed".into(),
        });
        assert!(overloaded.retryable());
        assert_eq!(overloaded.retry_after(), Some(Duration::from_millis(30)));

        let loading = NetError::Server(WireError {
            code: ErrorCode::TenantLoading,
            retry_after_ms: 50,
            message: "loading".into(),
        });
        assert!(loading.retryable(), "a mid-load shed happened before execution");
        assert_eq!(loading.retry_after(), Some(Duration::from_millis(50)));

        let connect = NetError::Connect {
            addr: "127.0.0.1:1".parse().unwrap(),
            kind: io::ErrorKind::ConnectionRefused,
            msg: "refused".into(),
        };
        assert!(connect.retryable());

        for code in [
            ErrorCode::Invalid,
            ErrorCode::Evicted,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Panicked,
            ErrorCode::Shutdown,
            ErrorCode::Disconnected,
            ErrorCode::Internal,
            ErrorCode::BadFrame,
            ErrorCode::UnknownTenant,
            ErrorCode::RegistryFull,
        ] {
            let err =
                NetError::Server(WireError { code, retry_after_ms: 0, message: String::new() });
            assert!(!err.retryable(), "{code} must not be auto-retried");
        }
        let ambiguous =
            NetError::Io { during: "read", kind: io::ErrorKind::UnexpectedEof, msg: "gone".into() };
        assert!(!ambiguous.retryable(), "in-flight i/o failures are ambiguous, never retried");
    }

    #[test]
    fn oversized_tenant_is_refused_before_any_io() {
        // 65 ASCII bytes — one past the wire cap. The target address is a
        // black hole; if the client tried to connect, this test would hang
        // on the timeout instead of failing fast.
        let mut client = NetClient::with_tenant(
            "127.0.0.1:1".parse().unwrap(),
            "x".repeat(MAX_TENANT_LEN + 1),
            ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() },
        );
        let err = client.query(0, 0, 10).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "must fail typed pre-I/O: {err}");
        let err = client.health().unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)));
    }
}
