//! The wire format: length-prefixed, CRC-32-checked frames.
//!
//! Every frame is laid out as
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MVIF"
//! 4       1     protocol version (1 or 2)
//! 5       1     frame type
//! 6       4     payload length, u32 LE (capped by the receiver's max frame)
//! 10      4     CRC-32 (IEEE) over bytes 4..10 plus the payload
//! 14      len   payload
//! ```
//!
//! **Version 2** (current) prefixes every payload except `Error` with a
//! tenant id that routes the request through the server's model registry:
//!
//! ```text
//! offset  size        field
//! 0       1           tenant id length in bytes (0..=64)
//! 1       tenant_len  tenant id, UTF-8
//! 1+len   …           the frame type's v1 body, unchanged
//! ```
//!
//! An empty tenant id means "the default tenant". **Version 1** frames have
//! no tenant prefix and are still decoded — a v1 peer routes to the default
//! tenant, and a server answers each request in the version it arrived in.
//! The tenant id is capped at [`MAX_TENANT_LEN`] bytes so its length always
//! fits the single prefix byte; a longer or non-UTF-8 id on the wire is
//! [`FrameError::Malformed`], never a desync (the outer length prefix bounds
//! the payload regardless of what the tenant field claims).
//!
//! A receiver can always decide, with bounded memory, whether the bytes in
//! front of it are a well-formed frame *before* acting on them:
//!
//! * a wrong magic or version is rejected immediately ([`FrameError::BadMagic`]
//!   / [`FrameError::BadVersion`]) — the stream is not speaking this protocol;
//! * a length prefix above the configured cap is rejected *before any payload
//!   is read* ([`FrameError::Oversized`]) — a hostile or bit-flipped length
//!   can never make the receiver allocate unbounded memory;
//! * the checksum covers the version, type and length bytes as well as the
//!   payload, so a bit flip anywhere in the frame surfaces as
//!   [`FrameError::Checksum`] instead of silently corrupt data (a flipped
//!   length field shifts the CRC input and fails the same way);
//! * a stream that ends mid-frame is [`FrameError::Truncated`].
//!
//! Decoding is **total**: any byte sequence maps to a frame or a typed
//! [`FrameError`] — never a panic, never an unbounded read. The fuzz suite
//! (`crates/net/tests/frame_fuzz.rs`) pins that contract the same way the
//! snapshot codec's fuzz tests do.

use mvi_serve::durable::crc32;
use mvi_serve::ServeError;
use std::io::{self, Read, Write};

/// Leading magic bytes of every frame.
pub const MAGIC: [u8; 4] = *b"MVIF";
/// Protocol version 1: no tenant routing; every request hits the default
/// tenant. Still decoded for back-compat.
pub const V1: u8 = 1;
/// Protocol version 2: payloads (except `Error`) carry a tenant-id prefix.
pub const V2: u8 = 2;
/// The protocol version this build speaks by default.
pub const VERSION: u8 = V2;
/// Fixed header size (magic + version + type + length + CRC).
pub const HEADER_LEN: usize = 14;
/// Cap on a tenant id's UTF-8 byte length on the wire. Encoding truncates at
/// a character boundary; decoding rejects longer claims as malformed.
pub const MAX_TENANT_LEN: usize = 64;
/// Default cap on one frame's payload (1 MiB). A `Values` reply of this size
/// carries ~128k points — far above any sane request — while bounding what a
/// hostile length prefix can make either side allocate.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Frame type tags (the byte at offset 5).
const T_QUERY: u8 = 1;
const T_VALUES: u8 = 2;
const T_ERROR: u8 = 3;
const T_HEALTH_REQ: u8 = 4;
const T_HEALTH: u8 = 5;

/// Why a byte sequence failed to decode as a frame. Every variant is a typed,
/// recoverable error: codec failures never panic and never hang.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`MAGIC`] — the peer is not speaking this
    /// protocol (or the stream lost frame alignment).
    BadMagic {
        /// The four bytes actually read.
        got: [u8; 4],
    },
    /// Unsupported protocol version byte.
    BadVersion {
        /// The version byte actually read.
        got: u8,
    },
    /// Unknown frame-type byte.
    UnknownType {
        /// The type byte actually read.
        got: u8,
    },
    /// The length prefix exceeds the receiver's configured cap; rejected
    /// before any payload is read.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The CRC-32 recorded in the header does not match the bytes received —
    /// a bit flip somewhere in version/type/length/payload.
    Checksum {
        /// The checksum the header promised.
        expected: u32,
        /// The checksum of the bytes actually received.
        actual: u32,
    },
    /// The stream ended (or the buffer ran out) in the middle of a frame.
    Truncated {
        /// Which part of the frame was cut short (`"header"` / `"payload"`).
        section: &'static str,
    },
    /// The payload length or contents do not match what the frame type
    /// requires (wrong size, bad UTF-8, oversized tenant id, unknown error
    /// code, …).
    Malformed {
        /// What exactly was malformed.
        what: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:02x?} (expected `MVIF`)")
            }
            FrameError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (this build speaks {V1} and {V2})")
            }
            FrameError::UnknownType { got } => write!(f, "unknown frame type {got}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Checksum { expected, actual } => {
                write!(f, "frame checksum mismatch: header says {expected:08x}, got {actual:08x}")
            }
            FrameError::Truncated { section } => write!(f, "stream ended mid-frame ({section})"),
            FrameError::Malformed { what } => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wire error codes: the protocol-level classification a client can act on
/// without parsing the human-readable message. `Overloaded` and
/// `TenantLoading` are the only codes a client may retry — both guarantee the
/// request was shed *before* execution — everything else is either a
/// permanent request property or ambiguous about whether the request ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request itself is invalid (bad series id, bad range, geometry).
    /// Retrying the identical request can never succeed.
    Invalid = 1,
    /// The range touches time the server's retention ring already evicted.
    Evicted = 2,
    /// Admission control shed the request (full pending queue or connection
    /// cap). The request was **not** executed; retry after the carried
    /// `retry_after_ms` hint.
    Overloaded = 3,
    /// The server-side deadline elapsed before the request's batch replied.
    /// The evaluation may still complete in the background, so a retry is
    /// not known-safe; the typed code lets the caller decide.
    DeadlineExceeded = 4,
    /// The request's micro-batch panicked in the executor (caught; the
    /// server keeps serving).
    Panicked = 5,
    /// The server is draining: the request was answered with the typed
    /// shutdown reply instead of silence. Reconnect after `retry_after_ms`.
    Shutdown = 6,
    /// The executor's reply channel disconnected without an answer — a
    /// crash-shaped loss, distinct from the deliberate [`ErrorCode::Shutdown`]
    /// drain reply.
    Disconnected = 7,
    /// Server-side internal error (snapshot corruption and other faults that
    /// are not a property of this request).
    Internal = 8,
    /// The server could not decode what this connection sent (bad magic,
    /// checksum mismatch, oversized length, …). Sent best-effort before the
    /// server closes the connection, since frame alignment is lost.
    BadFrame = 9,
    /// The tenant id names no registered model. Retrying the identical
    /// request can never succeed until someone registers the tenant.
    UnknownTenant = 10,
    /// The tenant's snapshot is being loaded from disk right now. The
    /// request was **not** executed; retry after the carried
    /// `retry_after_ms` hint — by then the load has usually finished.
    TenantLoading = 11,
    /// The model registry has no evictable slot for this tenant (every
    /// resident slot pinned by an in-flight load, or zero capacity). Not
    /// flagged retryable: it does not resolve on a backoff timescale without
    /// other traffic finishing.
    RegistryFull = 12,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::Invalid),
            2 => Some(ErrorCode::Evicted),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Panicked),
            6 => Some(ErrorCode::Shutdown),
            7 => Some(ErrorCode::Disconnected),
            8 => Some(ErrorCode::Internal),
            9 => Some(ErrorCode::BadFrame),
            10 => Some(ErrorCode::UnknownTenant),
            11 => Some(ErrorCode::TenantLoading),
            12 => Some(ErrorCode::RegistryFull),
            _ => None,
        }
    }

    /// Whether a client may retry the identical request on this code alone.
    /// Only [`ErrorCode::Overloaded`] and [`ErrorCode::TenantLoading`]
    /// qualify: both state the request was shed *before* execution, so a
    /// retry is idempotent-safe.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::TenantLoading)
    }

    /// The stable lowercase name used in messages and logs.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Invalid => "invalid",
            ErrorCode::Evicted => "evicted",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Panicked => "panicked",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Disconnected => "disconnected",
            ErrorCode::Internal => "internal",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnknownTenant => "unknown-tenant",
            ErrorCode::TenantLoading => "tenant-loading",
            ErrorCode::RegistryFull => "registry-full",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed error reply frame: code + optional retry-after hint + message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Protocol-level classification.
    pub code: ErrorCode,
    /// Backoff hint in milliseconds (`0` = no hint). Carried by shed/drain
    /// replies so clients back off by the server's clock, not a guess.
    pub retry_after_ms: u32,
    /// Human-readable detail (the server-side error's Display text).
    pub message: String,
}

impl WireError {
    /// Maps a serving-layer error onto its wire code. `retry_after_ms` is the
    /// server's backoff hint, attached to the codes where a retry is
    /// meaningful (`Overloaded`, `Shutdown`, `TenantLoading`).
    pub fn from_serve(err: &ServeError, retry_after_ms: u32) -> Self {
        let (code, hint) = match err {
            ServeError::Overloaded { .. } => (ErrorCode::Overloaded, retry_after_ms),
            ServeError::DeadlineExceeded => (ErrorCode::DeadlineExceeded, 0),
            ServeError::Shutdown => (ErrorCode::Shutdown, retry_after_ms),
            ServeError::Disconnected => (ErrorCode::Disconnected, 0),
            ServeError::Panicked => (ErrorCode::Panicked, 0),
            ServeError::Evicted { .. } => (ErrorCode::Evicted, 0),
            ServeError::UnknownTenant { .. } => (ErrorCode::UnknownTenant, 0),
            ServeError::TenantLoading { .. } => (ErrorCode::TenantLoading, retry_after_ms),
            ServeError::RegistryFull { .. } => (ErrorCode::RegistryFull, 0),
            ServeError::Geometry(_)
            | ServeError::NonFiniteInput { .. }
            | ServeError::Series { .. }
            | ServeError::Range { .. }
            | ServeError::NonFiniteWeights { .. } => (ErrorCode::Invalid, 0),
            ServeError::Corrupt { .. } | ServeError::Snapshot(_) => (ErrorCode::Internal, 0),
        };
        Self { code, retry_after_ms: hint, message: err.to_string() }
    }
}

/// The serving health surface as one binary frame: the engine's
/// [`HealthReport`](mvi_serve::HealthReport) counters plus the front door's
/// own state (queue depth, connection count, drain flag).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthFrame {
    /// Values quarantined by the engine's `ValueGuard`.
    pub quarantined: u64,
    /// Mutations rejected for carrying NaN/±inf.
    pub nonfinite_input_rejections: u64,
    /// Windows that degraded to the mean-baseline fallback (monotonic).
    pub degraded_events: u64,
    /// Windows currently serving the fallback.
    pub degraded_windows: u64,
    /// State-lock poison recoveries.
    pub poison_recoveries: u64,
    /// Panics the micro-batcher supervisors have caught.
    pub panics_caught: u64,
    /// Requests currently queued (or being submitted) at the batchers.
    pub queue_depth: u32,
    /// The per-tenant bounded queue capacity.
    pub queue_cap: u32,
    /// Connections currently served.
    pub active_connections: u32,
    /// Whether the server is draining (shutting down gracefully).
    pub draining: bool,
}

const HEALTH_LEN: usize = 6 * 8 + 3 * 4 + 1;

/// One decoded protocol frame. The `tenant` fields route through the
/// server's model registry; an empty tenant means "the default tenant", and
/// v1 frames always decode with an empty tenant.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: impute series `s` over `[start, end)` on `tenant`'s
    /// model.
    Query {
        /// Tenant id (empty = default tenant).
        tenant: String,
        /// Flat series id.
        s: u32,
        /// Range start (inclusive).
        start: u32,
        /// Range end (exclusive).
        end: u32,
    },
    /// Server → client: the fully-imputed values of the requested range,
    /// echoing the tenant that served them.
    Values {
        /// The tenant whose model produced the values.
        tenant: String,
        /// The imputed values.
        values: Vec<f64>,
    },
    /// Server → client: a typed error reply (never carries a tenant — errors
    /// must be expressible even when the tenant field itself is the problem).
    Error(WireError),
    /// Client → server: report serving health — for one tenant, or the
    /// aggregate across all tenants when the tenant is empty.
    HealthReq {
        /// Tenant id (empty = aggregate over the whole registry).
        tenant: String,
    },
    /// Server → client: the health counters, echoing the scope requested.
    Health {
        /// The tenant scope the counters describe (empty = aggregate).
        tenant: String,
        /// The counters.
        health: HealthFrame,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Query { .. } => T_QUERY,
            Frame::Values { .. } => T_VALUES,
            Frame::Error(_) => T_ERROR,
            Frame::HealthReq { .. } => T_HEALTH_REQ,
            Frame::Health { .. } => T_HEALTH,
        }
    }

    /// The tenant id this frame routes by, if its type carries one.
    pub fn tenant(&self) -> Option<&str> {
        match self {
            Frame::Query { tenant, .. }
            | Frame::Values { tenant, .. }
            | Frame::HealthReq { tenant }
            | Frame::Health { tenant, .. } => Some(tenant),
            Frame::Error(_) => None,
        }
    }
}

/// Encodes one frame in the current protocol version ([`VERSION`]).
pub fn encode(frame: &Frame) -> Vec<u8> {
    encode_versioned(frame, VERSION)
}

/// Encodes one frame into its complete byte representation (header +
/// payload) in the given protocol version. [`V1`] drops the tenant field
/// (for talking to v1 peers); any other value encodes the v2 layout with
/// that version byte. Tenant ids longer than [`MAX_TENANT_LEN`] bytes are
/// truncated at a character boundary, mirroring the error-message cap.
pub fn encode_versioned(frame: &Frame, version: u8) -> Vec<u8> {
    let mut payload = Vec::new();
    if version != V1 {
        if let Some(tenant) = frame.tenant() {
            let mut cut = tenant.len().min(MAX_TENANT_LEN);
            while !tenant.is_char_boundary(cut) {
                cut -= 1;
            }
            payload.push(cut as u8);
            payload.extend_from_slice(&tenant.as_bytes()[..cut]);
        }
    }
    match frame {
        Frame::Query { s, start, end, .. } => {
            payload.extend_from_slice(&s.to_le_bytes());
            payload.extend_from_slice(&start.to_le_bytes());
            payload.extend_from_slice(&end.to_le_bytes());
        }
        Frame::Values { values, .. } => {
            payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Error(e) => {
            let msg = e.message.as_bytes();
            let msg = &msg[..msg.len().min(u16::MAX as usize)];
            payload.push(e.code as u8);
            payload.extend_from_slice(&e.retry_after_ms.to_le_bytes());
            payload.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            payload.extend_from_slice(msg);
        }
        Frame::HealthReq { .. } => {}
        Frame::Health { health: h, .. } => {
            for v in [
                h.quarantined,
                h.nonfinite_input_rejections,
                h.degraded_events,
                h.degraded_windows,
                h.poison_recoveries,
                h.panics_caught,
            ] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            for v in [h.queue_depth, h.queue_cap, h.active_connections] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload.push(h.draining as u8);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(frame.type_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(version, frame.type_byte(), &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The frame checksum: CRC-32 over version, type, payload length and the
/// payload bytes (the magic is excluded — it is a constant).
fn frame_crc(version: u8, ftype: u8, payload: &[u8]) -> u32 {
    let mut input = Vec::with_capacity(6 + payload.len());
    input.push(version);
    input.push(ftype);
    input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    input.extend_from_slice(payload);
    crc32(&input)
}

/// A validated header: protocol version, frame type, payload length,
/// expected CRC.
#[derive(Clone, Copy, Debug)]
pub struct Header {
    /// The protocol version byte (already validated as [`V1`] or [`V2`]);
    /// selects the payload layout and feeds the checksum.
    pub version: u8,
    /// The frame-type byte (already validated as known).
    pub ftype: u8,
    /// Declared payload length (already validated against the cap).
    pub len: u32,
    /// The checksum the payload must match.
    pub crc: u32,
}

/// Validates the fixed-size header: magic, version, known type, capped
/// length. Cheap enough to run before committing to read any payload.
pub fn decode_header(header: &[u8; HEADER_LEN], max_frame: u32) -> Result<Header, FrameError> {
    if header[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[0..4]);
        return Err(FrameError::BadMagic { got });
    }
    let version = header[4];
    if version != V1 && version != V2 {
        return Err(FrameError::BadVersion { got: version });
    }
    let ftype = header[5];
    if !(T_QUERY..=T_HEALTH).contains(&ftype) {
        return Err(FrameError::UnknownType { got: ftype });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > max_frame {
        return Err(FrameError::Oversized { len, max: max_frame });
    }
    let crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok(Header { version, ftype, len, crc })
}

/// Splits a v2 payload into its tenant id and the remaining v1-shaped body.
fn decode_tenant(payload: &[u8]) -> Result<(String, &[u8]), FrameError> {
    let Some(&len) = payload.first() else {
        return Err(malformed("v2 payload missing its tenant length byte"));
    };
    let len = len as usize;
    if len > MAX_TENANT_LEN {
        return Err(malformed(format!(
            "tenant id of {len} bytes exceeds the {MAX_TENANT_LEN}-byte cap"
        )));
    }
    let Some(bytes) = payload.get(1..1 + len) else {
        return Err(malformed("tenant id runs past the payload"));
    };
    let Ok(tenant) = std::str::from_utf8(bytes) else {
        return Err(malformed("tenant id is not UTF-8"));
    };
    Ok((tenant.to_string(), &payload[1 + len..]))
}

/// Decodes a payload against its validated header (checksum first, then the
/// version's tenant prefix, then the per-type layout).
pub fn decode_payload(header: Header, payload: &[u8]) -> Result<Frame, FrameError> {
    let actual = frame_crc(header.version, header.ftype, payload);
    if actual != header.crc {
        return Err(FrameError::Checksum { expected: header.crc, actual });
    }
    let (tenant, body) = if header.version != V1 && header.ftype != T_ERROR {
        decode_tenant(payload)?
    } else {
        (String::new(), payload)
    };
    match header.ftype {
        T_QUERY => {
            let [s, start, end] = read_u32s::<3>(body, "query body must be 12 bytes")?;
            Ok(Frame::Query { tenant, s, start, end })
        }
        T_VALUES => {
            if body.len() < 4 {
                return Err(malformed("values body shorter than its count field"));
            }
            let count = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            let rest = &body[4..];
            if rest.len() != count * 8 {
                return Err(malformed(format!(
                    "values body declares {count} points but carries {} bytes",
                    rest.len()
                )));
            }
            let mut values = Vec::with_capacity(count);
            for chunk in rest.chunks_exact(8) {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(chunk);
                values.push(f64::from_le_bytes(arr));
            }
            Ok(Frame::Values { tenant, values })
        }
        T_ERROR => {
            if body.len() < 7 {
                return Err(malformed("error payload shorter than its fixed fields"));
            }
            let Some(code) = ErrorCode::from_u8(body[0]) else {
                return Err(malformed(format!("unknown error code {}", body[0])));
            };
            let retry_after_ms = u32::from_le_bytes([body[1], body[2], body[3], body[4]]);
            let msg_len = u16::from_le_bytes([body[5], body[6]]) as usize;
            let Some(msg) = body.get(7..7 + msg_len) else {
                return Err(malformed("error message runs past the payload"));
            };
            if body.len() != 7 + msg_len {
                return Err(malformed("error payload longer than its declared message"));
            }
            let Ok(message) = String::from_utf8(msg.to_vec()) else {
                return Err(malformed("error message is not UTF-8"));
            };
            Ok(Frame::Error(WireError { code, retry_after_ms, message }))
        }
        T_HEALTH_REQ => {
            if !body.is_empty() {
                return Err(malformed("health request carries a body"));
            }
            Ok(Frame::HealthReq { tenant })
        }
        T_HEALTH => {
            if body.len() != HEALTH_LEN {
                return Err(malformed(format!(
                    "health body must be {HEALTH_LEN} bytes, got {}",
                    body.len()
                )));
            }
            let u64_at = |i: usize| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&body[i..i + 8]);
                u64::from_le_bytes(arr)
            };
            let u32_at = |i: usize| {
                let mut arr = [0u8; 4];
                arr.copy_from_slice(&body[i..i + 4]);
                u32::from_le_bytes(arr)
            };
            Ok(Frame::Health {
                tenant,
                health: HealthFrame {
                    quarantined: u64_at(0),
                    nonfinite_input_rejections: u64_at(8),
                    degraded_events: u64_at(16),
                    degraded_windows: u64_at(24),
                    poison_recoveries: u64_at(32),
                    panics_caught: u64_at(40),
                    queue_depth: u32_at(48),
                    queue_cap: u32_at(52),
                    active_connections: u32_at(56),
                    draining: body[60] != 0,
                },
            })
        }
        // decode_header only admits known types; keep the decoder total anyway.
        other => Err(FrameError::UnknownType { got: other }),
    }
}

fn malformed(what: impl Into<String>) -> FrameError {
    FrameError::Malformed { what: what.into() }
}

/// Reads `N` consecutive u32 fields spanning the whole body.
fn read_u32s<const N: usize>(payload: &[u8], why: &str) -> Result<[u32; N], FrameError> {
    if payload.len() != N * 4 {
        return Err(malformed(why));
    }
    let mut out = [0u32; N];
    for (k, chunk) in payload.chunks_exact(4).enumerate() {
        let mut arr = [0u8; 4];
        arr.copy_from_slice(chunk);
        out[k] = u32::from_le_bytes(arr);
    }
    Ok(out)
}

/// Decodes one frame from the front of `buf`, returning the frame and how
/// many bytes it consumed. Total: every input maps to `Ok` or a typed error.
pub fn decode(buf: &[u8], max_frame: u32) -> Result<(Frame, usize), FrameError> {
    let Some(header_bytes) = buf.get(..HEADER_LEN) else {
        return Err(FrameError::Truncated { section: "header" });
    };
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(header_bytes);
    let h = decode_header(&header, max_frame)?;
    let Some(payload) = buf.get(HEADER_LEN..HEADER_LEN + h.len as usize) else {
        return Err(FrameError::Truncated { section: "payload" });
    };
    let frame = decode_payload(h, payload)?;
    Ok((frame, HEADER_LEN + h.len as usize))
}

/// How receiving one frame from a stream can end.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// An I/O failure (including read timeouts surfacing as
    /// [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]).
    Io(io::Error),
    /// The bytes received do not form a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("peer closed the connection"),
            RecvError::Io(e) => write!(f, "i/o error receiving frame: {e}"),
            RecvError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Reads exactly one frame from `r` (blocking; the stream's own read timeout
/// governs how long it may take). A clean EOF before any byte of the frame is
/// [`RecvError::Closed`]; EOF mid-frame is a typed truncation error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, RecvError> {
    read_frame_versioned(r, max_frame).map(|(frame, _)| frame)
}

/// Like [`read_frame`] but also reports which protocol version the frame
/// arrived in, so a server can answer each request in kind.
pub fn read_frame_versioned(r: &mut impl Read, max_frame: u32) -> Result<(Frame, u8), RecvError> {
    let mut header = [0u8; HEADER_LEN];
    fill(r, &mut header, true)?;
    let h = decode_header(&header, max_frame).map_err(RecvError::Frame)?;
    let mut payload = vec![0u8; h.len as usize];
    fill(r, &mut payload, false)?;
    let frame = decode_payload(h, &payload).map_err(RecvError::Frame)?;
    Ok((frame, h.version))
}

/// Fills `buf` completely. `clean_eof_ok` marks whether a clean EOF before
/// the first byte means "peer hung up between frames" rather than truncation.
fn fill(r: &mut impl Read, buf: &mut [u8], clean_eof_ok: bool) -> Result<(), RecvError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if clean_eof_ok && filled == 0 {
                    RecvError::Closed
                } else {
                    RecvError::Frame(FrameError::Truncated {
                        section: if filled < HEADER_LEN && clean_eof_ok {
                            "header"
                        } else {
                            "payload"
                        },
                    })
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one frame to `w` in the current protocol version (blocking; the
/// stream's write timeout governs how long a non-reading peer may stall
/// this).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

/// Writes one frame in the given protocol version — the server's reply path,
/// which answers each request in the version it arrived in.
pub fn write_frame_versioned(w: &mut impl Write, frame: &Frame, version: u8) -> io::Result<()> {
    w.write_all(&encode_versioned(frame, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        let (decoded, used) = decode(&bytes, DEFAULT_MAX_FRAME).expect("roundtrip decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Query { tenant: "acme".into(), s: 3, start: 10, end: 90 });
        roundtrip(Frame::Query { tenant: String::new(), s: 3, start: 10, end: 90 });
        roundtrip(Frame::Values {
            tenant: "tenant-βeta".into(),
            values: vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE],
        });
        roundtrip(Frame::Values { tenant: String::new(), values: Vec::new() });
        roundtrip(Frame::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: 75,
            message: "serving queue full (64 pending requests); retry with backoff".into(),
        }));
        roundtrip(Frame::HealthReq { tenant: "acme".into() });
        roundtrip(Frame::Health {
            tenant: "acme".into(),
            health: HealthFrame {
                quarantined: 7,
                nonfinite_input_rejections: 1,
                degraded_events: 2,
                degraded_windows: 1,
                poison_recoveries: 0,
                panics_caught: 3,
                queue_depth: 12,
                queue_cap: 1024,
                active_connections: 9,
                draining: true,
            },
        })
    }

    #[test]
    fn v1_encoding_drops_the_tenant_and_still_decodes() {
        let frame = Frame::Query { tenant: "acme".into(), s: 1, start: 2, end: 3 };
        let bytes = encode_versioned(&frame, V1);
        assert_eq!(bytes[4], V1);
        let (decoded, used) = decode(&bytes, DEFAULT_MAX_FRAME).expect("v1 decodes");
        assert_eq!(used, bytes.len());
        // The tenant cannot ride a v1 frame: it decodes as the default.
        assert_eq!(decoded, Frame::Query { tenant: String::new(), s: 1, start: 2, end: 3 });
        // And the payload is byte-identical to what a v1 build produced:
        // 12 bytes of query body, no tenant prefix.
        assert_eq!(bytes.len(), HEADER_LEN + 12);
    }

    #[test]
    fn oversized_tenant_ids_are_truncated_at_a_char_boundary_on_encode() {
        // 32 two-byte characters = 64 bytes, then one more pushes past the
        // cap mid-character; the encoder must cut on a boundary below it.
        let tenant: String = "ß".repeat(33);
        let bytes = encode(&Frame::HealthReq { tenant });
        let (decoded, _) = decode(&bytes, DEFAULT_MAX_FRAME).expect("truncated tenant decodes");
        let Frame::HealthReq { tenant } = decoded else { panic!("wrong frame type") };
        assert_eq!(tenant.len(), 64, "must fill the cap exactly when boundaries allow");
        assert_eq!(tenant.chars().count(), 32);
    }

    #[test]
    fn wire_tenant_longer_than_the_cap_is_malformed_not_a_desync() {
        // Hand-build a v2 health-req whose tenant length byte claims 200.
        let mut payload = vec![200u8];
        payload.extend_from_slice(&[b'x'; 200]);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V2);
        bytes.push(4); // T_HEALTH_REQ
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_crc(V2, 4, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match decode(&bytes, DEFAULT_MAX_FRAME) {
            Err(FrameError::Malformed { what }) => {
                assert!(what.contains("64-byte cap"), "unexpected detail: {what}")
            }
            other => panic!("oversized tenant must be malformed, got {other:?}"),
        }
    }

    #[test]
    fn non_utf8_tenant_is_malformed() {
        let mut payload = vec![2u8, 0xff, 0xfe];
        payload.extend_from_slice(&[0; 12]); // query body
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(V2);
        bytes.push(1); // T_QUERY
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&frame_crc(V2, 1, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn bad_magic_version_and_type_are_typed() {
        let mut bytes = encode(&Frame::HealthReq { tenant: String::new() });
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic { got }) if got[0] == b'X'
        ));
        let mut bytes = encode(&Frame::HealthReq { tenant: String::new() });
        bytes[4] = 9;
        assert_eq!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::BadVersion { got: 9 }));
        let mut bytes = encode(&Frame::HealthReq { tenant: String::new() });
        bytes[5] = 77;
        assert_eq!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::UnknownType { got: 77 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload() {
        let mut bytes = encode(&Frame::HealthReq { tenant: String::new() });
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::Oversized { len: u32::MAX, max: DEFAULT_MAX_FRAME })
        );
    }

    #[test]
    fn any_single_bit_flip_is_detected_or_changes_nothing_semantic() {
        // A flip in magic/version/type/len fails structurally; a flip in CRC
        // or payload fails the checksum. No flip decodes to a *different*
        // valid frame.
        let frame = Frame::Query { tenant: "acme".into(), s: 1, start: 2, end: 3 };
        let clean = encode(&frame);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                match decode(&bytes, DEFAULT_MAX_FRAME) {
                    Err(_) => {}
                    Ok((decoded, _)) => {
                        assert_eq!(decoded, frame, "bit flip at {byte}:{bit} changed the frame")
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode(&Frame::Values { tenant: "t".into(), values: vec![1.0, 2.0, 3.0] });
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode(&bytes[..cut], DEFAULT_MAX_FRAME),
                    Err(FrameError::Truncated { .. })
                ),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn values_count_must_match_payload() {
        let mut bytes = encode(&Frame::Values { tenant: String::new(), values: vec![1.0, 2.0] });
        // Claim 3 points while carrying 2. The v2 payload opens with the
        // 1-byte empty tenant prefix, so the count sits one past the header;
        // count is inside the CRC, so fix the CRC up to isolate the
        // malformed-payload check.
        bytes[HEADER_LEN + 1..HEADER_LEN + 5].copy_from_slice(&3u32.to_le_bytes());
        let crc = frame_crc(VERSION, bytes[5], &bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn serve_error_mapping_hits_the_distinct_codes() {
        let overloaded = WireError::from_serve(&ServeError::Overloaded { capacity: 8 }, 40);
        assert_eq!(overloaded.code, ErrorCode::Overloaded);
        assert_eq!(overloaded.retry_after_ms, 40);
        assert!(overloaded.code.retryable());

        let deadline = WireError::from_serve(&ServeError::DeadlineExceeded, 40);
        assert_eq!(deadline.code, ErrorCode::DeadlineExceeded);
        assert_eq!(deadline.retry_after_ms, 0, "a deadline reply carries no retry hint");
        assert!(!deadline.code.retryable());

        let shutdown = WireError::from_serve(&ServeError::Shutdown, 40);
        assert_eq!(shutdown.code, ErrorCode::Shutdown);
        assert_eq!(shutdown.retry_after_ms, 40);
        assert!(!shutdown.code.retryable());

        let disconnected = WireError::from_serve(&ServeError::Disconnected, 40);
        assert_eq!(disconnected.code, ErrorCode::Disconnected);

        let invalid = WireError::from_serve(&ServeError::Series { s: 9, n_series: 3 }, 40);
        assert_eq!(invalid.code, ErrorCode::Invalid);
        assert!(invalid.message.contains('9'), "display text rides along: {invalid:?}");

        let unknown =
            WireError::from_serve(&ServeError::UnknownTenant { tenant: "ghost".into() }, 40);
        assert_eq!(unknown.code, ErrorCode::UnknownTenant);
        assert_eq!(unknown.retry_after_ms, 0, "an unknown tenant never resolves by waiting");
        assert!(!unknown.code.retryable());

        let loading =
            WireError::from_serve(&ServeError::TenantLoading { tenant: "acme".into() }, 40);
        assert_eq!(loading.code, ErrorCode::TenantLoading);
        assert_eq!(loading.retry_after_ms, 40, "a loading reply carries the backoff hint");
        assert!(loading.code.retryable(), "the request was shed before execution");

        let full = WireError::from_serve(&ServeError::RegistryFull { capacity: 4 }, 40);
        assert_eq!(full.code, ErrorCode::RegistryFull);
        assert_eq!(full.retry_after_ms, 0);
        assert!(!full.code.retryable());
    }
}
