//! The wire format: length-prefixed, CRC-32-checked frames.
//!
//! Every frame is laid out as
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MVIF"
//! 4       1     protocol version (currently 1)
//! 5       1     frame type
//! 6       4     payload length, u32 LE (capped by the receiver's max frame)
//! 10      4     CRC-32 (IEEE) over bytes 4..10 plus the payload
//! 14      len   payload
//! ```
//!
//! so a receiver can always decide, with bounded memory, whether the bytes in
//! front of it are a well-formed frame *before* acting on them:
//!
//! * a wrong magic or version is rejected immediately ([`FrameError::BadMagic`]
//!   / [`FrameError::BadVersion`]) — the stream is not speaking this protocol;
//! * a length prefix above the configured cap is rejected *before any payload
//!   is read* ([`FrameError::Oversized`]) — a hostile or bit-flipped length
//!   can never make the receiver allocate unbounded memory;
//! * the checksum covers the version, type and length bytes as well as the
//!   payload, so a bit flip anywhere in the frame surfaces as
//!   [`FrameError::Checksum`] instead of silently corrupt data (a flipped
//!   length field shifts the CRC input and fails the same way);
//! * a stream that ends mid-frame is [`FrameError::Truncated`].
//!
//! Decoding is **total**: any byte sequence maps to a frame or a typed
//! [`FrameError`] — never a panic, never an unbounded read. The fuzz suite
//! (`crates/net/tests/frame_fuzz.rs`) pins that contract the same way the
//! snapshot codec's fuzz tests do.

use mvi_serve::durable::crc32;
use mvi_serve::ServeError;
use std::io::{self, Read, Write};

/// Leading magic bytes of every frame.
pub const MAGIC: [u8; 4] = *b"MVIF";
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size (magic + version + type + length + CRC).
pub const HEADER_LEN: usize = 14;
/// Default cap on one frame's payload (1 MiB). A `Values` reply of this size
/// carries ~128k points — far above any sane request — while bounding what a
/// hostile length prefix can make either side allocate.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Frame type tags (the byte at offset 5).
const T_QUERY: u8 = 1;
const T_VALUES: u8 = 2;
const T_ERROR: u8 = 3;
const T_HEALTH_REQ: u8 = 4;
const T_HEALTH: u8 = 5;

/// Why a byte sequence failed to decode as a frame. Every variant is a typed,
/// recoverable error: codec failures never panic and never hang.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes are not [`MAGIC`] — the peer is not speaking this
    /// protocol (or the stream lost frame alignment).
    BadMagic {
        /// The four bytes actually read.
        got: [u8; 4],
    },
    /// Unsupported protocol version byte.
    BadVersion {
        /// The version byte actually read.
        got: u8,
    },
    /// Unknown frame-type byte.
    UnknownType {
        /// The type byte actually read.
        got: u8,
    },
    /// The length prefix exceeds the receiver's configured cap; rejected
    /// before any payload is read.
    Oversized {
        /// The declared payload length.
        len: u32,
        /// The receiver's cap.
        max: u32,
    },
    /// The CRC-32 recorded in the header does not match the bytes received —
    /// a bit flip somewhere in version/type/length/payload.
    Checksum {
        /// The checksum the header promised.
        expected: u32,
        /// The checksum of the bytes actually received.
        actual: u32,
    },
    /// The stream ended (or the buffer ran out) in the middle of a frame.
    Truncated {
        /// Which part of the frame was cut short (`"header"` / `"payload"`).
        section: &'static str,
    },
    /// The payload length or contents do not match what the frame type
    /// requires (wrong size, bad UTF-8, unknown error code, …).
    Malformed {
        /// What exactly was malformed.
        what: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic { got } => {
                write!(f, "bad frame magic {got:02x?} (expected `MVIF`)")
            }
            FrameError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (this build speaks {VERSION})")
            }
            FrameError::UnknownType { got } => write!(f, "unknown frame type {got}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Checksum { expected, actual } => {
                write!(f, "frame checksum mismatch: header says {expected:08x}, got {actual:08x}")
            }
            FrameError::Truncated { section } => write!(f, "stream ended mid-frame ({section})"),
            FrameError::Malformed { what } => write!(f, "malformed frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Wire error codes: the protocol-level classification a client can act on
/// without parsing the human-readable message. `Overloaded` is the only code
/// a client may retry on its own — everything else is either a permanent
/// request property or ambiguous about whether the request executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request itself is invalid (bad series id, bad range, geometry).
    /// Retrying the identical request can never succeed.
    Invalid = 1,
    /// The range touches time the server's retention ring already evicted.
    Evicted = 2,
    /// Admission control shed the request (full pending queue or connection
    /// cap). The request was **not** executed; retry after the carried
    /// `retry_after_ms` hint.
    Overloaded = 3,
    /// The server-side deadline elapsed before the request's batch replied.
    /// The evaluation may still complete in the background, so a retry is
    /// not known-safe; the typed code lets the caller decide.
    DeadlineExceeded = 4,
    /// The request's micro-batch panicked in the executor (caught; the
    /// server keeps serving).
    Panicked = 5,
    /// The server is draining: the request was answered with the typed
    /// shutdown reply instead of silence. Reconnect after `retry_after_ms`.
    Shutdown = 6,
    /// The executor's reply channel disconnected without an answer — a
    /// crash-shaped loss, distinct from the deliberate [`ErrorCode::Shutdown`]
    /// drain reply.
    Disconnected = 7,
    /// Server-side internal error (snapshot corruption and other faults that
    /// are not a property of this request).
    Internal = 8,
    /// The server could not decode what this connection sent (bad magic,
    /// checksum mismatch, oversized length, …). Sent best-effort before the
    /// server closes the connection, since frame alignment is lost.
    BadFrame = 9,
}

impl ErrorCode {
    /// Decodes the wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::Invalid),
            2 => Some(ErrorCode::Evicted),
            3 => Some(ErrorCode::Overloaded),
            4 => Some(ErrorCode::DeadlineExceeded),
            5 => Some(ErrorCode::Panicked),
            6 => Some(ErrorCode::Shutdown),
            7 => Some(ErrorCode::Disconnected),
            8 => Some(ErrorCode::Internal),
            9 => Some(ErrorCode::BadFrame),
            _ => None,
        }
    }

    /// Whether a client may retry the identical request on this code alone.
    /// Only [`ErrorCode::Overloaded`] qualifies: the server states the
    /// request was shed *before* execution, so a retry is idempotent-safe.
    pub fn retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded)
    }

    /// The stable lowercase name used in messages and logs.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Invalid => "invalid",
            ErrorCode::Evicted => "evicted",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Panicked => "panicked",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Disconnected => "disconnected",
            ErrorCode::Internal => "internal",
            ErrorCode::BadFrame => "bad-frame",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed error reply frame: code + optional retry-after hint + message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Protocol-level classification.
    pub code: ErrorCode,
    /// Backoff hint in milliseconds (`0` = no hint). Carried by shed/drain
    /// replies so clients back off by the server's clock, not a guess.
    pub retry_after_ms: u32,
    /// Human-readable detail (the server-side error's Display text).
    pub message: String,
}

impl WireError {
    /// Maps a serving-layer error onto its wire code. `retry_after_ms` is the
    /// server's backoff hint, attached to the codes where a retry is
    /// meaningful (`Overloaded`, `Shutdown`).
    pub fn from_serve(err: &ServeError, retry_after_ms: u32) -> Self {
        let (code, hint) = match err {
            ServeError::Overloaded { .. } => (ErrorCode::Overloaded, retry_after_ms),
            ServeError::DeadlineExceeded => (ErrorCode::DeadlineExceeded, 0),
            ServeError::Shutdown => (ErrorCode::Shutdown, retry_after_ms),
            ServeError::Disconnected => (ErrorCode::Disconnected, 0),
            ServeError::Panicked => (ErrorCode::Panicked, 0),
            ServeError::Evicted { .. } => (ErrorCode::Evicted, 0),
            ServeError::Geometry(_)
            | ServeError::NonFiniteInput { .. }
            | ServeError::Series { .. }
            | ServeError::Range { .. }
            | ServeError::NonFiniteWeights { .. } => (ErrorCode::Invalid, 0),
            ServeError::Corrupt { .. } | ServeError::Snapshot(_) => (ErrorCode::Internal, 0),
        };
        Self { code, retry_after_ms: hint, message: err.to_string() }
    }
}

/// The serving health surface as one binary frame: the engine's
/// [`HealthReport`](mvi_serve::HealthReport) counters plus the front door's
/// own state (queue depth, connection count, drain flag).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthFrame {
    /// Values quarantined by the engine's `ValueGuard`.
    pub quarantined: u64,
    /// Mutations rejected for carrying NaN/±inf.
    pub nonfinite_input_rejections: u64,
    /// Windows that degraded to the mean-baseline fallback (monotonic).
    pub degraded_events: u64,
    /// Windows currently serving the fallback.
    pub degraded_windows: u64,
    /// State-lock poison recoveries.
    pub poison_recoveries: u64,
    /// Panics the micro-batcher's supervisor has caught.
    pub panics_caught: u64,
    /// Requests currently queued (or being submitted) at the batcher.
    pub queue_depth: u32,
    /// The batcher's bounded queue capacity.
    pub queue_cap: u32,
    /// Connections currently served.
    pub active_connections: u32,
    /// Whether the server is draining (shutting down gracefully).
    pub draining: bool,
}

const HEALTH_LEN: usize = 6 * 8 + 3 * 4 + 1;

/// One decoded protocol frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: impute series `s` over `[start, end)`.
    Query {
        /// Flat series id.
        s: u32,
        /// Range start (inclusive).
        start: u32,
        /// Range end (exclusive).
        end: u32,
    },
    /// Server → client: the fully-imputed values of the requested range.
    Values(Vec<f64>),
    /// Server → client: a typed error reply.
    Error(WireError),
    /// Client → server: report serving health.
    HealthReq,
    /// Server → client: the health counters.
    Health(HealthFrame),
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Query { .. } => T_QUERY,
            Frame::Values(_) => T_VALUES,
            Frame::Error(_) => T_ERROR,
            Frame::HealthReq => T_HEALTH_REQ,
            Frame::Health(_) => T_HEALTH,
        }
    }
}

/// Encodes one frame into its complete byte representation (header +
/// payload), ready to write to a stream.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match frame {
        Frame::Query { s, start, end } => {
            payload.extend_from_slice(&s.to_le_bytes());
            payload.extend_from_slice(&start.to_le_bytes());
            payload.extend_from_slice(&end.to_le_bytes());
        }
        Frame::Values(values) => {
            payload.extend_from_slice(&(values.len() as u32).to_le_bytes());
            for v in values {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        Frame::Error(e) => {
            let msg = e.message.as_bytes();
            let msg = &msg[..msg.len().min(u16::MAX as usize)];
            payload.push(e.code as u8);
            payload.extend_from_slice(&e.retry_after_ms.to_le_bytes());
            payload.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            payload.extend_from_slice(msg);
        }
        Frame::HealthReq => {}
        Frame::Health(h) => {
            for v in [
                h.quarantined,
                h.nonfinite_input_rejections,
                h.degraded_events,
                h.degraded_windows,
                h.poison_recoveries,
                h.panics_caught,
            ] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            for v in [h.queue_depth, h.queue_cap, h.active_connections] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            payload.push(h.draining as u8);
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.type_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(VERSION, frame.type_byte(), &payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The frame checksum: CRC-32 over version, type, payload length and the
/// payload bytes (the magic is excluded — it is a constant).
fn frame_crc(version: u8, ftype: u8, payload: &[u8]) -> u32 {
    let mut input = Vec::with_capacity(6 + payload.len());
    input.push(version);
    input.push(ftype);
    input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    input.extend_from_slice(payload);
    crc32(&input)
}

/// A validated header: frame type, payload length, expected CRC.
#[derive(Clone, Copy, Debug)]
pub struct Header {
    /// The frame-type byte (already validated as known).
    pub ftype: u8,
    /// Declared payload length (already validated against the cap).
    pub len: u32,
    /// The checksum the payload must match.
    pub crc: u32,
}

/// Validates the fixed-size header: magic, version, known type, capped
/// length. Cheap enough to run before committing to read any payload.
pub fn decode_header(header: &[u8; HEADER_LEN], max_frame: u32) -> Result<Header, FrameError> {
    if header[0..4] != MAGIC {
        let mut got = [0u8; 4];
        got.copy_from_slice(&header[0..4]);
        return Err(FrameError::BadMagic { got });
    }
    if header[4] != VERSION {
        return Err(FrameError::BadVersion { got: header[4] });
    }
    let ftype = header[5];
    if !(T_QUERY..=T_HEALTH).contains(&ftype) {
        return Err(FrameError::UnknownType { got: ftype });
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > max_frame {
        return Err(FrameError::Oversized { len, max: max_frame });
    }
    let crc = u32::from_le_bytes([header[10], header[11], header[12], header[13]]);
    Ok(Header { ftype, len, crc })
}

/// Decodes a payload against its validated header (checksum first, then the
/// per-type layout).
pub fn decode_payload(header: Header, payload: &[u8]) -> Result<Frame, FrameError> {
    let actual = frame_crc(VERSION, header.ftype, payload);
    if actual != header.crc {
        return Err(FrameError::Checksum { expected: header.crc, actual });
    }
    match header.ftype {
        T_QUERY => {
            let [s, start, end] = read_u32s::<3>(payload, "query payload must be 12 bytes")?;
            Ok(Frame::Query { s, start, end })
        }
        T_VALUES => {
            if payload.len() < 4 {
                return Err(malformed("values payload shorter than its count field"));
            }
            let count =
                u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
            let body = &payload[4..];
            if body.len() != count * 8 {
                return Err(malformed(format!(
                    "values payload declares {count} points but carries {} bytes",
                    body.len()
                )));
            }
            let mut values = Vec::with_capacity(count);
            for chunk in body.chunks_exact(8) {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(chunk);
                values.push(f64::from_le_bytes(arr));
            }
            Ok(Frame::Values(values))
        }
        T_ERROR => {
            if payload.len() < 7 {
                return Err(malformed("error payload shorter than its fixed fields"));
            }
            let Some(code) = ErrorCode::from_u8(payload[0]) else {
                return Err(malformed(format!("unknown error code {}", payload[0])));
            };
            let retry_after_ms =
                u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]);
            let msg_len = u16::from_le_bytes([payload[5], payload[6]]) as usize;
            let Some(msg) = payload.get(7..7 + msg_len) else {
                return Err(malformed("error message runs past the payload"));
            };
            if payload.len() != 7 + msg_len {
                return Err(malformed("error payload longer than its declared message"));
            }
            let Ok(message) = String::from_utf8(msg.to_vec()) else {
                return Err(malformed("error message is not UTF-8"));
            };
            Ok(Frame::Error(WireError { code, retry_after_ms, message }))
        }
        T_HEALTH_REQ => {
            if !payload.is_empty() {
                return Err(malformed("health request carries a payload"));
            }
            Ok(Frame::HealthReq)
        }
        T_HEALTH => {
            if payload.len() != HEALTH_LEN {
                return Err(malformed(format!(
                    "health payload must be {HEALTH_LEN} bytes, got {}",
                    payload.len()
                )));
            }
            let u64_at = |i: usize| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&payload[i..i + 8]);
                u64::from_le_bytes(arr)
            };
            let u32_at = |i: usize| {
                let mut arr = [0u8; 4];
                arr.copy_from_slice(&payload[i..i + 4]);
                u32::from_le_bytes(arr)
            };
            Ok(Frame::Health(HealthFrame {
                quarantined: u64_at(0),
                nonfinite_input_rejections: u64_at(8),
                degraded_events: u64_at(16),
                degraded_windows: u64_at(24),
                poison_recoveries: u64_at(32),
                panics_caught: u64_at(40),
                queue_depth: u32_at(48),
                queue_cap: u32_at(52),
                active_connections: u32_at(56),
                draining: payload[60] != 0,
            }))
        }
        // decode_header only admits known types; keep the decoder total anyway.
        other => Err(FrameError::UnknownType { got: other }),
    }
}

fn malformed(what: impl Into<String>) -> FrameError {
    FrameError::Malformed { what: what.into() }
}

/// Reads `N` consecutive u32 fields spanning the whole payload.
fn read_u32s<const N: usize>(payload: &[u8], why: &str) -> Result<[u32; N], FrameError> {
    if payload.len() != N * 4 {
        return Err(malformed(why));
    }
    let mut out = [0u32; N];
    for (k, chunk) in payload.chunks_exact(4).enumerate() {
        let mut arr = [0u8; 4];
        arr.copy_from_slice(chunk);
        out[k] = u32::from_le_bytes(arr);
    }
    Ok(out)
}

/// Decodes one frame from the front of `buf`, returning the frame and how
/// many bytes it consumed. Total: every input maps to `Ok` or a typed error.
pub fn decode(buf: &[u8], max_frame: u32) -> Result<(Frame, usize), FrameError> {
    let Some(header_bytes) = buf.get(..HEADER_LEN) else {
        return Err(FrameError::Truncated { section: "header" });
    };
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(header_bytes);
    let h = decode_header(&header, max_frame)?;
    let Some(payload) = buf.get(HEADER_LEN..HEADER_LEN + h.len as usize) else {
        return Err(FrameError::Truncated { section: "payload" });
    };
    let frame = decode_payload(h, payload)?;
    Ok((frame, HEADER_LEN + h.len as usize))
}

/// How receiving one frame from a stream can end.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// An I/O failure (including read timeouts surfacing as
    /// [`io::ErrorKind::WouldBlock`] / [`io::ErrorKind::TimedOut`]).
    Io(io::Error),
    /// The bytes received do not form a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Closed => f.write_str("peer closed the connection"),
            RecvError::Io(e) => write!(f, "i/o error receiving frame: {e}"),
            RecvError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RecvError {}

/// Reads exactly one frame from `r` (blocking; the stream's own read timeout
/// governs how long it may take). A clean EOF before any byte of the frame is
/// [`RecvError::Closed`]; EOF mid-frame is a typed truncation error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Frame, RecvError> {
    let mut header = [0u8; HEADER_LEN];
    fill(r, &mut header, true)?;
    let h = decode_header(&header, max_frame).map_err(RecvError::Frame)?;
    let mut payload = vec![0u8; h.len as usize];
    fill(r, &mut payload, false)?;
    decode_payload(h, &payload).map_err(RecvError::Frame)
}

/// Fills `buf` completely. `clean_eof_ok` marks whether a clean EOF before
/// the first byte means "peer hung up between frames" rather than truncation.
fn fill(r: &mut impl Read, buf: &mut [u8], clean_eof_ok: bool) -> Result<(), RecvError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if clean_eof_ok && filled == 0 {
                    RecvError::Closed
                } else {
                    RecvError::Frame(FrameError::Truncated {
                        section: if filled < HEADER_LEN && clean_eof_ok {
                            "header"
                        } else {
                            "payload"
                        },
                    })
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one frame to `w` (blocking; the stream's write timeout governs how
/// long a non-reading peer may stall this).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let bytes = encode(&frame);
        let (decoded, used) = decode(&bytes, DEFAULT_MAX_FRAME).expect("roundtrip decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn every_frame_type_roundtrips() {
        roundtrip(Frame::Query { s: 3, start: 10, end: 90 });
        roundtrip(Frame::Values(vec![1.5, -2.25, 0.0, f64::MIN_POSITIVE]));
        roundtrip(Frame::Values(Vec::new()));
        roundtrip(Frame::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: 75,
            message: "serving queue full (64 pending requests); retry with backoff".into(),
        }));
        roundtrip(Frame::HealthReq);
        roundtrip(Frame::Health(HealthFrame {
            quarantined: 7,
            nonfinite_input_rejections: 1,
            degraded_events: 2,
            degraded_windows: 1,
            poison_recoveries: 0,
            panics_caught: 3,
            queue_depth: 12,
            queue_cap: 1024,
            active_connections: 9,
            draining: true,
        }));
    }

    #[test]
    fn bad_magic_version_and_type_are_typed() {
        let mut bytes = encode(&Frame::HealthReq);
        bytes[0] = b'X';
        assert!(matches!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::BadMagic { got }) if got[0] == b'X'
        ));
        let mut bytes = encode(&Frame::HealthReq);
        bytes[4] = 9;
        assert_eq!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::BadVersion { got: 9 }));
        let mut bytes = encode(&Frame::HealthReq);
        bytes[5] = 77;
        assert_eq!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::UnknownType { got: 77 }));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_payload() {
        let mut bytes = encode(&Frame::HealthReq);
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            decode(&bytes, DEFAULT_MAX_FRAME),
            Err(FrameError::Oversized { len: u32::MAX, max: DEFAULT_MAX_FRAME })
        );
    }

    #[test]
    fn any_single_bit_flip_is_detected_or_changes_nothing_semantic() {
        // A flip in magic/version/type/len fails structurally; a flip in CRC
        // or payload fails the checksum. No flip decodes to a *different*
        // valid frame.
        let frame = Frame::Query { s: 1, start: 2, end: 3 };
        let clean = encode(&frame);
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                match decode(&bytes, DEFAULT_MAX_FRAME) {
                    Err(_) => {}
                    Ok((decoded, _)) => {
                        assert_eq!(decoded, frame, "bit flip at {byte}:{bit} changed the frame")
                    }
                }
            }
        }
    }

    #[test]
    fn truncation_is_typed_at_every_length() {
        let bytes = encode(&Frame::Values(vec![1.0, 2.0, 3.0]));
        for cut in 0..bytes.len() {
            assert!(
                matches!(
                    decode(&bytes[..cut], DEFAULT_MAX_FRAME),
                    Err(FrameError::Truncated { .. })
                ),
                "cut at {cut} must be a typed truncation"
            );
        }
    }

    #[test]
    fn values_count_must_match_payload() {
        let mut bytes = encode(&Frame::Values(vec![1.0, 2.0]));
        // Claim 3 points while carrying 2: count is inside the CRC, so fix
        // the CRC up to isolate the malformed-payload check.
        bytes[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&3u32.to_le_bytes());
        let crc = frame_crc(VERSION, bytes[5], &bytes[HEADER_LEN..]);
        bytes[10..14].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode(&bytes, DEFAULT_MAX_FRAME), Err(FrameError::Malformed { .. })));
    }

    #[test]
    fn serve_error_mapping_hits_the_distinct_codes() {
        let overloaded = WireError::from_serve(&ServeError::Overloaded { capacity: 8 }, 40);
        assert_eq!(overloaded.code, ErrorCode::Overloaded);
        assert_eq!(overloaded.retry_after_ms, 40);
        assert!(overloaded.code.retryable());

        let deadline = WireError::from_serve(&ServeError::DeadlineExceeded, 40);
        assert_eq!(deadline.code, ErrorCode::DeadlineExceeded);
        assert_eq!(deadline.retry_after_ms, 0, "a deadline reply carries no retry hint");
        assert!(!deadline.code.retryable());

        let shutdown = WireError::from_serve(&ServeError::Shutdown, 40);
        assert_eq!(shutdown.code, ErrorCode::Shutdown);
        assert_eq!(shutdown.retry_after_ms, 40);
        assert!(!shutdown.code.retryable());

        let disconnected = WireError::from_serve(&ServeError::Disconnected, 40);
        assert_eq!(disconnected.code, ErrorCode::Disconnected);

        let invalid = WireError::from_serve(&ServeError::Series { s: 9, n_series: 3 }, 40);
        assert_eq!(invalid.code, ErrorCode::Invalid);
        assert!(invalid.message.contains('9'), "display text rides along: {invalid:?}");
    }
}
