//! `mvi-net` — the resilient network front door for the DeepMVI serving
//! engine: a framed-TCP server and blocking client over `std::net`, no
//! async runtime required.
//!
//! The crate exists to put a **failure domain boundary** on the wire in
//! front of [`mvi_serve`]'s in-process serving stack:
//!
//! * [`frame`] — the wire codec. Length-prefixed, CRC-32-checked frames
//!   with a version byte and a hard size cap. Frame **v2** carries a tenant
//!   id on every request/reply (empty = default tenant); v1 frames still
//!   decode and route to the default tenant, and the server answers each
//!   request in the version it arrived in. Decoding is *total*: every
//!   byte sequence maps to either a frame or a typed [`frame::FrameError`]
//!   — malformed, truncated, bit-flipped or oversized input can never
//!   panic the peer, hang it, or make it allocate unboundedly.
//! * [`server`] — [`NetServer`]: a thread-per-connection acceptor routing
//!   by tenant id through a [`mvi_serve::ModelRegistry`]
//!   ([`NetServer::bind_registry`]; [`NetServer::bind`] is the one-model
//!   special case), with a hard connection cap (admission control),
//!   idle-connection reaping, per-request deadlines through one supervised
//!   [`mvi_serve::MicroBatcher`] **per tenant** — the cross-tenant
//!   isolation boundary — and a graceful drain that answers every accepted
//!   request with a typed reply before closing.
//! * [`client`] — [`NetClient`]: a blocking client with connect/read/write
//!   timeouts, an optional tenant handle ([`NetClient::with_tenant`]), and
//!   a seeded, deterministic retry/backoff loop that retries **only**
//!   errors typed as safe to retry (load shedding, a tenant snapshot
//!   mid-load, connect refused mid-restart) and never an ambiguous
//!   in-flight write.
//!
//! Every error the server can produce crosses the wire as a typed
//! [`frame::ErrorCode`], so clients make retry decisions on contracts, not
//! string matching. See `ARCHITECTURE.md` § "Network front door & failure
//! domains" for the frame format and the full error-code table.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mvi_net::{NetClient, NetServer, ClientConfig, ServerConfig};
//! use mvi_serve::ImputationEngine;
//! # use deepmvi::{DeepMviConfig, DeepMviModel};
//! # use mvi_data::generators::{generate_with_shape, DatasetName};
//! # use mvi_data::scenarios::Scenario;
//!
//! # let ds = generate_with_shape(DatasetName::Gas, &[2], 60, 4);
//! # let obs = Scenario::mcar(0.8).apply(&ds, 1).observed();
//! # let cfg = DeepMviConfig { max_steps: 2, ..DeepMviConfig::tiny() };
//! # let mut model = DeepMviModel::new(&cfg, &obs);
//! # model.fit(&obs);
//! let engine = Arc::new(ImputationEngine::new(model.freeze(), obs).unwrap());
//! let server = NetServer::bind("127.0.0.1:0", engine, ServerConfig::default()).unwrap();
//!
//! let mut client = NetClient::new(server.local_addr(), ClientConfig::default());
//! let values = client.query(0, 10, 20).unwrap(); // imputed window for series 0
//! assert_eq!(values.len(), 10);
//! let health = client.health().unwrap();         // fault counters over the wire
//! assert!(!health.draining);
//!
//! server.shutdown();                             // graceful drain
//! ```

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientConfig, NetClient, NetError, RetryPolicy};
pub use frame::{
    ErrorCode, Frame, FrameError, HealthFrame, WireError, DEFAULT_MAX_FRAME, MAX_TENANT_LEN,
};
pub use server::{NetServer, NetStats, ServerConfig, DEFAULT_TENANT};
