//! The framed-TCP server: a thread-per-connection acceptor routing requests
//! through a [`ModelRegistry`] of tenants, each behind its own supervised
//! [`MicroBatcher`] door, built fault-first.
//!
//! ## Tenancy
//!
//! Every request names a tenant (frame v2; v1 frames and empty tenant ids
//! route to [`DEFAULT_TENANT`]). The server resolves the tenant through the
//! registry — which may load its snapshot on demand or answer with the typed
//! `UnknownTenant` / `TenantLoading` / `RegistryFull` codes — and submits the
//! query to that tenant's **own** micro-batcher. Per-tenant batchers are the
//! isolation boundary: one tenant's panic storm, quarantine flood, or
//! deadline stall saturates only its own bounded queue and supervisor;
//! other tenants' queues, threads and latency are untouched. Replies are
//! written in the protocol version the request arrived in, so v1 peers keep
//! speaking v1.
//!
//! ## Failure posture
//!
//! * **Admission control** — a hard connection cap: connections beyond
//!   [`ServerConfig::max_connections`] are answered with a typed
//!   `Overloaded` error frame (carrying the retry-after hint) and closed,
//!   never silently queued. Requests beyond the batcher's bounded queue shed
//!   the same way through [`ServeError::Overloaded`].
//! * **Hostile input is survivable** — every connection reads through the
//!   total frame decoder: garbage, truncation, bit flips and oversized
//!   length prefixes produce one best-effort `BadFrame` error frame and a
//!   closed connection (framing alignment is gone), never a panic, never an
//!   unbounded allocation, never a wedged thread.
//! * **Idle and half-open connections are reaped** — a connection that
//!   neither completes a frame nor closes within
//!   [`ServerConfig::idle_timeout`] is dropped, whether it is silent
//!   (half-open TCP) or trickling bytes (slow-loris-shaped).
//! * **Deadlines** — [`ServerConfig::batcher`] carries the per-request
//!   deadline into the [`MicroBatcher`]; a stalled evaluation frees the
//!   client with a typed `DeadlineExceeded` frame while the connection stays
//!   usable for the next request.
//! * **Graceful drain** — [`NetServer::shutdown`]: stop accepting, let
//!   connection threads finish the request they are on, answer every queued
//!   request with the typed `Shutdown` frame (the batcher's drain), then
//!   close. Zero accepted requests are dropped without a reply frame.
//!
//! The acceptor polls a non-blocking listener and connection reads tick at
//! [`ServerConfig::tick`], so drain and reap latencies are bounded by the
//! tick without any async runtime (the container is `std`-only by design).

use crate::frame::{
    decode_header, decode_payload, write_frame_versioned, ErrorCode, Frame, FrameError, Header,
    HealthFrame, WireError, DEFAULT_MAX_FRAME, HEADER_LEN, V1,
};
use mvi_serve::{
    BatchClient, BatcherConfig, ImputationEngine, MicroBatcher, ModelRegistry, RegistryConfig,
    ServeError,
};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The tenant that v1 frames — and v2 frames with an empty tenant id — route
/// to. [`NetServer::bind`] registers its single engine under this id.
pub const DEFAULT_TENANT: &str = "default";

/// Tuning for [`NetServer::bind`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Hard cap on concurrently served connections; arrivals beyond it get a
    /// typed `Overloaded` frame and are closed (admission control).
    pub max_connections: usize,
    /// Largest frame payload accepted from a client.
    pub max_frame: u32,
    /// Connections with no completed frame for this long are reaped — idle,
    /// half-open, and byte-trickling connections alike.
    pub idle_timeout: Duration,
    /// Poll granularity for connection reads and the acceptor: bounds drain
    /// and reap latency. Keep well under `idle_timeout`.
    pub tick: Duration,
    /// Write timeout per reply frame: a client that stops reading cannot
    /// wedge a connection thread past this.
    pub write_timeout: Duration,
    /// The `retry_after_ms` hint attached to shed (`Overloaded`) and drain
    /// (`Shutdown`) replies.
    pub retry_after_ms: u32,
    /// Micro-batcher tuning: queue bound (load shedding), batch size, and
    /// the per-request deadline. The default sets a 2 s deadline so no wire
    /// request — and no drain — can block unboundedly on a stuck evaluation.
    pub batcher: BatcherConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_frame: DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(20),
            write_timeout: Duration::from_secs(5),
            retry_after_ms: 50,
            batcher: BatcherConfig {
                deadline: Some(Duration::from_secs(2)),
                ..BatcherConfig::default()
            },
        }
    }
}

/// Point-in-time front-door counters ([`NetServer::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections currently being served.
    pub active_connections: usize,
    /// Connections accepted into service (monotonic).
    pub accepted: u64,
    /// Connections refused by the admission cap (monotonic).
    pub rejected: u64,
    /// Connections dropped for an undecodable frame (monotonic).
    pub bad_frames: u64,
    /// Query frames served (monotonic; health frames not counted).
    pub requests: u64,
}

/// One tenant's serving door: its resolved engine plus the micro-batcher
/// supervising it. The engine handle detects staleness — after an evict +
/// reload the registry hands out a *new* engine, and the door is rebuilt so
/// requests never reach a dropped engine through an old batcher.
struct TenantDoor {
    engine: Arc<ImputationEngine>,
    batcher: MicroBatcher,
}

struct Shared {
    config: ServerConfig,
    registry: Arc<ModelRegistry>,
    /// Per-tenant doors, built lazily on first traffic. Taken (and dropped,
    /// triggering every queue's drain) during shutdown; requests arriving
    /// mid-drain see `None` and answer the typed `Shutdown` reply.
    doors: Mutex<Option<HashMap<String, TenantDoor>>>,
    draining: AtomicBool,
    conns: AtomicUsize,
    accepted: AtomicU64,
    rejected: AtomicU64,
    bad_frames: AtomicU64,
    requests: AtomicU64,
    /// Clones of live connection streams, for the crash-style [`NetServer::kill`].
    streams: Mutex<Vec<(u64, TcpStream)>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The running server: owns the acceptor thread, the connection threads and
/// the [`MicroBatcher`]. Dropping it performs a graceful drain (same as
/// [`NetServer::shutdown`]).
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<Vec<JoinHandle<()>>>>,
    stopped: bool,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an ephemeral port; see
    /// [`NetServer::local_addr`]) and serves a single `engine`, registered as
    /// [`DEFAULT_TENANT`] in a capacity-1 registry — the one-model deployment
    /// as a special case of [`NetServer::bind_registry`]. The sole tenant can
    /// never be evicted, so the wrapper registry's spill directory is never
    /// written.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<ImputationEngine>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let registry = Arc::new(ModelRegistry::new(RegistryConfig::new(
            1,
            std::env::temp_dir().join("mvi-net-default-spill"),
        )));
        registry
            .register(DEFAULT_TENANT, engine)
            .map_err(|e| io::Error::other(e.to_string()))?;
        Self::bind_registry(addr, registry, config)
    }

    /// Binds `addr` and serves every tenant in `registry`, each behind its
    /// own lazily-spawned micro-batcher built from `config.batcher`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind_registry(
        addr: impl ToSocketAddrs,
        registry: Arc<ModelRegistry>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            config,
            registry,
            doors: Mutex::new(Some(HashMap::new())),
            draining: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bad_frames: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            streams: Mutex::new(Vec::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(listener, acceptor_shared));
        Ok(Self { shared, local_addr, acceptor: Some(acceptor), stopped: false })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Front-door counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            active_connections: self.shared.conns.load(Ordering::Relaxed),
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            bad_frames: self.shared.bad_frames.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
        }
    }

    /// Panics the per-tenant batcher supervisors have caught, summed over
    /// every door (`0` while healthy; `None` once the doors have been torn
    /// down by a drain).
    pub fn panics_caught(&self) -> Option<u64> {
        lock(&self.shared.doors)
            .as_ref()
            .map(|doors| doors.values().map(|d| d.batcher.panics_caught()).sum())
    }

    /// The model registry being served.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.shared.registry
    }

    /// Graceful drain: stop accepting, finish every in-flight request,
    /// answer everything still queued with the typed `Shutdown` frame, then
    /// close all connections and join every thread. Every request accepted
    /// before the drain gets a reply frame on the wire — none are dropped.
    pub fn shutdown(mut self) {
        self.stop(true);
    }

    /// Crash-style stop: slam every connection shut mid-whatever and tear
    /// down without the drain protocol. Exists to exercise client-side
    /// ambiguous-failure and reconnect paths (a real crash does not drain);
    /// production shutdown is [`NetServer::shutdown`].
    pub fn kill(mut self) {
        self.stop(false);
    }

    fn stop(&mut self, graceful: bool) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        // Phase 1: stop accepting. The acceptor sees the flag within a tick,
        // drops the listener, and returns the connection-thread handles.
        self.shared.draining.store(true, Ordering::Release);
        if !graceful {
            // Crash style: slam the sockets so blocked reads/writes fail now.
            for (_, stream) in lock(&self.shared.streams).iter() {
                let _ = stream.shutdown(SockShutdown::Both);
            }
        }
        // Phase 2: drop every tenant door. Each batcher's Drop finishes the
        // batch in flight (real answers), then drains its queue with typed
        // Shutdown replies — connection threads blocked in `query` wake with
        // an answer to write.
        drop(lock(&self.shared.doors).take());
        // Phase 3: join everything. Connection threads exit within a tick of
        // writing their final reply (they see the drain flag between frames).
        if let Some(acceptor) = self.acceptor.take() {
            if let Ok(conn_handles) = acceptor.join() {
                for handle in conn_handles {
                    let _ = handle.join();
                }
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop(true);
    }
}

/// The acceptor: polls the non-blocking listener, applies the admission cap,
/// spawns one thread per accepted connection. Returns the connection-thread
/// handles so `stop` can join them.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) -> Vec<JoinHandle<()>> {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let mut next_id: u64 = 0;
    loop {
        if shared.draining.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handles opportunistically so a long-lived
                // server does not accumulate dead JoinHandles.
                handles.retain(|h| !h.is_finished());
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                let admitted = shared
                    .conns
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                        (n < shared.config.max_connections).then_some(n + 1)
                    })
                    .is_ok();
                if !admitted {
                    shared.rejected.fetch_add(1, Ordering::Relaxed);
                    refuse(stream, &shared, "connection cap reached; retry after backoff");
                    continue;
                }
                let id = next_id;
                next_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    lock(&shared.streams).push((id, clone));
                }
                let conn_shared = Arc::clone(&shared);
                handles.push(std::thread::spawn(move || {
                    serve_conn(&conn_shared, stream);
                    lock(&conn_shared.streams).retain(|(sid, _)| *sid != id);
                    conn_shared.conns.fetch_sub(1, Ordering::Relaxed);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.tick.min(Duration::from_millis(5)));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept failures (EMFILE, aborted handshakes): back
            // off a tick rather than spinning or dying.
            Err(_) => std::thread::sleep(shared.config.tick),
        }
    }
    handles
}

/// Best-effort typed refusal for a connection that was never admitted.
/// Encoded as v1 — error frames lay out identically in both versions, and
/// every peer (v1 or v2) decodes v1.
fn refuse(mut stream: TcpStream, shared: &Shared, why: &str) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = write_frame_versioned(
        &mut stream,
        &Frame::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: shared.config.retry_after_ms,
            message: why.to_string(),
        }),
        V1,
    );
}

/// What one ticked frame read produced.
enum ConnEvent {
    /// A decoded frame plus the protocol version it arrived in, so the reply
    /// can be written in kind.
    Frame(Frame, u8),
    /// The bytes could not form a frame; alignment is lost.
    Bad(FrameError),
    /// Peer closed cleanly between frames.
    Closed,
    /// No completed frame within the idle window (silent or trickling peer).
    IdleReap,
    /// The server is draining and no frame is mid-read.
    Draining,
    /// Transport failure.
    Io,
}

/// One connection's serve loop: read a frame, resolve its tenant, answer it,
/// repeat until the peer closes, misbehaves, idles out, or the server
/// drains. Tenant-resolution failures (unknown / loading / registry-full)
/// are request-level errors: the reply is typed and the connection stays
/// open, exactly like an invalid range.
fn serve_conn(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.set_read_timeout(Some(shared.config.tick));
    loop {
        match read_frame_ticked(&mut stream, shared) {
            ConnEvent::Frame(Frame::Query { tenant, s, start, end }, version) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let reply = if shared.draining.load(Ordering::Acquire) {
                    // The door is closing; answer with the typed drain reply
                    // instead of racing a submission against the teardown.
                    Err(ServeError::Shutdown)
                } else {
                    resolve_client(shared, &tenant)
                        .and_then(|client| client.query(s as usize, start as usize, end as usize))
                };
                let frame = match reply {
                    Ok(values) => Frame::Values { tenant, values },
                    Err(e) => Frame::Error(WireError::from_serve(&e, shared.config.retry_after_ms)),
                };
                if write_frame_versioned(&mut stream, &frame, version).is_err() {
                    break;
                }
            }
            ConnEvent::Frame(Frame::HealthReq { tenant }, version) => {
                let frame = match health_frame(shared, &tenant) {
                    Ok(health) => Frame::Health { tenant, health },
                    Err(e) => Frame::Error(WireError::from_serve(&e, shared.config.retry_after_ms)),
                };
                if write_frame_versioned(&mut stream, &frame, version).is_err() {
                    break;
                }
            }
            ConnEvent::Frame(_, version) => {
                // A response-type frame from a client is a protocol error,
                // but framing is still aligned: answer typed and continue.
                let frame = Frame::Error(WireError {
                    code: ErrorCode::BadFrame,
                    retry_after_ms: 0,
                    message: "clients send query/health frames only".to_string(),
                });
                if write_frame_versioned(&mut stream, &frame, version).is_err() {
                    break;
                }
            }
            ConnEvent::Bad(e) => {
                shared.bad_frames.fetch_add(1, Ordering::Relaxed);
                // Frame alignment is lost: one typed reply (v1 — decodable by
                // any peer), then close.
                let _ = write_frame_versioned(
                    &mut stream,
                    &Frame::Error(WireError {
                        code: ErrorCode::BadFrame,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    }),
                    V1,
                );
                break;
            }
            ConnEvent::Closed | ConnEvent::IdleReap | ConnEvent::Io => break,
            ConnEvent::Draining => {
                // Between frames during a drain: nothing owed to this peer.
                break;
            }
        }
    }
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Resolves a request's tenant to a [`BatchClient`] on that tenant's own
/// micro-batcher, building (or rebuilding) the door as needed. The registry
/// lookup happens *before* taking the doors lock, so an on-demand snapshot
/// load never blocks other tenants' door lookups.
fn resolve_client(shared: &Shared, tenant: &str) -> Result<BatchClient, ServeError> {
    let key = if tenant.is_empty() { DEFAULT_TENANT } else { tenant };
    let engine = shared.registry.get(key)?;
    let mut doors = lock(&shared.doors);
    let Some(doors) = doors.as_mut() else {
        // Racing a drain: the doors are gone; the caller answers Shutdown.
        return Err(ServeError::Shutdown);
    };
    if let Some(door) = doors.get(key) {
        if Arc::ptr_eq(&door.engine, &engine) {
            return Ok(door.batcher.client());
        }
        // The registry evicted and reloaded this tenant since the door was
        // built: the old engine is gone, so rebuild the door. Replacing the
        // entry drops the stale batcher, which drains its (rare) stragglers
        // with typed Shutdown replies.
    }
    let batcher = MicroBatcher::spawn_with(Arc::clone(&engine), shared.config.batcher);
    let client = batcher.client();
    doors.insert(key.to_string(), TenantDoor { engine, batcher });
    Ok(client)
}

/// Reads one frame with tick-granularity timeouts. Between frames (no byte
/// read yet) it reacts to drain and idle; once a frame has started, it is
/// finished (subject to the same idle budget) so a request already on the
/// wire during a drain still gets its typed answer.
fn read_frame_ticked(stream: &mut TcpStream, shared: &Shared) -> ConnEvent {
    let started = Instant::now();
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match stream.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ConnEvent::Closed
                } else {
                    ConnEvent::Bad(FrameError::Truncated { section: "header" })
                };
            }
            Ok(n) => filled += n,
            Err(e) if timed_out(&e) => {
                if filled == 0 && shared.draining.load(Ordering::Acquire) {
                    return ConnEvent::Draining;
                }
                if started.elapsed() >= shared.config.idle_timeout {
                    return ConnEvent::IdleReap;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnEvent::Io,
        }
    }
    let h: Header = match decode_header(&header, shared.config.max_frame) {
        Ok(h) => h,
        Err(e) => return ConnEvent::Bad(e),
    };
    let mut payload = vec![0u8; h.len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match stream.read(&mut payload[filled..]) {
            Ok(0) => return ConnEvent::Bad(FrameError::Truncated { section: "payload" }),
            Ok(n) => filled += n,
            Err(e) if timed_out(&e) => {
                // Mid-frame the drain flag does not abort the read — the
                // request is already on the wire — but the idle budget still
                // bounds how long a trickling client can hold the thread.
                if started.elapsed() >= shared.config.idle_timeout {
                    return ConnEvent::IdleReap;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ConnEvent::Io,
        }
    }
    match decode_payload(h, &payload) {
        Ok(frame) => ConnEvent::Frame(frame, h.version),
        Err(e) => ConnEvent::Bad(e),
    }
}

fn timed_out(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Assembles the health frame: engine fault counters + front-door state.
/// An empty tenant reports the aggregate — every tenant's carried counters
/// plus every resident engine's live ones, with panics and queue depth
/// summed over all doors. A named tenant reports its own counters (carried +
/// live; never forces a snapshot load) and its own door's supervisor state.
///
/// # Errors
/// [`ServeError::UnknownTenant`] when the named tenant is not registered.
fn health_frame(shared: &Shared, tenant: &str) -> Result<HealthFrame, ServeError> {
    let (report, panics, depth) = if tenant.is_empty() {
        let report = shared.registry.aggregate_health();
        let doors = lock(&shared.doors);
        let (panics, depth) = doors
            .as_ref()
            .map(|doors| {
                doors.values().fold((0u64, 0usize), |(p, d), door| {
                    (p + door.batcher.panics_caught(), d + door.batcher.queue_depth())
                })
            })
            .unwrap_or((0, 0));
        (report, panics, depth)
    } else {
        let report = shared.registry.tenant_health(tenant)?;
        let doors = lock(&shared.doors);
        let (panics, depth) = doors
            .as_ref()
            .and_then(|doors| doors.get(tenant))
            .map(|door| (door.batcher.panics_caught(), door.batcher.queue_depth()))
            .unwrap_or((0, 0));
        (report, panics, depth)
    };
    Ok(HealthFrame {
        quarantined: report.quarantined,
        nonfinite_input_rejections: report.nonfinite_input_rejections,
        degraded_events: report.degraded_events,
        degraded_windows: report.degraded_windows,
        poison_recoveries: report.poison_recoveries,
        panics_caught: panics,
        queue_depth: depth.min(u32::MAX as usize) as u32,
        queue_cap: shared.config.batcher.queue_cap.min(u32::MAX as usize) as u32,
        active_connections: shared.conns.load(Ordering::Relaxed).min(u32::MAX as usize) as u32,
        draining: shared.draining.load(Ordering::Acquire),
    })
}
