//! Property fuzzing for the wire codec: decoding must be **total**. Every
//! byte sequence — random garbage, truncations of valid frames, single bit
//! flips, hostile length prefixes, arbitrary-UTF-8 tenant ids — maps to
//! either a decoded frame or a typed [`FrameError`]; nothing may panic,
//! hang, or allocate according to an unvalidated length. The tenancy
//! properties additionally pin the v1↔v2 interop contract: every frame
//! encodes in both versions, v1 always decodes to the default (empty)
//! tenant, and an oversized tenant-id claim on the wire is malformed — it
//! can never desync the stream, because the outer length prefix bounds the
//! payload no matter what the tenant field says.

use mvi_net::frame::{decode, encode, encode_versioned, read_frame, RecvError, V1, V2};
use mvi_net::{ErrorCode, Frame, FrameError, WireError, DEFAULT_MAX_FRAME, MAX_TENANT_LEN};
use proptest::prelude::*;
use std::io::Cursor;

/// A representative frame to mutate, picked by index so every property
/// exercises all payload layouts (with and without a tenant id riding along).
fn sample_frame(which: usize, knob: u32) -> Frame {
    let tenant = match which % 3 {
        0 => String::new(),
        1 => "acme".to_string(),
        _ => "tenant-βeta".repeat((knob % 4) as usize + 1),
    };
    match which % 4 {
        0 => {
            Frame::Query { tenant, s: knob, start: knob.wrapping_mul(3), end: knob.wrapping_mul(7) }
        }
        1 => Frame::Values {
            tenant,
            values: (0..(knob % 17) as usize).map(|i| i as f64 * 0.5 - 3.0).collect(),
        },
        2 => Frame::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: knob,
            message: "q".repeat((knob % 40) as usize),
        }),
        _ => Frame::HealthReq { tenant },
    }
}

/// Short ASCII tenant ids (the vendored proptest has no regex strategies).
fn tenant_ascii() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..36, 0..24)
        .prop_map(|v| v.into_iter().map(|d| char::from_digit(d, 36).unwrap_or('x')).collect())
}

/// Arbitrary Unicode tenant ids: code points sampled across the whole
/// scalar-value space (surrogates filtered), lengths well past the wire cap
/// once multi-byte encodings are counted.
fn tenant_unicode() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u32>(), 0..40)
        .prop_map(|v| v.into_iter().map(|b| b % 0x11_0000).filter_map(char::from_u32).collect())
}

/// The same frame with its tenant replaced by the default (what a v1
/// encoding must decode back to).
fn without_tenant(frame: &Frame) -> Frame {
    match frame.clone() {
        Frame::Query { s, start, end, .. } => Frame::Query { tenant: String::new(), s, start, end },
        Frame::Values { values, .. } => Frame::Values { tenant: String::new(), values },
        Frame::HealthReq { .. } => Frame::HealthReq { tenant: String::new() },
        Frame::Health { health, .. } => Frame::Health { tenant: String::new(), health },
        err @ Frame::Error(_) => err,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pure garbage: `decode` returns `Ok` or a typed error for every input —
    /// by construction of the test it cannot panic, and the streaming
    /// `read_frame` path must agree (modulo `Closed` for an empty stream).
    #[test]
    fn arbitrary_bytes_decode_totally(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        // Both entry points must survive the same hostile input.
        let _ = decode(&bytes, DEFAULT_MAX_FRAME);
        match read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME) {
            Ok(_) | Err(RecvError::Closed) | Err(RecvError::Frame(_)) => {}
            Err(RecvError::Io(e)) => prop_assert!(false, "in-memory read cannot fail i/o: {e}"),
        }
    }

    /// Every strict truncation of a valid frame is a typed error — never a
    /// decode of wrong data, never a panic.
    #[test]
    fn truncations_fail_typed(which in 0usize..12, knob in 0u32..1000, cut in 0usize..100) {
        let bytes = encode(&sample_frame(which, knob));
        let keep = cut % bytes.len(); // strictly shorter than the full frame
        match decode(&bytes[..keep], DEFAULT_MAX_FRAME) {
            Err(FrameError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "cut at {keep}: unexpected error {other}"),
            Ok(_) => prop_assert!(false, "cut at {keep} must not decode"),
        }
        // The stream path: EOF before any byte is a clean close; EOF
        // mid-frame is typed truncation.
        match read_frame(&mut Cursor::new(&bytes[..keep]), DEFAULT_MAX_FRAME) {
            Err(RecvError::Closed) => prop_assert!(keep == 0, "Closed only before byte 0"),
            Err(RecvError::Frame(FrameError::Truncated { .. })) => prop_assert!(keep > 0),
            other => prop_assert!(false, "cut at {keep}: unexpected outcome {other:?}"),
        }
    }

    /// A single flipped bit anywhere in a valid frame — magic, version,
    /// type, length, checksum, tenant field, or payload — is always caught
    /// as a typed error. The CRC covers everything after the magic,
    /// including the length field and the tenant prefix, so no flip can
    /// smuggle wrong data (or another tenant's id) through.
    #[test]
    fn single_bit_flips_fail_typed(
        which in 0usize..12, knob in 0u32..1000, pos in 0usize..10_000, bit in 0u8..8,
    ) {
        let mut bytes = encode(&sample_frame(which, knob));
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        match decode(&bytes, DEFAULT_MAX_FRAME) {
            Err(_) => {}
            Ok((frame, _)) => {
                prop_assert!(false, "flip at byte {i} bit {bit} decoded silently: {frame:?}")
            }
        }
    }

    /// Hostile length prefixes beyond the cap are rejected from the header
    /// alone — before any payload-sized buffer exists. A 4 GiB length costs
    /// the attacker 14 bytes and the server a typed `Oversized` error.
    #[test]
    fn oversized_lengths_rejected_before_allocation(
        over in 1u32..0x7fff_0000, fill in any::<u8>(), vsel in 0u32..2,
    ) {
        let version = if vsel == 0 { V1 } else { V2 };
        let max = 4096u32;
        let len = max.saturating_add(over);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MVIF");
        bytes.push(version);
        bytes.push(1); // T_QUERY
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[fill; 4]); // whatever checksum
        match decode(&bytes, max) {
            Err(FrameError::Oversized { len: got, max: m }) => {
                prop_assert!(got == len && m == max);
            }
            other => prop_assert!(false, "declared len {len}: unexpected {other:?}"),
        }
    }

    /// Random query and values frames roundtrip bit-exactly (values compared
    /// by bits so the property holds for every f64, NaN included).
    #[test]
    fn random_frames_roundtrip(
        tenant in tenant_ascii(),
        s in any::<u32>(), start in any::<u32>(), end in any::<u32>(),
        value_bits in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let query = Frame::Query { tenant: tenant.clone(), s, start, end };
        let (decoded, used) = decode(&encode(&query), DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("query roundtrip: {e}")))?;
        prop_assert!(decoded == query && used == encode(&query).len());

        let values: Vec<f64> = value_bits.iter().map(|b| f64::from_bits(*b)).collect();
        let encoded = encode(&Frame::Values { tenant, values: values.clone() });
        let (decoded, used) = decode(&encoded, DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("values roundtrip: {e}")))?;
        prop_assert!(used == encoded.len());
        match decoded {
            Frame::Values { values: out, .. } => {
                prop_assert!(out.len() == values.len());
                for (a, b) in out.iter().zip(&values) {
                    prop_assert!(a.to_bits() == b.to_bits());
                }
            }
            other => prop_assert!(false, "values decoded as {other:?}"),
        }
    }

    /// Arbitrary UTF-8 tenant ids of arbitrary lengths: encoding always
    /// produces a decodable frame whose tenant is a ≤64-byte prefix of the
    /// original, cut at a character boundary — total, no panic, no desync
    /// (the remainder of the payload still parses).
    #[test]
    fn arbitrary_utf8_tenants_encode_totally(
        tenant in tenant_unicode(), which in 0usize..12, knob in 0u32..1000,
    ) {
        let frame = match sample_frame(which, knob) {
            Frame::Query { s, start, end, .. } => {
                Frame::Query { tenant: tenant.clone(), s, start, end }
            }
            Frame::Values { values, .. } => Frame::Values { tenant: tenant.clone(), values },
            Frame::Health { health, .. } => Frame::Health { tenant: tenant.clone(), health },
            _ => Frame::HealthReq { tenant: tenant.clone() },
        };
        let bytes = encode(&frame);
        let (decoded, used) = decode(&bytes, DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("tenant `{tenant:?}`: {e}")))?;
        prop_assert!(used == bytes.len());
        let echoed = decoded.tenant().map(str::to_owned).unwrap_or_default();
        prop_assert!(echoed.len() <= MAX_TENANT_LEN);
        prop_assert!(
            tenant.starts_with(&echoed),
            "decoded tenant {echoed:?} is not a prefix of {tenant:?}"
        );
        if tenant.len() <= MAX_TENANT_LEN {
            prop_assert!(echoed == tenant, "an in-cap tenant must survive unmodified");
        }
    }

    /// A tenant-length byte claiming more than the cap is malformed — and
    /// because the outer header bounds the payload, the bytes after the bad
    /// frame still decode: no desync.
    #[test]
    fn oversized_tenant_claims_are_malformed_never_desync(
        claim in (MAX_TENANT_LEN as u8 + 1)..=u8::MAX, body_len in 0usize..40,
    ) {
        // Hand-build a v2 health-req with a hostile tenant length byte,
        // CRC'd correctly so only the tenant check can reject it.
        let mut payload = vec![claim];
        payload.extend(std::iter::repeat_n(b'x', body_len));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MVIF");
        bytes.push(V2);
        bytes.push(4); // T_HEALTH_REQ
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc_input = vec![V2, 4];
        crc_input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        crc_input.extend_from_slice(&payload);
        bytes.extend_from_slice(&mvi_serve::durable::crc32(&crc_input).to_le_bytes());
        bytes.extend_from_slice(&payload);
        // The hostile frame itself: typed malformed.
        match decode(&bytes, DEFAULT_MAX_FRAME) {
            Err(FrameError::Malformed { .. }) => {}
            other => prop_assert!(false, "claim {claim}: unexpected {other:?}"),
        }
        // No desync: a clean frame appended after it decodes from the byte
        // right past the hostile frame's declared end.
        let clean = encode(&Frame::HealthReq { tenant: "ok".into() });
        let offset = bytes.len();
        bytes.extend_from_slice(&clean);
        let (frame, used) = decode(&bytes[offset..], DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("resync failed: {e}")))?;
        prop_assert!(used == clean.len());
        prop_assert!(frame == Frame::HealthReq { tenant: "ok".into() });
    }

    /// v1↔v2 interop: every frame also encodes as v1 (tenant dropped), both
    /// versions decode, and the v1 decoding equals the frame with its tenant
    /// defaulted. For tenant-less frames the two payloads are byte-identical
    /// after the version byte's effect on the CRC.
    #[test]
    fn v1_and_v2_interop(which in 0usize..12, knob in 0u32..1000) {
        let frame = sample_frame(which, knob);
        let v2_bytes = encode_versioned(&frame, V2);
        let v1_bytes = encode_versioned(&frame, V1);
        prop_assert!(v2_bytes[4] == V2 && v1_bytes[4] == V1);

        let (from_v2, _) = decode(&v2_bytes, DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("v2 decode: {e}")))?;
        let truncated_tenant = frame.tenant().map_or(0, |t| t.len()) <= MAX_TENANT_LEN;
        if truncated_tenant {
            prop_assert!(from_v2 == frame, "v2 must roundtrip in-cap frames exactly");
        }

        let (from_v1, _) = decode(&v1_bytes, DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("v1 decode: {e}")))?;
        prop_assert!(
            from_v1 == without_tenant(&frame),
            "v1 must decode to the tenant-defaulted frame: {from_v1:?}"
        );
    }
}
