//! Property fuzzing for the wire codec: decoding must be **total**. Every
//! byte sequence — random garbage, truncations of valid frames, single bit
//! flips, hostile length prefixes — maps to either a decoded frame or a
//! typed [`FrameError`]; nothing may panic, hang, or allocate according to
//! an unvalidated length.

use mvi_net::frame::{decode, read_frame, RecvError};
use mvi_net::{ErrorCode, Frame, FrameError, WireError, DEFAULT_MAX_FRAME};
use proptest::prelude::*;
use std::io::Cursor;

/// A representative frame to mutate, picked by index so every property
/// exercises all payload layouts.
fn sample_frame(which: usize, knob: u32) -> Frame {
    match which % 4 {
        0 => Frame::Query { s: knob, start: knob.wrapping_mul(3), end: knob.wrapping_mul(7) },
        1 => Frame::Values((0..(knob % 17) as usize).map(|i| i as f64 * 0.5 - 3.0).collect()),
        2 => Frame::Error(WireError {
            code: ErrorCode::Overloaded,
            retry_after_ms: knob,
            message: "q".repeat((knob % 40) as usize),
        }),
        _ => Frame::HealthReq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Pure garbage: `decode` returns `Ok` or a typed error for every input —
    /// by construction of the test it cannot panic, and the streaming
    /// `read_frame` path must agree (modulo `Closed` for an empty stream).
    #[test]
    fn arbitrary_bytes_decode_totally(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        // Both entry points must survive the same hostile input.
        let _ = decode(&bytes, DEFAULT_MAX_FRAME);
        match read_frame(&mut Cursor::new(&bytes), DEFAULT_MAX_FRAME) {
            Ok(_) | Err(RecvError::Closed) | Err(RecvError::Frame(_)) => {}
            Err(RecvError::Io(e)) => prop_assert!(false, "in-memory read cannot fail i/o: {e}"),
        }
    }

    /// Every strict truncation of a valid frame is a typed error — never a
    /// decode of wrong data, never a panic.
    #[test]
    fn truncations_fail_typed(which in 0usize..4, knob in 0u32..1000, cut in 0usize..100) {
        let bytes = mvi_net::frame::encode(&sample_frame(which, knob));
        let keep = cut % bytes.len(); // strictly shorter than the full frame
        match decode(&bytes[..keep], DEFAULT_MAX_FRAME) {
            Err(FrameError::Truncated { .. }) => {}
            Err(other) => prop_assert!(false, "cut at {keep}: unexpected error {other}"),
            Ok(_) => prop_assert!(false, "cut at {keep} must not decode"),
        }
        // The stream path: EOF before any byte is a clean close; EOF
        // mid-frame is typed truncation.
        match read_frame(&mut Cursor::new(&bytes[..keep]), DEFAULT_MAX_FRAME) {
            Err(RecvError::Closed) => prop_assert!(keep == 0, "Closed only before byte 0"),
            Err(RecvError::Frame(FrameError::Truncated { .. })) => prop_assert!(keep > 0),
            other => prop_assert!(false, "cut at {keep}: unexpected outcome {other:?}"),
        }
    }

    /// A single flipped bit anywhere in a valid frame — magic, version,
    /// type, length, checksum, or payload — is always caught as a typed
    /// error. The CRC covers everything after the magic, including the
    /// length field, so no flip can smuggle wrong data through.
    #[test]
    fn single_bit_flips_fail_typed(
        which in 0usize..4, knob in 0u32..1000, pos in 0usize..10_000, bit in 0u8..8,
    ) {
        let mut bytes = mvi_net::frame::encode(&sample_frame(which, knob));
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        match decode(&bytes, DEFAULT_MAX_FRAME) {
            Err(_) => {}
            Ok((frame, _)) => {
                prop_assert!(false, "flip at byte {i} bit {bit} decoded silently: {frame:?}")
            }
        }
    }

    /// Hostile length prefixes beyond the cap are rejected from the header
    /// alone — before any payload-sized buffer exists. A 4 GiB length costs
    /// the attacker 14 bytes and the server a typed `Oversized` error.
    #[test]
    fn oversized_lengths_rejected_before_allocation(
        over in 1u32..0x7fff_0000, fill in any::<u8>(),
    ) {
        let max = 4096u32;
        let len = max.saturating_add(over);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"MVIF");
        bytes.push(1); // version
        bytes.push(1); // T_QUERY
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&[fill; 4]); // whatever checksum
        match decode(&bytes, max) {
            Err(FrameError::Oversized { len: got, max: m }) => {
                prop_assert!(got == len && m == max);
            }
            other => prop_assert!(false, "declared len {len}: unexpected {other:?}"),
        }
    }

    /// Random query and values frames roundtrip bit-exactly (values compared
    /// by bits so the property holds for every f64, NaN included).
    #[test]
    fn random_frames_roundtrip(
        s in any::<u32>(), start in any::<u32>(), end in any::<u32>(),
        value_bits in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let query = Frame::Query { s, start, end };
        let (decoded, used) = decode(&mvi_net::frame::encode(&query), DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("query roundtrip: {e}")))?;
        prop_assert!(decoded == query && used == mvi_net::frame::encode(&query).len());

        let values: Vec<f64> = value_bits.iter().map(|b| f64::from_bits(*b)).collect();
        let encoded = mvi_net::frame::encode(&Frame::Values(values.clone()));
        let (decoded, used) = decode(&encoded, DEFAULT_MAX_FRAME)
            .map_err(|e| TestCaseError::fail(format!("values roundtrip: {e}")))?;
        prop_assert!(used == encoded.len());
        match decoded {
            Frame::Values(out) => {
                prop_assert!(out.len() == values.len());
                for (a, b) in out.iter().zip(&values) {
                    prop_assert!(a.to_bits() == b.to_bits());
                }
            }
            other => prop_assert!(false, "values decoded as {other:?}"),
        }
    }
}
