//! BRITS \[4\]: bidirectional recurrent imputation for time series (Cao et al.).

use mvi_autograd::{AdamConfig, Graph, GruCell, Linear, ParamStore, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bidirectional recurrent imputation.
///
/// The RNN consumes the whole cross-series column `X_{•,t}` at each step (exactly
/// the design the paper criticizes for limiting scalability in the number of
/// series, §3): per direction, the hidden state is decayed by a learned function of
/// the per-series gap since the last observation, a regression head predicts the
/// column *before* seeing it, observed entries supervise that prediction, and the
/// input is the observed column with missing entries replaced by the prediction.
#[derive(Clone, Copy, Debug)]
pub struct Brits {
    /// Recurrent state width.
    pub hidden: usize,
    /// Training windows sampled per epoch-equivalent.
    pub train_samples: usize,
    /// Length of each training window.
    pub window_len: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Weight of the forward/backward consistency penalty.
    pub consistency: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Brits {
    fn default() -> Self {
        Self {
            hidden: 32,
            train_samples: 150,
            window_len: 120,
            lr: 1e-2,
            consistency: 0.1,
            seed: 5,
        }
    }
}

impl Brits {
    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        Self { hidden: 12, train_samples: 40, window_len: 60, ..Self::default() }
    }
}

struct BritsParams {
    cell: GruCell,
    /// Hidden-state temporal decay from the per-series observation gaps.
    decay: Linear,
    /// Regression head: hidden state -> cross-series column estimate.
    regress: Linear,
}

struct BritsModel {
    store: ParamStore,
    fwd: BritsParams,
    bwd: BritsParams,
    m: usize,
}

impl BritsModel {
    fn new(cfg: &Brits, m: usize) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let build = |store: &mut ParamStore, rng: &mut StdRng, tag: &str| BritsParams {
            cell: GruCell::new(store, rng, &format!("{tag}.gru"), 2 * m, cfg.hidden),
            decay: Linear::new(store, rng, &format!("{tag}.decay"), m, cfg.hidden),
            regress: Linear::new(store, rng, &format!("{tag}.reg"), cfg.hidden, m),
        };
        let fwd = build(&mut store, &mut rng, "fwd");
        let bwd = build(&mut store, &mut rng, "bwd");
        Self { store, fwd, bwd, m }
    }

    /// One directional pass over columns `cols[t]` (length `m` each) with
    /// availability `avail[t]`; returns the per-step pre-update estimates.
    ///
    /// `collect_loss` accumulates the observed-entry reconstruction errors.
    fn directional(
        &self,
        g: &mut Graph,
        params: &BritsParams,
        cols: &[Vec<f64>],
        avail: &[Vec<bool>],
        losses: Option<&mut Vec<VarId>>,
    ) -> Vec<VarId> {
        let m = self.m;
        let hidden_dim = {
            // decay layer output width == hidden width
            self.store.value(params.decay.w).cols()
        };
        let mut h = g.constant(Tensor::zeros(&[hidden_dim]));
        let mut gaps = vec![1.0f64; m];
        let mut estimates = Vec::with_capacity(cols.len());
        let mut loss_acc = losses;
        for (t, (col, av)) in cols.iter().zip(avail).enumerate() {
            // Temporal decay of the hidden state from the observation gaps.
            let delta = g.constant_slice(&gaps);
            let decay_lin = params.decay.forward_vec(g, &self.store, delta);
            let decay_rel = g.relu(decay_lin);
            let neg = g.neg(decay_rel);
            let gamma = g.exp(neg);
            h = g.mul(h, gamma);

            // Predict the column before seeing it (history-only estimate).
            let xhat = params.regress.forward_vec(g, &self.store, h);
            estimates.push(xhat);

            // Observed entries supervise the prediction.
            if let Some(acc) = loss_acc.as_deref_mut() {
                let observed_idx: Vec<usize> = (0..m).filter(|&i| av[i]).collect();
                if !observed_idx.is_empty() {
                    let mask_vec: Vec<f64> =
                        (0..m).map(|i| if av[i] { 1.0 } else { 0.0 }).collect();
                    let maskc = g.constant_slice(&mask_vec);
                    let colc = g.constant_slice(col);
                    let diff = g.sub(xhat, colc);
                    let masked = g.mul(diff, maskc);
                    let sq = g.square(masked);
                    let s = g.sum(sq);
                    let scaled = g.scale(s, 1.0 / observed_idx.len() as f64);
                    acc.push(scaled);
                }
            }

            // Complemented input: observed values, predictions at missing entries.
            let mask_vec: Vec<f64> = (0..m).map(|i| if av[i] { 1.0 } else { 0.0 }).collect();
            let inv_mask: Vec<f64> = mask_vec.iter().map(|&v| 1.0 - v).collect();
            let maskc = g.constant_slice(&mask_vec);
            let invc = g.constant_slice(&inv_mask);
            let colc = g.constant_slice(col);
            let obs_part = g.mul(colc, maskc);
            let est_part = g.mul(xhat, invc);
            let x_comp = g.add(obs_part, est_part);
            let input = g.concat1d(&[x_comp, maskc]);
            h = params.cell.step(g, &self.store, input, h);

            // Gap bookkeeping.
            for i in 0..m {
                gaps[i] = if av[i] { 1.0 } else { gaps[i] + 1.0 };
            }
            let _ = t;
        }
        estimates
    }
}

impl Imputer for Brits {
    fn name(&self) -> String {
        "BRITS".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let flat = obs.flattened();
        let m = flat.n_series();
        let t_len = flat.t_len();
        let mut model = BritsModel::new(self, m);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xB217);
        let adam = AdamConfig { lr: self.lr, ..AdamConfig::default() };
        let win = self.window_len.min(t_len);

        // Column-major copies for fast window slicing.
        let columns: Vec<Vec<f64>> =
            (0..t_len).map(|t| (0..m).map(|s| flat.values.series(s)[t]).collect()).collect();
        let avail: Vec<Vec<bool>> =
            (0..t_len).map(|t| (0..m).map(|s| flat.available.series(s)[t]).collect()).collect();

        for _ in 0..self.train_samples {
            let start = if t_len > win { rng.gen_range(0..t_len - win) } else { 0 };
            let cols = &columns[start..start + win];
            let avs = &avail[start..start + win];
            let mut g = Graph::new();
            let mut losses = Vec::new();
            let est_f = model.directional(&mut g, &model.fwd, cols, avs, Some(&mut losses));
            let rev_cols: Vec<Vec<f64>> = cols.iter().rev().cloned().collect();
            let rev_avs: Vec<Vec<bool>> = avs.iter().rev().cloned().collect();
            let est_b =
                model.directional(&mut g, &model.bwd, &rev_cols, &rev_avs, Some(&mut losses));
            // Consistency between the two directions' estimates at each step.
            for (t, &ef) in est_f.iter().enumerate() {
                let eb = est_b[win - 1 - t];
                let d = g.sub(ef, eb);
                let sq = g.square(d);
                let mean = g.mean(sq);
                losses.push(g.scale(mean, self.consistency));
            }
            if losses.is_empty() {
                continue;
            }
            let stacked = g.concat1d(&losses);
            let loss = g.mean(stacked);
            let grads = g.backward(loss);
            model.store.accumulate(g.param_grads(&grads));
            model.store.adam_step(&adam, 1.0);
        }

        // Inference: full bidirectional pass, average the directional estimates.
        let mut g = Graph::new();
        let est_f = model.directional(&mut g, &model.fwd, &columns, &avail, None);
        let rev_cols: Vec<Vec<f64>> = columns.iter().rev().cloned().collect();
        let rev_avs: Vec<Vec<bool>> = avail.iter().rev().cloned().collect();
        let est_b = model.directional(&mut g, &model.bwd, &rev_cols, &rev_avs, None);

        let mut out = obs.values.clone();
        for t in 0..t_len {
            let ef = g.value(est_f[t]);
            let eb = g.value(est_b[t_len - 1 - t]);
            for s in 0..m {
                if !flat.available.series(s)[t] {
                    let v = 0.5 * (ef.at(s) + eb.at(s));
                    out.data_mut()[s * t_len + t] = v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn brits_beats_mean_on_correlated_data() {
        let ds = generate_with_shape(DatasetName::Temperature, &[5], 240, 2);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let brits = mae(&ds.values, &Brits::tiny().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(brits < mean, "brits {brits} vs mean {mean}");
    }

    #[test]
    fn output_finite_and_observed_preserved() {
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 7);
        let inst = Scenario::MissDisj.apply(&ds, 1);
        let obs = inst.observed();
        let out = Brits::tiny().impute(&obs);
        assert!(out.all_finite());
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }

    #[test]
    fn multidim_input_is_flattened() {
        let ds = generate_with_shape(DatasetName::JanataHack, &[3, 4], 130, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 5);
        let obs = inst.observed();
        let out = Brits::tiny().impute(&obs);
        assert_eq!(out.shape(), ds.values.shape());
        assert!(out.all_finite());
    }
}
