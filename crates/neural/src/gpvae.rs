//! GP-VAE \[8\] (simplified): deep probabilistic imputation with a latent path prior
//! (Fortuin et al.). See `DESIGN.md` §2: the structured GP prior across time is
//! replaced by a first-order Ornstein–Uhlenbeck smoothness prior on the latent
//! means, keeping the defining behaviour (temporally correlated latents, imputation
//! by decoding the posterior mean) without banded-precision variational machinery.

use mvi_autograd::{randn, AdamConfig, Graph, Linear, ParamStore, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Variational autoencoder over cross-series columns with a temporal smoothness
/// prior in latent space.
#[derive(Clone, Copy, Debug)]
pub struct GpVae {
    /// Latent width.
    pub latent: usize,
    /// Encoder/decoder hidden width.
    pub hidden: usize,
    /// Training windows.
    pub train_samples: usize,
    /// Window length.
    pub window_len: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// KL weight (β).
    pub beta: f64,
    /// OU smoothness weight on consecutive latent means.
    pub smooth: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GpVae {
    fn default() -> Self {
        Self {
            latent: 8,
            hidden: 32,
            train_samples: 150,
            window_len: 100,
            lr: 1e-2,
            beta: 0.05,
            smooth: 0.5,
            seed: 11,
        }
    }
}

impl GpVae {
    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        Self { latent: 4, hidden: 12, train_samples: 40, window_len: 50, ..Self::default() }
    }
}

struct GpVaeModel {
    store: ParamStore,
    enc1: Linear,
    enc_mu: Linear,
    enc_logvar: Linear,
    dec1: Linear,
    dec2: Linear,
}

impl GpVaeModel {
    fn new(cfg: &GpVae, m: usize) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Inputs carry the availability flags alongside the (zero-filled) values.
        let enc1 = Linear::new(&mut store, &mut rng, "enc1", 2 * m, cfg.hidden);
        let enc_mu = Linear::new(&mut store, &mut rng, "enc_mu", cfg.hidden, cfg.latent);
        let enc_logvar = Linear::new(&mut store, &mut rng, "enc_logvar", cfg.hidden, cfg.latent);
        let dec1 = Linear::new(&mut store, &mut rng, "dec1", cfg.latent, cfg.hidden);
        let dec2 = Linear::new(&mut store, &mut rng, "dec2", cfg.hidden, m);
        Self { store, enc1, enc_mu, enc_logvar, dec1, dec2 }
    }

    /// Encodes one column to its latent mean and log-variance.
    fn encode(&self, g: &mut Graph, col: &[f64], avail: &[bool]) -> (VarId, VarId) {
        let mut input: Vec<f64> = col.to_vec();
        input.extend(avail.iter().map(|&a| if a { 1.0 } else { 0.0 }));
        let x = g.constant_slice(&input);
        let h = self.enc1.forward_vec(g, &self.store, x);
        let h = g.tanh(h);
        let mu = self.enc_mu.forward_vec(g, &self.store, h);
        let logvar = self.enc_logvar.forward_vec(g, &self.store, h);
        (mu, logvar)
    }

    /// Decodes a latent vector to a column estimate.
    fn decode(&self, g: &mut Graph, z: VarId) -> VarId {
        let h = self.dec1.forward_vec(g, &self.store, z);
        let h = g.tanh(h);
        self.dec2.forward_vec(g, &self.store, h)
    }
}

impl Imputer for GpVae {
    fn name(&self) -> String {
        "GPVAE".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let flat = obs.flattened();
        let m = flat.n_series();
        let t_len = flat.t_len();
        let model = GpVaeModel::new(self, m);
        let mut model = model;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6B9A);
        let adam = AdamConfig { lr: self.lr, ..AdamConfig::default() };
        let win = self.window_len.min(t_len);

        let columns: Vec<Vec<f64>> =
            (0..t_len).map(|t| (0..m).map(|s| flat.values.series(s)[t]).collect()).collect();
        let avail: Vec<Vec<bool>> =
            (0..t_len).map(|t| (0..m).map(|s| flat.available.series(s)[t]).collect()).collect();

        for _ in 0..self.train_samples {
            let start = if t_len > win { rng.gen_range(0..t_len - win) } else { 0 };
            let mut g = Graph::new();
            let mut losses: Vec<VarId> = Vec::new();
            let mut prev_mu: Option<VarId> = None;
            for t in start..start + win {
                let (mu, logvar) = model.encode(&mut g, &columns[t], &avail[t]);
                // Reparameterized sample z = μ + σ·ε.
                let eps: Vec<f64> = (0..self.latent).map(|_| randn(&mut rng)).collect();
                let epsc = g.constant_slice(&eps);
                let half = g.scale(logvar, 0.5);
                let sigma = g.exp(half);
                let noise = g.mul(sigma, epsc);
                let z = g.add(mu, noise);
                let recon = model.decode(&mut g, z);

                // Reconstruction at observed entries.
                let mask: Vec<f64> = avail[t].iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
                let n_obs = mask.iter().sum::<f64>();
                if n_obs > 0.0 {
                    let maskc = g.constant_slice(&mask);
                    let colc = g.constant_slice(&columns[t]);
                    let diff = g.sub(recon, colc);
                    let md = g.mul(diff, maskc);
                    let sq = g.square(md);
                    let s = g.sum(sq);
                    losses.push(g.scale(s, 1.0 / n_obs));
                }

                // β·KL(q ‖ N(0,1)) = β/2 Σ (μ² + σ² − logσ² − 1).
                let mu2 = g.square(mu);
                let var = g.exp(logvar);
                let sum_terms = g.add(mu2, var);
                let minus_logvar = g.neg(logvar);
                let kl_inner = g.add(sum_terms, minus_logvar);
                let kl_shift = g.add_scalar(kl_inner, -1.0);
                let kl = g.sum(kl_shift);
                losses.push(g.scale(kl, 0.5 * self.beta / self.latent as f64));

                // OU smoothness prior on consecutive latent means.
                if let Some(pm) = prev_mu {
                    let d = g.sub(mu, pm);
                    let sq = g.square(d);
                    let s = g.mean(sq);
                    losses.push(g.scale(s, self.smooth));
                }
                prev_mu = Some(mu);
            }
            let stacked = g.concat1d(&losses);
            let loss = g.mean(stacked);
            let grads = g.backward(loss);
            model.store.accumulate(g.param_grads(&grads));
            model.store.adam_step(&adam, 1.0);
        }

        // Impute by decoding the posterior mean at every step.
        let mut out = obs.values.clone();
        for t in 0..t_len {
            let mut g = Graph::new();
            let (mu, _) = model.encode(&mut g, &columns[t], &avail[t]);
            let recon = model.decode(&mut g, mu);
            let rv = g.value(recon);
            for s in 0..m {
                if !flat.available.series(s)[t] {
                    out.data_mut()[s * t_len + t] = rv.at(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn gpvae_beats_mean_on_strongly_correlated_data() {
        let ds = generate_with_shape(DatasetName::Temperature, &[6], 200, 3);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let obs = inst.observed();
        let vae = mae(&ds.values, &GpVae::tiny().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(vae < mean, "gpvae {vae} vs mean {mean}");
    }

    #[test]
    fn output_finite_on_blackout() {
        let ds = generate_with_shape(DatasetName::Meteo, &[4], 180, 1);
        let inst = Scenario::Blackout { block_len: 25 }.apply(&ds, 6);
        let out = GpVae::tiny().impute(&inst.observed());
        assert!(out.all_finite());
    }

    #[test]
    fn observed_entries_are_preserved() {
        let ds = generate_with_shape(DatasetName::Gas, &[4], 150, 9);
        let inst = Scenario::mcar(0.5).apply(&ds, 4);
        let obs = inst.observed();
        let out = GpVae::tiny().impute(&obs);
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }
}
