//! The three deep-learning imputation baselines of §5.4, built on the same
//! from-scratch autodiff engine as DeepMVI:
//!
//! * [`brits`] — BRITS \[4\]: bidirectional recurrent imputation. At each step the
//!   recurrent state first *predicts* the current cross-series vector (the loss is
//!   taken against that pre-update estimate at observed entries), then consumes the
//!   observed values with missing entries replaced by the prediction; a temporal
//!   decay on the hidden state handles long gaps; forward and backward passes are
//!   averaged with a consistency penalty.
//! * [`gpvae`] — GP-VAE \[8\] (simplified): per-timestep MLP encoder to a diagonal
//!   Gaussian latent, MLP decoder, ELBO with the full Gaussian-process prior
//!   replaced by a first-order (Ornstein–Uhlenbeck) smoothness prior on the latent
//!   path (see `DESIGN.md` §2 for why this preserves the defining behaviour).
//! * [`mrnn`] — MRNN \[27\]: the earliest deep MVI method (§2.4) — a per-stream
//!   bidirectional interpolation block plus a cross-stream fully-connected
//!   imputation block.
//! * [`transformer`] — the "off-the-shelf Transformer" \[25\]: per-*point* tokens
//!   (value + availability flag + sinusoidal position), full self-attention over a
//!   point context, trained with random masking. Contrast with DeepMVI's temporal
//!   transformer, which attends over *window features* with left/right-window keys
//!   — the source of its accuracy and speed advantage (§5.4, §5.6).

pub mod brits;
pub mod gpvae;
pub mod mrnn;
pub mod transformer;

pub use brits::Brits;
pub use gpvae::GpVae;
pub use mrnn::Mrnn;
pub use transformer::VanillaTransformer;
