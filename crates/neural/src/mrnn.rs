//! MRNN \[27\]: multi-directional recurrent imputation (Yoon, Zame, van der Schaar)
//! — the earliest deep MVI method the paper discusses (§2.4).
//!
//! Two-block architecture, reproduced at its published structure:
//!
//! 1. an **interpolation block** that runs a bidirectional recurrent network *within*
//!    each stream (weights shared across streams) and regresses a per-position
//!    estimate from the two directional states — capturing the temporal context of a
//!    missing value inside its own series;
//! 2. an **imputation block** — a fully-connected network *across* streams at each
//!    time step that refines the interpolation estimates using the concurrently
//!    observed values of the other streams.
//!
//! The empirical study of \[12\] found MRNN to be both slow and surprisingly weak;
//! this reproduction exists so that comparison can be made rather than assumed.

use mvi_autograd::{AdamConfig, Graph, GruCell, Linear, ParamStore, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Multi-directional RNN imputation.
#[derive(Clone, Copy, Debug)]
pub struct Mrnn {
    /// Recurrent state width of the per-stream bidirectional RNN.
    pub hidden: usize,
    /// Hidden width of the cross-stream imputation block.
    pub fc_hidden: usize,
    /// Training windows sampled.
    pub train_samples: usize,
    /// Length of each training window.
    pub window_len: usize,
    /// Fraction of observed positions artificially dropped per training window.
    pub drop_frac: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Mrnn {
    fn default() -> Self {
        Self {
            hidden: 24,
            fc_hidden: 32,
            train_samples: 120,
            window_len: 80,
            drop_frac: 0.15,
            lr: 5e-3,
            seed: 29,
        }
    }
}

impl Mrnn {
    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        Self { hidden: 10, fc_hidden: 12, train_samples: 50, window_len: 50, ..Self::default() }
    }
}

struct MrnnModel {
    store: ParamStore,
    fwd: GruCell,
    bwd: GruCell,
    /// Interpolation regression: `[h_fwd, h_bwd] -> scalar estimate`.
    interp: Linear,
    /// Imputation block: `[x̃_{•,t}, mask_{•,t}] -> x̂_{•,t}`.
    fc1: Linear,
    fc2: Linear,
}

impl MrnnModel {
    fn new(cfg: &Mrnn, m: usize) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Stream inputs are (value, mask) pairs; weights shared across streams.
        let fwd = GruCell::new(&mut store, &mut rng, "fwd", 2, cfg.hidden);
        let bwd = GruCell::new(&mut store, &mut rng, "bwd", 2, cfg.hidden);
        let interp = Linear::new(&mut store, &mut rng, "interp", 2 * cfg.hidden, 1);
        let fc1 = Linear::new(&mut store, &mut rng, "fc1", 2 * m, cfg.fc_hidden);
        let fc2 = Linear::new(&mut store, &mut rng, "fc2", cfg.fc_hidden, m);
        Self { store, fwd, bwd, interp, fc1, fc2 }
    }

    /// Interpolation block over one stream window: bidirectional pass, per-position
    /// scalar estimates (length = window).
    fn interpolate_stream(&self, g: &mut Graph, vals: &[f64], avail: &[f64]) -> Vec<VarId> {
        let n = vals.len();
        let hidden = self.store.value(self.interp.w).rows() / 2;
        let mut hf = g.constant(Tensor::zeros(&[hidden]));
        let mut fstates = Vec::with_capacity(n);
        for t in 0..n {
            let x = g.constant_slice(&[vals[t] * avail[t], avail[t]]);
            hf = self.fwd.step(g, &self.store, x, hf);
            fstates.push(hf);
        }
        let mut hb = g.constant(Tensor::zeros(&[hidden]));
        let mut bstates = vec![hb; n];
        for t in (0..n).rev() {
            let x = g.constant_slice(&[vals[t] * avail[t], avail[t]]);
            hb = self.bwd.step(g, &self.store, x, hb);
            bstates[t] = hb;
        }
        (0..n)
            .map(|t| {
                // States *adjacent* to t so the estimate never reads x_t directly:
                // forward state up to t-1, backward state down to t+1.
                let f = if t > 0 { fstates[t - 1] } else { g.constant(Tensor::zeros(&[hidden])) };
                let b =
                    if t + 1 < n { bstates[t + 1] } else { g.constant(Tensor::zeros(&[hidden])) };
                let cat = g.concat1d(&[f, b]);
                self.interp.forward_vec(g, &self.store, cat)
            })
            .collect()
    }

    /// Imputation block at one time step: refine the stream estimates jointly.
    fn impute_step(&self, g: &mut Graph, estimates: VarId, mask: &[f64]) -> VarId {
        let maskc = g.constant_slice(mask);
        let input = g.concat1d(&[estimates, maskc]);
        let h = self.fc1.forward_vec(g, &self.store, input);
        let h = g.relu(h);
        self.fc2.forward_vec(g, &self.store, h)
    }
}

impl Imputer for Mrnn {
    fn name(&self) -> String {
        "MRNN".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let flat = obs.flattened();
        let m = flat.n_series();
        let t_len = flat.t_len();
        let mut model = MrnnModel::new(self, m);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x33AA);
        let adam = AdamConfig { lr: self.lr, ..AdamConfig::default() };
        let win = self.window_len.min(t_len);

        for _ in 0..self.train_samples {
            let start = if t_len > win { rng.gen_range(0..t_len - win) } else { 0 };
            let mut g = Graph::new();
            let mut losses: Vec<VarId> = Vec::new();
            // Per-stream interpolation with artificial drops.
            let mut stream_estimates: Vec<Vec<VarId>> = Vec::with_capacity(m);
            let mut eff_masks: Vec<Vec<f64>> = Vec::with_capacity(m);
            for s in 0..m {
                let vals: Vec<f64> = flat.values.series(s)[start..start + win].to_vec();
                let avail: Vec<f64> = flat.available.series(s)[start..start + win]
                    .iter()
                    .map(|&a| if a && rng.gen::<f64>() >= self.drop_frac { 1.0 } else { 0.0 })
                    .collect();
                let est = model.interpolate_stream(&mut g, &vals, &avail);
                // Interpolation loss at genuinely-observed positions.
                for t in 0..win {
                    if flat.available.series(s)[start + t] {
                        let target = g.scalar(vals[t]);
                        let d = g.sub(est[t], target);
                        losses.push(g.square(d));
                    }
                }
                stream_estimates.push(est);
                eff_masks.push(avail);
            }
            // Cross-stream refinement at a few sampled time steps (full windows
            // would dominate the cost quadratically in m).
            for _ in 0..8 {
                let t = rng.gen_range(0..win);
                let parts: Vec<VarId> = (0..m).map(|s| stream_estimates[s][t]).collect();
                let est_vec = g.concat1d(&parts);
                let mask: Vec<f64> = (0..m).map(|s| eff_masks[s][t]).collect();
                let refined = model.impute_step(&mut g, est_vec, &mask);
                for s in 0..m {
                    if flat.available.series(s)[start + t] {
                        let target = g.scalar(flat.values.series(s)[start + t]);
                        let e = g.index1d(refined, s);
                        let d = g.sub(e, target);
                        losses.push(g.square(d));
                    }
                }
            }
            if losses.is_empty() {
                continue;
            }
            let stacked = g.concat1d(&losses);
            let loss = g.mean(stacked);
            let grads = g.backward(loss);
            model.store.accumulate(g.param_grads(&grads));
            model.store.adam_step(&adam, 1.0);
        }

        // Inference: interpolation estimates over the full length, then the
        // cross-stream block at every time step with any missing entry.
        let mut g = Graph::new();
        let mut stream_estimates: Vec<Vec<VarId>> = Vec::with_capacity(m);
        for s in 0..m {
            let vals: Vec<f64> = flat.values.series(s).to_vec();
            let avail: Vec<f64> =
                flat.available.series(s).iter().map(|&a| if a { 1.0 } else { 0.0 }).collect();
            stream_estimates.push(model.interpolate_stream(&mut g, &vals, &avail));
        }
        let mut out = obs.values.clone();
        for t in 0..t_len {
            let any_missing = (0..m).any(|s| !flat.available.series(s)[t]);
            if !any_missing {
                continue;
            }
            let parts: Vec<VarId> = (0..m).map(|s| stream_estimates[s][t]).collect();
            let est_vec = g.concat1d(&parts);
            let mask: Vec<f64> =
                (0..m).map(|s| if flat.available.series(s)[t] { 1.0 } else { 0.0 }).collect();
            let refined = model.impute_step(&mut g, est_vec, &mask);
            let rv = g.value(refined);
            for s in 0..m {
                if !flat.available.series(s)[t] {
                    out.data_mut()[s * t_len + t] = rv.at(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn mrnn_beats_mean_on_smooth_correlated_data() {
        let ds = generate_with_shape(DatasetName::Bafu, &[4], 200, 3);
        let inst = Scenario::mcar(1.0).apply(&ds, 5);
        let obs = inst.observed();
        let mrnn = mae(&ds.values, &Mrnn::tiny().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(mrnn < mean, "mrnn {mrnn} vs mean {mean}");
    }

    #[test]
    fn mrnn_output_finite_and_preserves_observed() {
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 8);
        let inst = Scenario::Blackout { block_len: 20 }.apply(&ds, 2);
        let obs = inst.observed();
        let out = Mrnn::tiny().impute(&obs);
        assert!(out.all_finite());
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }
}
