//! The vanilla Transformer baseline \[25\] of §5.4: per-point tokens with full
//! self-attention, trained by masked-value reconstruction (§2.3.2).
//!
//! Each position of a series becomes a token `[value, availability]` embedded to
//! width `d` plus the sinusoidal positional encoding (Eq 2); a stack of
//! multi-head self-attention + feed-forward layers produces contextual vectors; a
//! linear head reads the value back out. Training masks random observed positions
//! and computes loss only there (the standard masked-language-model recipe the
//! paper describes for transformers). Because tokens are *points*, attention costs
//! grow with the square of the raw context length — this is the baseline DeepMVI's
//! window features beat by 2.5–7× in runtime (Fig 10a).

use mvi_autograd::{positional_encoding, AdamConfig, Graph, Linear, ParamStore, VarId};
use mvi_data::dataset::ObservedDataset;
use mvi_data::imputer::Imputer;
use mvi_tensor::{Mask, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Off-the-shelf transformer for per-series imputation.
#[derive(Clone, Copy, Debug)]
pub struct VanillaTransformer {
    /// Token embedding width.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Point context length (tokens per attention block).
    pub context: usize,
    /// Training samples (masked windows).
    pub train_samples: usize,
    /// Fraction of observed context positions masked per sample.
    pub mask_frac: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VanillaTransformer {
    fn default() -> Self {
        Self {
            d_model: 32,
            n_heads: 4,
            context: 128,
            train_samples: 200,
            mask_frac: 0.15,
            lr: 1e-3,
            seed: 23,
        }
    }
}

impl VanillaTransformer {
    /// Small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            d_model: 12,
            n_heads: 2,
            context: 48,
            train_samples: 160,
            lr: 3e-3,
            ..Self::default()
        }
    }
}

struct Head {
    wq: Linear,
    wk: Linear,
    wv: Linear,
}

struct TransformerModel {
    store: ParamStore,
    embed: Linear,
    heads: Vec<Head>,
    proj: Linear,
    ff1: Linear,
    ff2: Linear,
    out: Linear,
    d: usize,
}

impl TransformerModel {
    fn new(cfg: &VanillaTransformer) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.d_model;
        let dk = d / cfg.n_heads.max(1);
        let heads = (0..cfg.n_heads)
            .map(|h| Head {
                wq: Linear::new_no_bias(&mut store, &mut rng, &format!("h{h}.q"), d, dk),
                wk: Linear::new_no_bias(&mut store, &mut rng, &format!("h{h}.k"), d, dk),
                wv: Linear::new_no_bias(&mut store, &mut rng, &format!("h{h}.v"), d, dk),
            })
            .collect();
        Self {
            embed: Linear::new(&mut store, &mut rng, "embed", 2, d),
            heads,
            proj: Linear::new(&mut store, &mut rng, "proj", d, d),
            ff1: Linear::new(&mut store, &mut rng, "ff1", d, 2 * d),
            ff2: Linear::new(&mut store, &mut rng, "ff2", 2 * d, d),
            out: Linear::new(&mut store, &mut rng, "out", d, 1),
            store,
            d,
        }
    }

    /// Contextual per-position scalar estimates over one token window.
    ///
    /// `tokens[i] = (value, available)` where masked/missing positions carry
    /// `value = 0.0, available = false`; `start` is the absolute position of the
    /// first token (for the positional encoding).
    fn forward(&self, g: &mut Graph, tokens: &[(f64, bool)], start: usize) -> VarId {
        let n = tokens.len();
        let input = Tensor::from_fn(&[n, 2], |idx| match idx[1] {
            0 => tokens[idx[0]].0,
            _ => {
                if tokens[idx[0]].1 {
                    1.0
                } else {
                    0.0
                }
            }
        });
        let x = g.constant(input);
        let e = self.embed.forward(g, &self.store, x);
        let positions: Vec<usize> = (start..start + n).collect();
        let pe = g.constant(positional_encoding(&positions, self.d));
        let h0 = g.add(e, pe);

        // Queries come from every position; keys only from available ones.
        let mask = {
            let mut m = Mask::falses(&[n, n]);
            for row in 0..n {
                for (col, &(_, avail)) in tokens.iter().enumerate() {
                    if avail {
                        m.set(&[row, col], true);
                    }
                }
            }
            m
        };
        let scale = 1.0 / (self.d as f64 / self.heads.len() as f64).sqrt();
        let mut outs = Vec::with_capacity(self.heads.len());
        for head in &self.heads {
            let q = head.wq.forward(g, &self.store, h0);
            let k = head.wk.forward(g, &self.store, h0);
            let v = head.wv.forward(g, &self.store, h0);
            let kt = g.transpose(k);
            let scores_raw = g.matmul(q, kt);
            let scores = g.scale(scores_raw, scale);
            let attn = g.masked_softmax_rows(scores, &mask);
            outs.push(g.matmul(attn, v));
        }
        let cat = g.concat_cols(&outs);
        let attn_out = self.proj.forward(g, &self.store, cat);
        let res1 = g.add(h0, attn_out); // residual
        let ff = self.ff1.forward(g, &self.store, res1);
        let ff = g.relu(ff);
        let ff = self.ff2.forward(g, &self.store, ff);
        let res2 = g.add(res1, ff); // residual
        self.out.forward(g, &self.store, res2) // [n, 1]
    }
}

impl Imputer for VanillaTransformer {
    fn name(&self) -> String {
        "Transformer".to_string()
    }

    fn impute(&self, obs: &ObservedDataset) -> Tensor {
        let flat = obs.flattened();
        let m = flat.n_series();
        let t_len = flat.t_len();
        let ctx = self.context.min(t_len);
        let mut model = TransformerModel::new(self);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7F4A);
        let adam = AdamConfig { lr: self.lr, ..AdamConfig::default() };

        // Training: random (series, window) with random masking of observed points.
        for _ in 0..self.train_samples {
            let s = rng.gen_range(0..m);
            let start = if t_len > ctx { rng.gen_range(0..t_len - ctx) } else { 0 };
            let vals = flat.values.series(s);
            let avail = flat.available.series(s);
            // Mask a contiguous block (mirroring block misses) plus random points.
            let block_len = (ctx / 8).clamp(1, 10);
            let block_start = rng.gen_range(0..ctx - block_len + 1);
            let mut tokens: Vec<(f64, bool)> = Vec::with_capacity(ctx);
            let mut targets: Vec<(usize, f64)> = Vec::new();
            for (i, t) in (start..start + ctx).enumerate() {
                let in_block = i >= block_start && i < block_start + block_len;
                let point_mask = rng.gen::<f64>() < self.mask_frac;
                if avail[t] && (in_block || point_mask) {
                    tokens.push((0.0, false));
                    targets.push((i, vals[t]));
                } else if avail[t] {
                    tokens.push((vals[t], true));
                } else {
                    tokens.push((0.0, false));
                }
            }
            if targets.is_empty() {
                continue;
            }
            let mut g = Graph::new();
            let est = model.forward(&mut g, &tokens, start);
            let mut errs = Vec::with_capacity(targets.len());
            for &(i, y) in &targets {
                let row = g.row(est, i);
                let e = g.index1d(row, 0);
                let yc = g.scalar(y);
                let d = g.sub(e, yc);
                errs.push(g.square(d));
            }
            let stacked = g.concat1d(&errs);
            let loss = g.mean(stacked);
            let grads = g.backward(loss);
            model.store.accumulate(g.param_grads(&grads));
            model.store.adam_step(&adam, 1.0);
        }

        // Inference: window centred on each missing run.
        let mut out = obs.values.clone();
        let missing = flat.available.complement();
        for s in 0..m {
            let vals = flat.values.series(s).to_vec();
            let avail = flat.available.series(s).to_vec();
            for (run_start, run_len) in missing.runs(s) {
                let run_end = run_start + run_len;
                let mut t = run_start;
                while t < run_end {
                    let centre = t + (ctx / 2).min(run_end - t);
                    let start = centre.saturating_sub(ctx / 2).min(t_len - ctx);
                    let tokens: Vec<(f64, bool)> = (start..start + ctx)
                        .map(|tt| if avail[tt] { (vals[tt], true) } else { (0.0, false) })
                        .collect();
                    let mut g = Graph::new();
                    let est = model.forward(&mut g, &tokens, start);
                    let ev = g.value(est);
                    let stop = run_end.min(start + ctx);
                    while t < stop {
                        if t >= start {
                            out.data_mut()[s * t_len + t] = ev.m(t - start, 0);
                        }
                        t += 1;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::imputer::MeanImputer;
    use mvi_data::metrics::mae;
    use mvi_data::scenarios::Scenario;

    #[test]
    fn transformer_beats_mean_on_periodic_data() {
        let ds = generate_with_shape(DatasetName::Chlorine, &[4], 240, 8);
        let inst = Scenario::mcar(1.0).apply(&ds, 5);
        let obs = inst.observed();
        let tf = mae(&ds.values, &VanillaTransformer::tiny().impute(&obs), &inst.missing);
        let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
        assert!(tf < mean, "transformer {tf} vs mean {mean}");
    }

    #[test]
    fn all_missing_entries_filled_finite() {
        let ds = generate_with_shape(DatasetName::Electricity, &[4], 200, 2);
        let inst = Scenario::Blackout { block_len: 30 }.apply(&ds, 3);
        let obs = inst.observed();
        let out = VanillaTransformer::tiny().impute(&obs);
        assert!(out.all_finite());
        for i in 0..out.len() {
            if obs.available.at(i) {
                assert_eq!(out.at(i), obs.values.at(i));
            }
        }
    }

    #[test]
    fn short_series_are_handled() {
        // Context longer than the series must clamp, not panic.
        let ds = generate_with_shape(DatasetName::AirQ, &[4], 130, 5);
        let inst = Scenario::mcar(1.0).apply(&ds, 2);
        let cfg = VanillaTransformer { context: 512, ..VanillaTransformer::tiny() };
        let out = cfg.impute(&inst.observed());
        assert!(out.all_finite());
    }
}
