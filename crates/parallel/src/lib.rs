//! Scoped data-parallel helpers shared by the compute kernels and the trainer.
//!
//! The workspace has no crates.io access, so instead of rayon this crate
//! provides the two primitives the hot paths actually need, built on
//! [`std::thread::scope`]:
//!
//! * [`for_row_spans_mut`] — partition a mutable row-major buffer into
//!   contiguous row spans, one per worker (used by the matmul kernels to
//!   split the output matrix),
//! * [`map_chunks`] — map a function over contiguous chunks of a shared
//!   slice, collecting per-chunk results in order (used by
//!   `Trainer::batch_gradients` for data-parallel gradient accumulation).
//!
//! Worker counts come from the caller, clamped to [`current_threads`], which
//! defaults to the machine's available parallelism and can be overridden
//! globally ([`configure_threads`], wired to `--threads=N` in the bench
//! binaries) or per process via the `MVI_THREADS` environment variable.
//! Spawning per call costs ~10–20 µs per worker, which is noise at the
//! millisecond-scale granularity of the kernels and training steps gated
//! behind size thresholds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// 0 = unset (fall back to `MVI_THREADS` / available parallelism).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Globally caps worker threads for all parallel helpers (0 clears the cap).
pub fn configure_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The default hardware parallelism: `std::thread::available_parallelism`
/// (logical CPUs), or 1 if that cannot be determined. Cached — the kernels
/// call this on every invocation and the underlying affinity syscall is not
/// free.
pub fn available_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The `MVI_THREADS` env override, resolved once (env lookups take the
/// process-global env lock, which hot kernel paths must not contend on).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MVI_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
    })
}

/// The effective worker-thread budget: [`configure_threads`] override if set,
/// else the `MVI_THREADS` environment variable (read once), else
/// [`available_threads`].
///
/// Always clamped to [`available_threads`] (logical CPUs): the helpers run
/// CPU-bound work, where oversubscribing the machine only adds
/// context-switch overhead (measured ~1.8× slowdown for a 256³ GEMM with 4
/// workers on 1 core).
pub fn current_threads() -> usize {
    let hw = available_threads();
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced.min(hw);
    }
    env_threads().map_or(hw, |n| n.min(hw))
}

/// Splits `data` (a row-major buffer of rows of length `row_len`) into at most
/// `threads` contiguous row spans and runs `f(first_row, span)` on each span
/// in parallel. The final span runs on the calling thread.
///
/// `threads` is clamped to [`current_threads`] and to the row count; with one
/// effective worker the call is a plain inline invocation (no spawn).
pub fn for_row_spans_mut<T, F>(data: &mut [T], row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n_rows = data.len().checked_div(row_len).unwrap_or(0);
    let workers = threads.min(current_threads()).min(n_rows.max(1)).max(1);
    if workers <= 1 || n_rows <= 1 {
        f(0, data);
        return;
    }
    let rows_per = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = data;
        let mut first_row = 0;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (span, tail) = rest.split_at_mut(take);
            rest = tail;
            let row0 = first_row;
            first_row += take / row_len;
            if rest.is_empty() {
                // Run the final span inline instead of spawning and idling.
                f(row0, span);
            } else {
                scope.spawn(move || f(row0, span));
            }
        }
    });
}

/// Maps `f` over at most `threads` contiguous chunks of `items`, in parallel,
/// returning the per-chunk results in chunk order. The final chunk runs on
/// the calling thread.
pub fn map_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let workers = threads.min(current_threads()).min(items.len().max(1)).max(1);
    if workers <= 1 {
        return vec![f(items)];
    }
    let chunk = items.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::new();
        let mut parts = items.chunks(chunk);
        let last = parts.next_back();
        for part in parts {
            handles.push(scope.spawn(move || f(part)));
        }
        let mut out: Vec<R> = Vec::with_capacity(workers);
        let tail = last.map(f);
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
        out.extend(tail);
        out
    })
}

/// Runs `workers` instances of `f` concurrently on scoped threads, passing
/// each its worker index and returning the results in index order. The final
/// worker runs on the calling thread.
///
/// Unlike [`map_chunks`], the worker count is taken **literally** — no
/// clamping to [`current_threads`] or the machine's core count. This is the
/// harness primitive for concurrency stress tests and multi-threaded serving
/// benches, whose whole point is driving more concurrent callers than cores
/// (the workloads block on locks and channels, not on compute).
///
/// # Panics
/// Propagates the first worker panic after all workers finish or unwind.
pub fn run_workers<R, F>(workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers == 0 {
        return Vec::new();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers - 1).map(|i| scope.spawn(move || f(i))).collect();
        let tail = f(workers - 1);
        let mut out: Vec<R> =
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
        out.push(tail);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_spans_cover_everything_exactly_once() {
        let row_len = 7;
        let n_rows = 23;
        let mut data = vec![0u32; row_len * n_rows];
        for threads in [1, 2, 3, 8, 64] {
            data.iter_mut().for_each(|x| *x = 0);
            for_row_spans_mut(&mut data, row_len, threads, |first_row, span| {
                assert_eq!(span.len() % row_len, 0);
                for (r, row) in span.chunks_exact_mut(row_len).enumerate() {
                    for x in row.iter_mut() {
                        *x += (first_row + r) as u32 + 1;
                    }
                }
            });
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, (i / row_len) as u32 + 1, "threads={threads} idx={i}");
            }
        }
    }

    #[test]
    fn row_spans_handle_degenerate_shapes() {
        let mut empty: Vec<f64> = Vec::new();
        for_row_spans_mut(&mut empty, 0, 4, |_, span| assert!(span.is_empty()));
        for_row_spans_mut(&mut empty, 5, 4, |_, span| assert!(span.is_empty()));
        let mut one = vec![1.0; 9];
        for_row_spans_mut(&mut one, 9, 4, |first, span| {
            assert_eq!(first, 0);
            assert_eq!(span.len(), 9);
        });
    }

    #[test]
    fn map_chunks_preserves_order_and_coverage() {
        let items: Vec<usize> = (0..101).collect();
        for threads in [1, 2, 5, 16] {
            let sums = map_chunks(&items, threads, |part| part.iter().sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), 101 * 100 / 2, "threads={threads}");
            let firsts = map_chunks(&items, threads, |part| part[0]);
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            assert_eq!(firsts, sorted, "chunk results out of order");
        }
    }

    #[test]
    fn map_chunks_on_empty_input() {
        let items: Vec<usize> = Vec::new();
        let out = map_chunks(&items, 4, |part| part.len());
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn run_workers_is_literal_and_ordered() {
        assert!(run_workers(0, |i| i).is_empty());
        // Deliberately oversubscribed: the count is taken as given.
        let out = run_workers(17, |i| i * 2);
        assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_budget_override_wins() {
        configure_threads(3);
        assert_eq!(current_threads(), 3.min(available_threads()));
        configure_threads(0);
        assert!(current_threads() >= 1);
    }
}
