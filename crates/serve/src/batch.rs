//! Micro-batching front door: concurrent callers funnel requests through a
//! channel to one executor thread, which drains whatever is pending (up to a
//! cap) and serves it as a single coalesced [`ImputationEngine::query_batch`].
//!
//! Requests that arrive while a batch is executing queue up and form the next
//! batch, so under concurrent load the per-request cost amortizes: overlapping
//! query windows are deduplicated into one forward pass, and the forward
//! passes of a batch run data-parallel over `mvi-parallel`.

use crate::engine::{ImputationEngine, ImputeRequest, ServeError};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

type Reply = Result<Vec<f64>, ServeError>;

struct QueryJob {
    req: ImputeRequest,
    reply: mpsc::Sender<Reply>,
}

enum Job {
    Query(Box<QueryJob>),
    /// Sent by `Drop`: clients may still hold sender clones, so channel
    /// disconnection alone cannot signal shutdown.
    Shutdown,
}

/// The executor half: owns the engine reference and the worker thread.
/// Dropping the batcher drains in-flight jobs and joins the worker.
pub struct MicroBatcher {
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<JoinHandle<()>>,
    engine: Arc<ImputationEngine>,
}

/// A cloneable handle clients use to submit blocking queries.
#[derive(Clone)]
pub struct BatchClient {
    tx: mpsc::Sender<Job>,
}

impl MicroBatcher {
    /// Spawns the executor thread. `max_batch` caps how many pending requests
    /// one batch may coalesce (≥ 1).
    pub fn spawn(engine: Arc<ImputationEngine>, max_batch: usize) -> Self {
        let max_batch = max_batch.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let exec = Arc::clone(&engine);
        let worker = std::thread::spawn(move || {
            while let Ok(first) = rx.recv() {
                let mut jobs = Vec::new();
                let mut stop = match first {
                    Job::Shutdown => break,
                    Job::Query(q) => {
                        jobs.push(q);
                        false
                    }
                };
                while !stop && jobs.len() < max_batch {
                    match rx.try_recv() {
                        Ok(Job::Query(q)) => jobs.push(q),
                        Ok(Job::Shutdown) => stop = true,
                        Err(_) => break,
                    }
                }
                let reqs: Vec<ImputeRequest> = jobs.iter().map(|j| j.req).collect();
                let results = exec.query_batch(&reqs);
                for (job, result) in jobs.into_iter().zip(results) {
                    // A disconnected client (it gave up) is not an executor error.
                    let _ = job.reply.send(result);
                }
                if stop {
                    break;
                }
            }
            // Dropping `rx` here disconnects queued and future jobs; their
            // reply senders drop with them, failing in-flight clients cleanly.
        });
        Self { tx: Some(tx), worker: Some(worker), engine }
    }

    /// A new client handle for this batcher.
    pub fn client(&self) -> BatchClient {
        BatchClient { tx: self.tx.as_ref().expect("batcher alive").clone() }
    }

    /// The engine the batcher executes against.
    pub fn engine(&self) -> &Arc<ImputationEngine> {
        &self.engine
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            // The worker may be mid-batch; the sentinel reaches it at the
            // next drain. Send can only fail if the worker already exited.
            let _ = tx.send(Job::Shutdown);
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl BatchClient {
    /// Submits one request and blocks until its micro-batch executes.
    ///
    /// # Errors
    /// Validation errors from the engine pass through per request;
    /// [`ServeError::Shutdown`] if the batcher shut down before the request
    /// was answered (transient — the request itself may be valid).
    pub fn query(&self, s: usize, start: usize, end: usize) -> Result<Vec<f64>, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::Query(Box::new(QueryJob {
            req: ImputeRequest { s, start, end },
            reply: reply_tx,
        }));
        if self.tx.send(job).is_err() {
            return Err(ServeError::Shutdown);
        }
        reply_rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmvi::{DeepMviConfig, DeepMviModel};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn engine() -> Arc<ImputationEngine> {
        let ds = generate_with_shape(DatasetName::AirQ, &[3], 120, 4);
        let obs = Scenario::mcar(1.0).apply(&ds, 2).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        Arc::new(ImputationEngine::new(model.freeze(), obs).unwrap())
    }

    #[test]
    fn concurrent_clients_get_the_same_answers_as_direct_queries() {
        let engine = engine();
        let t = engine.grid().t_len();
        let full = engine.model().impute(&engine.observed());
        let batcher = MicroBatcher::spawn(Arc::clone(&engine), 8);
        let mut handles = Vec::new();
        for s in 0..3 {
            for _ in 0..4 {
                let client = batcher.client();
                handles.push(std::thread::spawn(move || (s, client.query(s, 0, t))));
            }
        }
        for h in handles {
            let (s, got) = h.join().unwrap();
            assert_eq!(got.unwrap(), full.series(s), "series {s} diverged through the batcher");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert!(stats.batches <= stats.requests, "batching never increases batch count");
    }

    #[test]
    fn batcher_shutdown_is_clean() {
        let engine = engine();
        let client = {
            let batcher = MicroBatcher::spawn(Arc::clone(&engine), 4);
            let c = batcher.client();
            assert!(c.query(0, 0, 10).is_ok());
            c
            // batcher drops here: worker joins.
        };
        // Requests after shutdown fail with the transient error, not a
        // validation error, and never hang.
        assert_eq!(client.query(0, 0, 10), Err(ServeError::Shutdown));
    }
}
