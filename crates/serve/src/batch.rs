//! Micro-batching front door: concurrent callers funnel requests through a
//! channel to one executor thread, which drains whatever is pending (up to a
//! cap) and serves it as a single coalesced [`ImputationEngine::query_batch`].
//!
//! Requests that arrive while a batch is executing queue up and form the next
//! batch, so under concurrent load the per-request cost amortizes: overlapping
//! query windows are deduplicated into one forward pass, and the forward
//! passes of a batch run data-parallel over `mvi-parallel`.
//!
//! ## Fault tolerance
//!
//! The front door is built to stay answerable when a request misbehaves (see
//! [`BatcherConfig`] for the knobs):
//!
//! * **Supervision** — the worker executes every batch under
//!   [`std::panic::catch_unwind`]. A panicking batch is retried one request at
//!   a time to isolate the culprit: the panicking request(s) get a typed
//!   [`ServeError::Panicked`] reply, innocent batch-mates get their real
//!   answers, and the worker keeps serving (the supervisor respawns the
//!   request loop in place — no thread churn, no lost queue). The engine
//!   itself heals from the unwound lock via its poison-recovering state lock.
//! * **Backpressure** — the pending queue is bounded
//!   ([`BatcherConfig::queue_cap`]); a full queue fails the submit immediately
//!   with [`ServeError::Overloaded`] instead of buffering without limit.
//! * **Deadlines** — with [`BatcherConfig::deadline`] set, a request that is
//!   not answered in time returns [`ServeError::DeadlineExceeded`]: the client
//!   is released even if an evaluation is stuck, and a request that expired
//!   while still queued is dropped by the worker without wasting a forward
//!   pass on it.
//! * **Clean shutdown** — dropping the [`MicroBatcher`] stops the worker and
//!   drains every still-queued request with a [`ServeError::Shutdown`] reply,
//!   so no caller is left hanging. A reply channel that disconnects
//!   *without* a typed answer is reported as the distinct
//!   [`ServeError::Disconnected`]: deliberate drains always answer, so a
//!   silent disconnect means the reply was lost (a crash, or a submission
//!   racing the final drain) and the caller must not assume whether the
//!   evaluation ran.

use crate::engine::{ImputationEngine, ImputeRequest, ServeError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Reply = Result<Vec<f64>, ServeError>;

struct QueryJob {
    req: ImputeRequest,
    reply: mpsc::Sender<Reply>,
    /// When the client stops waiting ([`BatcherConfig::deadline`]); a job
    /// already expired at drain time is answered `DeadlineExceeded` without
    /// spending a forward pass on it.
    deadline: Option<Instant>,
}

enum Job {
    Query(Box<QueryJob>),
    /// Sent by `Drop`: clients may still hold sender clones, so channel
    /// disconnection alone cannot signal shutdown.
    Shutdown,
}

/// Tuning for [`MicroBatcher::spawn_with`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatcherConfig {
    /// How many pending requests one batch may coalesce (≥ 1).
    pub max_batch: usize,
    /// Bound on the pending-request queue (≥ 1): submissions beyond it fail
    /// fast with [`ServeError::Overloaded`] instead of buffering unboundedly.
    pub queue_cap: usize,
    /// Per-request deadline. `None` waits indefinitely; `Some(d)` makes a
    /// query return [`ServeError::DeadlineExceeded`] if no reply arrived
    /// within `d` of submission (stuck evaluation, or expired while queued).
    pub deadline: Option<Duration>,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { max_batch: 32, queue_cap: 1024, deadline: None }
    }
}

/// The executor half: owns the engine reference and the worker thread.
/// Dropping the batcher drains still-queued jobs with [`ServeError::Shutdown`]
/// replies and joins the worker.
pub struct MicroBatcher {
    tx: Option<mpsc::SyncSender<Job>>,
    worker: Option<JoinHandle<()>>,
    engine: Arc<ImputationEngine>,
    config: BatcherConfig,
    stop: Arc<AtomicBool>,
    panics: Arc<AtomicU64>,
    depth: Arc<AtomicUsize>,
}

/// A cloneable handle clients use to submit blocking queries.
#[derive(Clone)]
pub struct BatchClient {
    tx: mpsc::SyncSender<Job>,
    queue_cap: usize,
    deadline: Option<Duration>,
    depth: Arc<AtomicUsize>,
}

impl MicroBatcher {
    /// Spawns the executor thread with default queue bound and no deadline.
    /// `max_batch` caps how many pending requests one batch may coalesce
    /// (≥ 1).
    pub fn spawn(engine: Arc<ImputationEngine>, max_batch: usize) -> Self {
        Self::spawn_with(engine, BatcherConfig { max_batch, ..BatcherConfig::default() })
    }

    /// Spawns the executor thread with explicit fault-tolerance tuning; see
    /// [`BatcherConfig`] and the module docs for the failure semantics.
    pub fn spawn_with(engine: Arc<ImputationEngine>, config: BatcherConfig) -> Self {
        let config = BatcherConfig {
            max_batch: config.max_batch.max(1),
            queue_cap: config.queue_cap.max(1),
            ..config
        };
        let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_cap);
        let exec = Arc::clone(&engine);
        let stop = Arc::new(AtomicBool::new(false));
        let panics = Arc::new(AtomicU64::new(0));
        let depth = Arc::new(AtomicUsize::new(0));
        let (worker_stop, worker_panics) = (Arc::clone(&stop), Arc::clone(&panics));
        let worker_depth = Arc::clone(&depth);
        let max_batch = config.max_batch;
        let worker = std::thread::spawn(move || {
            // Queue-depth accounting: clients increment before submitting, the
            // worker decrements as it pops each query job off the channel.
            let pop = |n: usize| {
                worker_depth.fetch_sub(n, Ordering::Relaxed);
            };
            while let Ok(first) = rx.recv() {
                if worker_stop.load(Ordering::Acquire) {
                    // Shutting down: this job and everything behind it gets a
                    // typed reply instead of silence.
                    if let Job::Query(q) = first {
                        pop(1);
                        let _ = q.reply.send(Err(ServeError::Shutdown));
                    }
                    break;
                }
                let mut jobs = Vec::new();
                let mut stop_seen = match first {
                    Job::Shutdown => break,
                    Job::Query(q) => {
                        jobs.push(*q);
                        false
                    }
                };
                while !stop_seen && jobs.len() < max_batch {
                    match rx.try_recv() {
                        Ok(Job::Query(q)) => jobs.push(*q),
                        Ok(Job::Shutdown) => stop_seen = true,
                        Err(_) => break,
                    }
                }
                pop(jobs.len());
                // A job whose client already gave up is answered (the client
                // is gone — the send is a no-op) but not evaluated.
                let now = Instant::now();
                jobs.retain(|job| {
                    let expired = job.deadline.is_some_and(|d| now > d);
                    if expired {
                        let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
                    }
                    !expired
                });
                Self::execute(&exec, jobs, &worker_panics);
                if stop_seen {
                    break;
                }
            }
            // Shutdown drain: everything still queued gets a typed Shutdown
            // reply instead of being dropped on the floor.
            while let Ok(job) = rx.try_recv() {
                if let Job::Query(q) = job {
                    pop(1);
                    let _ = q.reply.send(Err(ServeError::Shutdown));
                }
            }
        });
        Self { tx: Some(tx), worker: Some(worker), engine, config, stop, panics, depth }
    }

    /// Runs one batch under the supervisor: the coalesced fast path first,
    /// and on a panic a one-by-one retry that isolates the culprit — the
    /// panicking request(s) reply [`ServeError::Panicked`], the rest get
    /// their real answers.
    fn execute(exec: &ImputationEngine, jobs: Vec<QueryJob>, panics: &AtomicU64) {
        if jobs.is_empty() {
            return;
        }
        let reqs: Vec<ImputeRequest> = jobs.iter().map(|j| j.req).collect();
        match catch_unwind(AssertUnwindSafe(|| exec.query_batch(&reqs))) {
            Ok(results) => {
                for (job, result) in jobs.into_iter().zip(results) {
                    // A disconnected client (it gave up) is not an executor error.
                    let _ = job.reply.send(result);
                }
            }
            Err(_) => {
                panics.fetch_add(1, Ordering::Relaxed);
                for job in jobs {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        exec.query(job.req.s, job.req.start, job.req.end)
                    }))
                    .unwrap_or_else(|_| {
                        panics.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Panicked)
                    });
                    let _ = job.reply.send(result);
                }
            }
        }
    }

    /// A new client handle for this batcher.
    pub fn client(&self) -> BatchClient {
        BatchClient {
            // mvi-allow: panic — tx is only taken in Drop, so it is Some for any live &self
            tx: self.tx.as_ref().expect("batcher alive").clone(),
            queue_cap: self.config.queue_cap,
            deadline: self.config.deadline,
            depth: Arc::clone(&self.depth),
        }
    }

    /// The engine the batcher executes against.
    pub fn engine(&self) -> &Arc<ImputationEngine> {
        &self.engine
    }

    /// How many panics the supervisor has caught (batch-level and isolated
    /// retries both count). Stable at `0` in a healthy deployment.
    pub fn panics_caught(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Requests currently pending: queued in the bounded channel or mid
    /// submission. A load-pressure signal for health surfaces — compare
    /// against [`BatcherConfig::queue_cap`] to see how close the door is to
    /// shedding.
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(tx) = self.tx.take() {
            // Blocking send: the queue may be full, but the worker is
            // draining it, so space frees up; failure means the worker
            // already exited. The stop flag (set above) guarantees every job
            // the worker sees from now on is answered with `Shutdown`.
            let _ = tx.send(Job::Shutdown);
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl BatchClient {
    /// Submits one request and blocks until its micro-batch executes (or the
    /// configured deadline passes).
    ///
    /// # Errors
    /// Validation errors from the engine pass through per request;
    /// [`ServeError::Overloaded`] when the bounded pending queue is full
    /// (retry with backoff); [`ServeError::DeadlineExceeded`] when a
    /// configured deadline elapsed first; [`ServeError::Panicked`] when this
    /// request's evaluation panicked in the executor;
    /// [`ServeError::Shutdown`] when the batcher shut down before the request
    /// was answered — either the submit found the door already closed, or the
    /// drain answered this queued request with the typed reply;
    /// [`ServeError::Disconnected`] when the reply channel disconnected
    /// *without* a typed answer — the reply was lost (worker crash, or a
    /// submission racing the final shutdown drain), so whether the
    /// evaluation ran is unknown.
    pub fn query(&self, s: usize, start: usize, end: usize) -> Result<Vec<f64>, ServeError> {
        let deadline = self.deadline.map(|d| Instant::now() + d);
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::Query(Box::new(QueryJob {
            req: ImputeRequest { s, start, end },
            reply: reply_tx,
            deadline,
        }));
        // Count the submission before it can be popped, so the worker's
        // decrement never races the increment below zero.
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded { capacity: self.queue_cap });
            }
            Err(TrySendError::Disconnected(_)) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                return Err(ServeError::Shutdown);
            }
        }
        match deadline {
            None => reply_rx.recv().unwrap_or(Err(ServeError::Disconnected)),
            Some(d) => match reply_rx.recv_timeout(d.saturating_duration_since(Instant::now())) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => Err(ServeError::DeadlineExceeded),
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::Disconnected),
            },
        }
    }

    /// Same pending-request gauge as [`MicroBatcher::queue_depth`], readable
    /// from the client half (the batcher may already be gone while handles
    /// live on — e.g. during a server drain).
    pub fn queue_depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The bounded queue capacity this handle submits against.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmvi::{DeepMviConfig, DeepMviModel};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn engine() -> Arc<ImputationEngine> {
        let ds = generate_with_shape(DatasetName::AirQ, &[3], 120, 4);
        let obs = Scenario::mcar(1.0).apply(&ds, 2).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        Arc::new(ImputationEngine::new(model.freeze(), obs).unwrap())
    }

    #[test]
    fn concurrent_clients_get_the_same_answers_as_direct_queries() {
        let engine = engine();
        let t = engine.grid().t_len();
        let full = engine.model().impute(&engine.observed());
        let batcher = MicroBatcher::spawn(Arc::clone(&engine), 8);
        let mut handles = Vec::new();
        for s in 0..3 {
            for _ in 0..4 {
                let client = batcher.client();
                handles.push(std::thread::spawn(move || (s, client.query(s, 0, t))));
            }
        }
        for h in handles {
            let (s, got) = h.join().unwrap();
            assert_eq!(got.unwrap(), full.series(s), "series {s} diverged through the batcher");
        }
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert!(stats.batches <= stats.requests, "batching never increases batch count");
        assert_eq!(batcher.panics_caught(), 0);
    }

    #[test]
    fn batcher_shutdown_is_clean() {
        let engine = engine();
        let client = {
            let batcher = MicroBatcher::spawn(Arc::clone(&engine), 4);
            let c = batcher.client();
            assert!(c.query(0, 0, 10).is_ok());
            c
            // batcher drops here: worker joins.
        };
        // Requests after shutdown fail with the transient error, not a
        // validation error, and never hang.
        assert_eq!(client.query(0, 0, 10), Err(ServeError::Shutdown));
    }

    #[test]
    fn queries_racing_shutdown_get_answers_or_shutdown_never_hang() {
        // Many clients submit while the batcher is being dropped: every
        // outcome must be a real answer or a typed transient error — no
        // hangs, no dropped-on-the-floor replies, no panics.
        let engine = engine();
        let t = engine.grid().t_len();
        engine.warm_up();
        for _ in 0..5 {
            let batcher = MicroBatcher::spawn(Arc::clone(&engine), 2);
            let mut handles = Vec::new();
            for k in 0..8 {
                let client = batcher.client();
                handles.push(std::thread::spawn(move || client.query(k % 3, 0, t)));
            }
            drop(batcher);
            for h in handles {
                match h.join().unwrap() {
                    Ok(vals) => assert_eq!(vals.len(), t),
                    Err(ServeError::Shutdown) => {}
                    // A submission can slip into the channel after the drain
                    // loop's final sweep but before the receiver drops; its
                    // reply is lost, which is exactly what `Disconnected`
                    // (as opposed to the answered `Shutdown`) reports.
                    Err(ServeError::Disconnected) => {}
                    Err(other) => panic!("unexpected racing-shutdown error: {other}"),
                }
            }
        }
    }
}
