//! Durable on-disk snapshots: crash-safe writes and corruption-detecting
//! reads for [`ServeSnapshot`] artifacts.
//!
//! The JSON wire format ([`crate::snapshot`]) checksums each *packed section*
//! (weights, cache buffers), which catches bit rot inside the big payloads
//! but not damage to the JSON structure around them, and nothing at all about
//! torn or truncated writes. This module closes both gaps:
//!
//! * **Framed file format** — a one-line header
//!   `MVISNAP v4 crc32=<8 hex> len=<bytes>\n` followed by exactly `len` bytes
//!   of snapshot JSON. The digest covers the whole body, so any flipped bit
//!   or missing tail fails the read with a typed [`ServeError::Corrupt`]
//!   naming what broke (`header`, `body`, or `digest`) — never a panic, never
//!   a silently-wrong model. Bare JSON files (a snapshot saved by hand, or
//!   from a pre-durable build) are still accepted: a file starting with `{`
//!   skips the frame and relies on the wire-level checks alone.
//! * **Atomic writes** — [`ServeSnapshot::to_path`] /
//!   [`crate::ImputationEngine::snapshot_to_path`] write to a temporary file
//!   in the same directory, sync it, then `rename` into place, so a crash
//!   mid-write leaves the previous snapshot intact instead of a half-written
//!   one.
//! * **Fallback restore** — [`crate::ImputationEngine::restore_with_fallback`]
//!   walks an ordered list of snapshot paths (newest first) and serves the
//!   first one that loads clean, so one corrupt generation degrades a restart
//!   to slightly-older state instead of no state.

use crate::engine::ServeError;
use crate::snapshot::ServeSnapshot;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Magic prefix of the framed snapshot file header.
const MAGIC: &str = "MVISNAP";

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`. This is the
/// digest used both per packed wire section and for the whole-file frame;
/// exposed so external tooling (and the fault-injection suite) can produce
/// or verify digests without reimplementing the table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Frames `json` with the digest header.
fn frame(json: &str) -> String {
    format!("{MAGIC} v4 crc32={:08x} len={}\n{json}", crc32(json.as_bytes()), json.len())
}

/// Validates a framed file's header and digest and returns the JSON body.
fn unframe(bytes: &[u8]) -> Result<String, ServeError> {
    let corrupt = |section: &str, detail: String| ServeError::Corrupt {
        section: section.to_string(),
        detail,
    };
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("header", "no header line (file truncated?)".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| corrupt("header", "header is not UTF-8".into()))?;
    let mut fields = header.split(' ');
    match (fields.next(), fields.next()) {
        (Some(MAGIC), Some(v)) if v.starts_with('v') => {}
        _ => return Err(corrupt("header", format!("malformed header `{header}`"))),
    }
    let (mut digest, mut len) = (None, None);
    for field in fields {
        if let Some(hex) = field.strip_prefix("crc32=") {
            digest = u32::from_str_radix(hex, 16).ok();
            if digest.is_none() {
                return Err(corrupt("header", format!("bad digest field `{field}`")));
            }
        } else if let Some(n) = field.strip_prefix("len=") {
            len = n.parse::<usize>().ok();
            if len.is_none() {
                return Err(corrupt("header", format!("bad length field `{field}`")));
            }
        }
    }
    let (Some(digest), Some(len)) = (digest, len) else {
        return Err(corrupt("header", format!("header `{header}` is missing crc32/len")));
    };
    let body = &bytes[newline + 1..];
    if body.len() != len {
        return Err(corrupt(
            "body",
            format!(
                "body holds {} of the declared {len} bytes (torn or truncated write)",
                body.len()
            ),
        ));
    }
    let actual = crc32(body);
    if actual != digest {
        return Err(corrupt(
            "digest",
            format!("body crc32 {actual:08x} does not match recorded {digest:08x}"),
        ));
    }
    String::from_utf8(body.to_vec()).map_err(|_| corrupt("body", "body is not UTF-8".into()))
}

impl ServeSnapshot {
    /// Writes the snapshot to `path` in the framed durable format —
    /// **atomically**: the bytes land in a temporary sibling file, are synced
    /// to disk, and only then renamed over `path`, so a crash mid-write can
    /// never leave a half-written snapshot under the real name.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] wrapping the underlying I/O failure.
    pub fn to_path(&self, path: &Path) -> Result<(), ServeError> {
        let io_err = |what: &str, e: std::io::Error| {
            ServeError::Snapshot(format!("{what} `{}`: {e}", path.display()))
        };
        let framed = frame(&self.to_json());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file =
                fs::File::create(&tmp).map_err(|e| io_err("cannot create temp file for", e))?;
            file.write_all(framed.as_bytes()).map_err(|e| io_err("cannot write", e))?;
            file.sync_all().map_err(|e| io_err("cannot sync", e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err("cannot rename into", e))
    }

    /// Reads a snapshot from `path`: a framed durable file (header + digest
    /// verified) or a bare JSON artifact (starts with `{`; wire-level
    /// checksums still apply).
    ///
    /// # Errors
    /// [`ServeError::Corrupt`] naming the broken section (`header`, `body`,
    /// `digest`, or a wire section such as `params/<name>`);
    /// [`ServeError::Snapshot`] for I/O failures and JSON-level damage.
    pub fn from_path(path: &Path) -> Result<Self, ServeError> {
        let bytes = fs::read(path)
            .map_err(|e| ServeError::Snapshot(format!("cannot read `{}`: {e}", path.display())))?;
        let json = if bytes.first() == Some(&b'{') {
            String::from_utf8(bytes).map_err(|_| ServeError::Corrupt {
                section: "body".into(),
                detail: "bare JSON snapshot is not UTF-8".into(),
            })?
        } else {
            unframe(&bytes)?
        };
        Self::from_json(&json)
    }
}

impl crate::ImputationEngine {
    /// Captures the warm serving state ([`crate::ImputationEngine::snapshot`])
    /// and persists it durably at `path` — framed with a whole-file digest,
    /// written via temp-file + atomic rename ([`ServeSnapshot::to_path`]).
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] wrapping the underlying I/O failure.
    pub fn snapshot_to_path(&self, path: &Path) -> Result<(), ServeError> {
        self.snapshot().to_path(path)
    }

    /// Warm-restarts an engine from a durable snapshot file: reads and
    /// integrity-checks `path` ([`ServeSnapshot::from_path`]), then restores
    /// as [`crate::ImputationEngine::from_snapshot`].
    ///
    /// # Errors
    /// Every corruption is a typed error naming what broke — see
    /// [`ServeSnapshot::from_path`] — plus the restore errors of
    /// [`crate::ImputationEngine::from_snapshot`].
    pub fn from_snapshot_path(path: &Path) -> Result<Self, ServeError> {
        Self::from_snapshot(&ServeSnapshot::from_path(path)?)
    }

    /// Walks `paths` (order them newest-first) and warm-restarts from the
    /// first snapshot that loads clean, returning the engine together with
    /// the index of the path that served it — a corrupt newest generation
    /// degrades the restart to slightly-older state instead of no state.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] listing every candidate's failure when none
    /// of the paths yields a loadable snapshot (including an empty `paths`).
    pub fn restore_with_fallback<P: AsRef<Path>>(paths: &[P]) -> Result<(Self, usize), ServeError> {
        let mut failures = Vec::with_capacity(paths.len());
        for (i, path) in paths.iter().enumerate() {
            match Self::from_snapshot_path(path.as_ref()) {
                Ok(engine) => return Ok((engine, i)),
                Err(e) => failures.push(format!("`{}`: {e}", path.as_ref().display())),
            }
        }
        Err(ServeError::Snapshot(format!(
            "no loadable snapshot among {} candidate(s): [{}]",
            paths.len(),
            failures.join("; ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrips_and_detects_damage() {
        let json = r#"{"version":4,"hello":"world"}"#;
        let framed = frame(json);
        assert!(framed.starts_with("MVISNAP v4 crc32="));
        assert_eq!(unframe(framed.as_bytes()).unwrap(), json);

        // Truncation: body shorter than declared.
        let truncated = &framed.as_bytes()[..framed.len() - 3];
        assert!(matches!(
            unframe(truncated),
            Err(ServeError::Corrupt { section, .. }) if section == "body"
        ));

        // One flipped body byte: digest mismatch.
        let mut flipped = framed.clone().into_bytes();
        let body_start = framed.find('\n').unwrap() + 1;
        flipped[body_start + 5] ^= 0x20;
        assert!(matches!(
            unframe(&flipped),
            Err(ServeError::Corrupt { section, .. }) if section == "digest"
        ));

        // A damaged header is a header error, not a parse panic.
        assert!(matches!(
            unframe(b"NOTSNAP v4 crc32=00000000 len=2\n{}"),
            Err(ServeError::Corrupt { section, .. }) if section == "header"
        ));
        assert!(matches!(
            unframe(b"MVISNAP v4 crc32=zzzzzzzz len=2\n{}"),
            Err(ServeError::Corrupt { section, .. }) if section == "header"
        ));
        assert!(matches!(
            unframe(b"no newline at all"),
            Err(ServeError::Corrupt { section, .. }) if section == "header"
        ));
    }
}
