//! The online imputation engine: a warm frozen model plus the mutable serving
//! state (observed values, imputation cache, per-window freshness).
//!
//! ## Consistency model
//!
//! The engine keeps a full-tensor imputation cache guarded by one mutex, with
//! a per-`(series, window)` freshness bit. Queries serve fresh windows straight
//! from the cache; stale windows covering missing entries are recomputed on
//! demand — coalesced across a batch so overlapping requests share one forward
//! pass per window ([`ImputationEngine::query_batch`]).
//!
//! [`ImputationEngine::append`] records newly arrived values at a series'
//! write watermark and re-imputes only the **affected tail windows** instead of
//! the full tensor:
//!
//! * the appended series: every window from one window before the append
//!   onwards (the fine-grained local mean of §4.1.1 reaches `w` steps across a
//!   window boundary, so re-imputation starts one window early);
//! * sibling series: only windows overlapping the appended range — the kernel
//!   regression (§4.2) reads sibling values pointwise at the imputed position,
//!   and the temporal transformer and local mean never cross series.
//!
//! Windows of the appended series *before* the recomputed tail are marked
//! stale rather than recomputed: their attention context (up to `ctx_windows`
//! windows) may span the append, so they heal lazily on the next query that
//! touches them. Values recomputed by `append` are exactly what a full batch
//! re-impute over the current state would produce — the integration tests
//! assert equality to 1e-9.
//!
//! ## Growable series capacity
//!
//! Series are **not** capped at the length the model was trained on. The
//! engine tracks a *live* length (the [`mvi_data::windows::WindowGrid`] grows
//! with it) and an internal storage *capacity*: an append running past the
//! live end extends the live length, and when it also runs past capacity the
//! backing [`ObservedDataset`]/[`Tensor`] grow geometrically (≥1.5×,
//! window-aligned) via their `extend_time` mutators, so the per-appended-value
//! storage cost stays amortized O(1). The slack between live length and
//! capacity is entirely missing/unobserved and is never visible through the
//! API: queries validate against the live length, and
//! [`ImputationEngine::observed`]/[`ImputationEngine::cached_values`] return
//! the live prefix.
//!
//! Windows past the trained length are evaluated by the frozen model's
//! *rolling* temporal context (the attention horizon slides to the most recent
//! trained-length span of windows, with horizon-relative positional
//! encodings), so a grown engine still matches a batch re-impute of the
//! equivalently extended dataset to 1e-9 — see `deepmvi::FrozenModel::t_len`.
//!
//! ## Watermarks and interior gaps
//!
//! Each series has one **write watermark**: the position just past the last
//! observed entry at construction, advanced by every append. `append` is the
//! *streaming* mutation — it always records at the watermark. A series with a
//! hidden interior range followed by observed data starts with its watermark
//! past the gap, so late-arriving data for the interior cannot enter through
//! `append`; that is what [`ImputationEngine::fill_range`] is for — it records
//! values at an explicit in-range position (backfill), re-imputes the windows
//! within local (±`w`) reach of the filled range plus sibling overlaps, and
//! invalidates the rest of the series for lazy healing, exactly mirroring the
//! append consistency contract.

use deepmvi::{FrozenModel, InferScratch, WindowQuery};
use mvi_data::dataset::ObservedDataset;
use mvi_data::windows::WindowGrid;
use mvi_tensor::Tensor;
use std::collections::BTreeSet;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Errors produced by the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Model/dataset geometry mismatch (wrong dims, series length, weights).
    Geometry(String),
    /// Series id outside the dataset.
    Series { s: usize, n_series: usize },
    /// Time range outside the live series length or inverted.
    Range { start: usize, end: usize, t_len: usize },
    /// A restored snapshot carries NaN/±inf weights; serving them would
    /// silently answer every query with NaN.
    NonFiniteWeights { param: String },
    /// Snapshot parse/restore failure.
    Snapshot(String),
    /// The serving executor shut down before answering (transient: the
    /// request itself may be perfectly valid).
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Geometry(msg) => write!(f, "geometry mismatch: {msg}"),
            ServeError::Series { s, n_series } => {
                write!(f, "series {s} out of range (dataset has {n_series})")
            }
            ServeError::Range { start, end, t_len } => {
                write!(f, "range {start}..{end} invalid for live series length {t_len}")
            }
            ServeError::NonFiniteWeights { param } => {
                write!(f, "snapshot parameter `{param}` contains non-finite weights")
            }
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::Shutdown => write!(f, "serving executor shut down before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One imputation request: the fully-imputed values of `[start, end)` in
/// series `s` (observed entries pass through, missing entries are imputed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImputeRequest {
    /// Flat series id.
    pub s: usize,
    /// Range start (inclusive).
    pub start: usize,
    /// Range end (exclusive).
    pub end: usize,
}

/// What one [`ImputationEngine::append`] or [`ImputationEngine::fill_range`]
/// did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendReport {
    /// The time range the new values were recorded into.
    pub recorded: (usize, usize),
    /// Windows re-imputed eagerly (local reach of the record + sibling
    /// overlaps).
    pub windows_recomputed: usize,
    /// Missing positions whose cached imputation was refreshed.
    pub positions_refreshed: usize,
    /// Windows of the recorded series marked stale for lazy recomputation.
    pub windows_invalidated: usize,
    /// Live series length after the mutation (appends may grow it past the
    /// trained length; backfills never do).
    pub live_len: usize,
}

/// Monotonic serving counters (lock-free reads; see
/// [`ImputationEngine::stats`]).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    windows_computed: AtomicU64,
    window_hits: AtomicU64,
    appends: AtomicU64,
    values_appended: AtomicU64,
    backfills: AtomicU64,
    values_backfilled: AtomicU64,
}

/// Point-in-time copy of the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests served (each element of a batch counts once).
    pub requests: u64,
    /// Micro-batches executed (a single `query` counts as a batch of one).
    pub batches: u64,
    /// Window forward passes actually evaluated.
    pub windows_computed: u64,
    /// Windows with missing entries served from the warm cache without a
    /// forward pass (fully observed windows never count — they need neither
    /// cache nor compute).
    pub window_hits: u64,
    /// Successful appends.
    pub appends: u64,
    /// Total values recorded by appends.
    pub values_appended: u64,
    /// Successful interior backfills ([`ImputationEngine::fill_range`]).
    pub backfills: u64,
    /// Total values recorded by backfills.
    pub values_backfilled: u64,
}

/// Mutable serving state, guarded by the engine mutex.
struct EngineState {
    /// Observed values/mask at storage *capacity*; everything in
    /// `[grid.t_len(), obs.t_len())` is missing by construction.
    obs: ObservedDataset,
    /// The live window grid: `grid.t_len()` is the live series length.
    grid: WindowGrid,
    /// Full-tensor cache at storage capacity: observed values + the latest
    /// imputations.
    imputed: Tensor,
    /// Freshness per series, one flag per live window.
    fresh: Vec<Vec<bool>>,
    /// Per-series write watermark: where the next append lands (one past the
    /// last observed entry).
    watermark: Vec<usize>,
    /// Warm forward-pass scratch for the tape-free evaluator: serial
    /// micro-batches (the append/backfill hot path) reuse its recycled
    /// buffers across the engine's whole lifetime instead of re-warming per
    /// batch.
    scratch: InferScratch,
}

impl EngineState {
    /// Live series length (capacity slack excluded).
    fn live_t(&self) -> usize {
        self.grid.t_len()
    }
}

/// The online imputation engine. Shareable across threads behind an `Arc`;
/// all methods take `&self`.
pub struct ImputationEngine {
    model: FrozenModel,
    n_series: usize,
    state: Mutex<EngineState>,
    counters: Counters,
}

impl ImputationEngine {
    /// Builds an engine over a frozen model and the current observed state of
    /// the dataset it serves. The imputation cache starts cold: every window
    /// containing missing entries is computed on first touch (or all at once
    /// via [`ImputationEngine::warm_up`]).
    ///
    /// `obs` may be *longer* than the model's trained length (a serving state
    /// that already grew past training, e.g. restored from a snapshot of a
    /// long-running deployment); it can never be shorter.
    ///
    /// # Errors
    /// [`ServeError::Geometry`] when `obs` does not match the geometry the
    /// model was built for.
    pub fn new(model: FrozenModel, obs: ObservedDataset) -> Result<Self, ServeError> {
        if obs.series_shape() != model.series_shape() || obs.t_len() < model.t_len() {
            return Err(ServeError::Geometry(format!(
                "observed dataset {:?}x{} does not match model {:?}x{} (series shapes must \
                 match and the dataset can only be longer than the trained length)",
                obs.series_shape(),
                obs.t_len(),
                model.series_shape(),
                model.t_len()
            )));
        }
        let grid = WindowGrid::new(model.grid().window_len(), obs.t_len());
        let n_series = obs.n_series();
        let watermark = (0..n_series)
            .map(|s| {
                let avail = obs.available.series(s);
                avail.iter().rposition(|&a| a).map_or(0, |t| t + 1)
            })
            .collect();
        let imputed = obs.values.clone();
        let fresh = vec![vec![false; grid.n_windows()]; n_series];
        let state =
            EngineState { obs, grid, imputed, fresh, watermark, scratch: InferScratch::new() };
        Ok(Self { model, n_series, state: Mutex::new(state), counters: Counters::default() })
    }

    /// The frozen model this engine serves.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// A snapshot of the live window grid: `grid().t_len()` is the current
    /// live series length, which grows as appends run past it.
    pub fn grid(&self) -> WindowGrid {
        self.state.lock().expect("engine poisoned").grid
    }

    /// Current live series length (starts at the constructed dataset's length
    /// and grows with appends).
    pub fn live_len(&self) -> usize {
        self.state.lock().expect("engine poisoned").live_t()
    }

    /// Series length the served model was trained on (fixed).
    pub fn trained_len(&self) -> usize {
        self.model.t_len()
    }

    /// Computes every stale window with missing entries now, so subsequent
    /// queries are pure cache reads. Returns the number of windows computed.
    pub fn warm_up(&self) -> usize {
        let mut state = self.state.lock().expect("engine poisoned");
        let mut queries = Vec::new();
        let live_t = state.live_t();
        for s in 0..self.n_series {
            self.collect_stale(&state, s, 0, live_t, &mut queries);
        }
        self.compute_and_fill(&mut state, &queries);
        queries.len()
    }

    /// Serves one request (a micro-batch of one); see
    /// [`ImputationEngine::query_batch`].
    ///
    /// # Errors
    /// [`ServeError::Series`] / [`ServeError::Range`] on an invalid request.
    pub fn query(&self, s: usize, start: usize, end: usize) -> Result<Vec<f64>, ServeError> {
        self.query_batch(&[ImputeRequest { s, start, end }]).pop().expect("one result")
    }

    /// Serves a micro-batch of requests: validates each against the live
    /// series length, coalesces the stale windows the batch needs
    /// (deduplicated across overlapping requests), evaluates them in one
    /// data-parallel pass, then answers every request from the refreshed
    /// cache. Per-request errors do not poison the batch.
    pub fn query_batch(&self, requests: &[ImputeRequest]) -> Vec<Result<Vec<f64>, ServeError>> {
        self.counters.requests.fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);

        let mut state = self.state.lock().expect("engine poisoned");
        let live_t = state.live_t();
        let validity: Vec<Result<(), ServeError>> = requests
            .iter()
            .map(|r| {
                if r.s >= self.n_series {
                    Err(ServeError::Series { s: r.s, n_series: self.n_series })
                } else if r.start > r.end || r.end > live_t {
                    Err(ServeError::Range { start: r.start, end: r.end, t_len: live_t })
                } else {
                    Ok(())
                }
            })
            .collect();

        let mut queries = Vec::new();
        let mut needed = BTreeSet::new();
        let mut hits = 0usize;
        for (r, ok) in requests.iter().zip(&validity) {
            if ok.is_ok() {
                hits += self.collect_stale_dedup(
                    &state,
                    r.s,
                    r.start,
                    r.end,
                    &mut needed,
                    &mut queries,
                );
            }
        }
        self.counters.window_hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.compute_and_fill(&mut state, &queries);

        requests
            .iter()
            .zip(validity)
            .map(|(r, ok)| ok.map(|()| state.imputed.series(r.s)[r.start..r.end].to_vec()))
            .collect()
    }

    /// Records newly arrived values for series `s` at its write watermark and
    /// re-imputes the affected tail windows (see the module docs for the exact
    /// affected set). An append running past the current live length **grows**
    /// the series: the live grid extends, storage grows geometrically when
    /// capacity is exhausted, and windows past the trained length are served
    /// through the frozen model's rolling temporal context — streaming never
    /// hits a capacity wall. Returns what was recorded and recomputed.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id.
    pub fn append(&self, s: usize, values: &[f64]) -> Result<AppendReport, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        let mut state = self.state.lock().expect("engine poisoned");
        let wm = state.watermark[s];
        let end = wm + values.len();
        if values.is_empty() {
            return Ok(AppendReport {
                recorded: (wm, wm),
                windows_recomputed: 0,
                positions_refreshed: 0,
                windows_invalidated: 0,
                live_len: state.live_t(),
            });
        }
        if end > state.live_t() {
            self.grow(&mut state, end);
        }
        self.record(&mut state, s, wm, values);
        state.watermark[s] = end;

        // Eager set: the whole tail from one window before the append (the
        // fine-grained mean reaches `w` steps across a window boundary). When
        // the append grew the series, every window holding newly-live
        // positions overlaps `[wm, end)` — the appended range ends at the new
        // live end — so extended windows of *all* series are refreshed or
        // invalidated by the shared plumbing below too.
        let tail = state.grid.tail_windows_for(wm);
        let report = self.refresh_after_record(&mut state, s, wm, end, tail);

        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        self.counters.values_appended.fetch_add(values.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Records late-arriving values for series `s` at an explicit position
    /// inside the live range — the *backfill* counterpart of
    /// [`ImputationEngine::append`] for interior gaps the watermark has
    /// already passed (e.g. a sensor outage healed by a delayed batch upload).
    ///
    /// Re-imputes eagerly every window within local reach of the filled range
    /// (±`w`: the fine-grained mean crosses one window boundary) plus sibling
    /// windows overlapping it (kernel regression), and invalidates the rest of
    /// the series' fresh windows for lazy healing (attention context), exactly
    /// mirroring the append contract: eager positions match a full batch
    /// re-impute of the current state.
    ///
    /// The watermark only moves if the filled range ends past it; filling an
    /// interior gap leaves streaming appends unaffected.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id, [`ServeError::Range`] when the
    /// range leaves the live series (backfill never grows a series — that is
    /// `append`'s job).
    pub fn fill_range(
        &self,
        s: usize,
        start: usize,
        values: &[f64],
    ) -> Result<AppendReport, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        let mut state = self.state.lock().expect("engine poisoned");
        let live_t = state.live_t();
        let end = start + values.len();
        if start > live_t || end > live_t {
            return Err(ServeError::Range { start, end, t_len: live_t });
        }
        if values.is_empty() {
            return Ok(AppendReport {
                recorded: (start, start),
                windows_recomputed: 0,
                positions_refreshed: 0,
                windows_invalidated: 0,
                live_len: live_t,
            });
        }
        self.record(&mut state, s, start, values);
        state.watermark[s] = state.watermark[s].max(end);

        // Eager set: windows within the ±w local reach of the filled range.
        let w = state.grid.window_len();
        let eager = state.grid.windows_overlapping(start.saturating_sub(w), (end + w).min(live_t));
        let report = self.refresh_after_record(&mut state, s, start, end, eager);

        self.counters.backfills.fetch_add(1, Ordering::Relaxed);
        self.counters.values_backfilled.fetch_add(values.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// The shared mutation plumbing behind [`ImputationEngine::append`] and
    /// [`ImputationEngine::fill_range`], run after `[start, end)` of series
    /// `s` was recorded: marks every affected window stale — all of `s` (the
    /// attention context can reach anywhere in the series) plus sibling
    /// windows overlapping the recorded range (the kernel regression reads
    /// sibling values pointwise) — then eagerly recomputes the `eager` window
    /// range of `s` and the sibling overlaps in one batch. Windows of `s`
    /// outside `eager` heal lazily on their next touch and are counted as
    /// `windows_invalidated`.
    fn refresh_after_record(
        &self,
        state: &mut EngineState,
        s: usize,
        start: usize,
        end: usize,
        eager: Range<usize>,
    ) -> AppendReport {
        let overlap = state.grid.windows_overlapping(start, end);
        let mut invalidated = 0usize;
        for j in 0..state.grid.n_windows() {
            if eager.contains(&j) {
                state.fresh[s][j] = false;
            } else if state.fresh[s][j] {
                state.fresh[s][j] = false;
                invalidated += 1;
            }
        }
        for sib in 0..self.n_series {
            if sib != s {
                for j in overlap.clone() {
                    state.fresh[sib][j] = false;
                }
            }
        }

        let mut queries = Vec::new();
        let mut needed = BTreeSet::new();
        if !eager.is_empty() {
            let (eager_lo, _) = state.grid.bounds(eager.start);
            let (_, eager_hi) = state.grid.bounds(eager.end - 1);
            self.collect_stale_dedup(state, s, eager_lo, eager_hi, &mut needed, &mut queries);
        }
        for sib in 0..self.n_series {
            if sib != s {
                self.collect_stale_dedup(state, sib, start, end, &mut needed, &mut queries);
            }
        }
        let positions_refreshed = queries.iter().map(|q| q.positions.len()).sum();
        let windows_recomputed = queries.len();
        self.compute_and_fill(state, &queries);
        AppendReport {
            recorded: (start, end),
            windows_recomputed,
            positions_refreshed,
            windows_invalidated: invalidated,
            live_len: state.live_t(),
        }
    }

    /// The next write position of series `s` — one past the last observed
    /// entry at construction, advanced by appends. Note this is a *streaming*
    /// cursor: a hidden interior gap before the watermark is backfilled with
    /// [`ImputationEngine::fill_range`], not `append`.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id.
    pub fn watermark(&self, s: usize) -> Result<usize, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        Ok(self.state.lock().expect("engine poisoned").watermark[s])
    }

    /// A copy of the full live imputation cache (observed values + latest
    /// imputations, truncated to the live length). Primarily for tests and
    /// offline comparison.
    pub fn cached_values(&self) -> Tensor {
        let state = self.state.lock().expect("engine poisoned");
        state.imputed.truncated_time(state.live_t())
    }

    /// A copy of the current observed state the engine serves, at the live
    /// length (capacity slack excluded).
    pub fn observed(&self) -> ObservedDataset {
        let state = self.state.lock().expect("engine poisoned");
        state.obs.truncated(state.live_t())
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            windows_computed: self.counters.windows_computed.load(Ordering::Relaxed),
            window_hits: self.counters.window_hits.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            values_appended: self.counters.values_appended.load(Ordering::Relaxed),
            backfills: self.counters.backfills.load(Ordering::Relaxed),
            values_backfilled: self.counters.values_backfilled.load(Ordering::Relaxed),
        }
    }

    /// Extends the live length to `live_needed`, growing the backing storage
    /// geometrically (≥1.5×, window-aligned) when capacity runs out so a
    /// stream of small appends moves each element O(1) times amortized. The
    /// slack `[live, capacity)` stays all-missing, which the forward pass
    /// treats exactly like data that does not exist.
    fn grow(&self, state: &mut EngineState, live_needed: usize) {
        let capacity = state.obs.t_len();
        if live_needed > capacity {
            let w = state.grid.window_len();
            let target = live_needed.max(capacity + capacity / 2);
            let new_capacity = target.div_ceil(w) * w;
            state.obs.extend_time(new_capacity);
            state.imputed.extend_time(new_capacity, 0.0);
        }
        state.grid.grow_to(live_needed);
        let n_windows = state.grid.n_windows();
        for fresh in &mut state.fresh {
            fresh.resize(n_windows, false);
        }
    }

    /// Writes `values` into the observed state and the imputation cache at
    /// `[start, start + len)` of series `s` (both live by the caller's
    /// validation/growth).
    fn record(&self, state: &mut EngineState, s: usize, start: usize, values: &[f64]) {
        state.obs.record_range(s, start, values);
        state.imputed.series_mut(s)[start..start + values.len()].copy_from_slice(values);
    }

    /// Appends the stale windows with missing entries of series `s` inside
    /// `[start, end)` to `queries` (no dedup across calls).
    fn collect_stale(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        queries: &mut Vec<WindowQuery>,
    ) {
        let mut needed = BTreeSet::new();
        self.collect_stale_dedup(state, s, start, end, &mut needed, queries);
    }

    /// Like [`ImputationEngine::collect_stale`], but skips `(s, window)` pairs
    /// already in `needed` — the coalescing step that lets overlapping
    /// requests in one micro-batch share a single forward pass per window.
    /// Returns how many windows were skipped because they were fresh (cache
    /// hits — windows claimed by an earlier request in the batch are shared
    /// work, not hits).
    ///
    /// Freshness is checked per window *before* enumerating any positions, so
    /// the steady-state all-fresh request costs one bool scan per overlapped
    /// window and zero allocation. Queries always carry the full window's
    /// missing positions (the request range may clip the window, but the
    /// freshness bit covers all of it).
    fn collect_stale_dedup(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        needed: &mut BTreeSet<(usize, usize)>,
        queries: &mut Vec<WindowQuery>,
    ) -> usize {
        let avail = state.obs.available.series(s);
        let mut fresh_hits = 0usize;
        for wj in state.grid.windows_overlapping(start, end) {
            let (lo, hi) = state.grid.bounds(wj);
            if state.fresh[s][wj] {
                // Fully observed windows carry no imputations: not a hit.
                if avail[lo..hi].iter().any(|&a| !a) {
                    fresh_hits += 1;
                }
                continue;
            }
            if !needed.contains(&(s, wj)) {
                let positions: Vec<usize> = (lo..hi).filter(|&t| !avail[t]).collect();
                if positions.is_empty() {
                    continue; // fully observed, nothing to impute
                }
                needed.insert((s, wj));
                queries.push(WindowQuery { s, window_j: wj, positions });
            }
        }
        fresh_hits
    }

    /// Evaluates `queries` data-parallel over the frozen model, writes the
    /// predictions into the cache and marks the windows fresh. The capacity
    /// slack past the live length is all-missing, so evaluating against the
    /// capacity-padded observed state is bitwise identical to evaluating
    /// against the live prefix.
    ///
    /// Runs through the tape-free evaluator with the engine's long-lived
    /// scratch, so the serial cold-window path (small per-append
    /// micro-batches) stays allocation-lean after the first touch.
    fn compute_and_fill(&self, state: &mut EngineState, queries: &[WindowQuery]) {
        if queries.is_empty() {
            return;
        }
        let threads = mvi_parallel::current_threads();
        let EngineState { scratch, obs, .. } = state;
        let results = self.model.predict_batch_with(scratch, obs, queries, threads);
        for (q, vals) in queries.iter().zip(&results) {
            let series = state.imputed.series_mut(q.s);
            for (&t, &v) in q.positions.iter().zip(vals) {
                series[t] = v;
            }
            state.fresh[q.s][q.window_j] = true;
        }
        self.counters.windows_computed.fetch_add(queries.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmvi::{DeepMviConfig, DeepMviModel};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn engine_fixture() -> (ObservedDataset, ImputationEngine) {
        let ds = generate_with_shape(DatasetName::Chlorine, &[4], 150, 7);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 8, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs.clone()).unwrap();
        (obs, engine)
    }

    #[test]
    fn query_matches_batch_impute_and_hits_cache_on_repeat() {
        let (obs, engine) = engine_fixture();
        let full = engine.model().impute(&obs);
        let t = obs.t_len();
        for s in 0..obs.n_series() {
            let got = engine.query(s, 0, t).unwrap();
            assert_eq!(got, full.series(s), "series {s} diverged from batch impute");
        }
        let computed_cold = engine.stats().windows_computed;
        assert!(computed_cold > 0);
        // A second sweep is pure cache reads.
        for s in 0..obs.n_series() {
            engine.query(s, 0, t).unwrap();
        }
        assert_eq!(engine.stats().windows_computed, computed_cold, "repeat queries recomputed");
        assert!(engine.stats().window_hits > 0);
    }

    #[test]
    fn warm_up_precomputes_everything() {
        let (obs, engine) = engine_fixture();
        let warmed = engine.warm_up();
        assert!(warmed > 0);
        let before = engine.stats().windows_computed;
        engine.query(0, 0, obs.t_len()).unwrap();
        assert_eq!(engine.stats().windows_computed, before);
        assert_eq!(engine.cached_values(), engine.model().impute(&obs));
    }

    #[test]
    fn coalescing_shares_windows_across_overlapping_requests() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        // Many overlapping requests over the same region in one batch.
        let reqs: Vec<ImputeRequest> =
            (0..6).map(|i| ImputeRequest { s: 1, start: i * 5, end: t / 2 + i * 5 }).collect();
        let results = engine.query_batch(&reqs);
        let computed = engine.stats().windows_computed;
        for (r, res) in reqs.iter().zip(&results) {
            let vals = res.as_ref().unwrap();
            assert_eq!(vals.len(), r.end - r.start);
        }
        // Without coalescing this would be ~6x the distinct-window count.
        let distinct = engine.grid().windows_overlapping(0, t / 2 + 25).len();
        assert!(
            computed as usize <= distinct,
            "computed {computed} windows for {distinct} distinct"
        );
    }

    #[test]
    fn invalid_requests_fail_cleanly_without_poisoning_the_batch() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        let results = engine.query_batch(&[
            ImputeRequest { s: 99, start: 0, end: 10 },
            ImputeRequest { s: 0, start: 5, end: t + 1 },
            ImputeRequest { s: 0, start: 8, end: 4 },
            ImputeRequest { s: 2, start: 0, end: 10 },
        ]);
        assert!(matches!(results[0], Err(ServeError::Series { s: 99, .. })));
        assert!(matches!(results[1], Err(ServeError::Range { .. })));
        assert!(matches!(results[2], Err(ServeError::Range { .. })));
        assert!(results[3].is_ok());
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_construction() {
        let (_, engine) = engine_fixture();
        let other = generate_with_shape(DatasetName::Chlorine, &[5], 150, 7);
        let other_obs = Scenario::mcar(1.0).apply(&other, 3).observed();
        let model = engine.model();
        let snap = crate::snapshot::ServeSnapshot::capture(model.model(), &engine.observed());
        assert!(matches!(snap.restore(&other_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn shorter_dataset_is_rejected_at_construction() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let shorter = obs.truncated(60);
        assert!(matches!(
            ImputationEngine::new(model.freeze(), shorter),
            Err(ServeError::Geometry(_))
        ));
    }

    #[test]
    fn append_advances_watermark_and_grows_past_trained_capacity() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // Carve out a streaming future for series 1.
        obs.hide_range(1, 80, 100);
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();

        assert_eq!(engine.watermark(1).unwrap(), 80);
        assert_eq!(engine.live_len(), 100);
        assert_eq!(engine.trained_len(), 100);
        let report = engine.append(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(report.recorded, (80, 83));
        assert!(report.windows_recomputed > 0, "tail still has missing entries to refresh");
        assert_eq!(report.live_len, 100, "in-range append must not grow the series");
        assert_eq!(engine.watermark(1).unwrap(), 83);
        // Appended values are served back verbatim.
        assert_eq!(engine.query(1, 80, 83).unwrap(), vec![1.0, 2.0, 3.0]);

        // Appending past the trained capacity grows the series instead of
        // failing: the live grid extends and the values serve back verbatim.
        let burst: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let report = engine.append(1, &burst).unwrap();
        assert_eq!(report.recorded, (83, 123));
        assert_eq!(report.live_len, 123);
        assert_eq!(engine.live_len(), 123);
        assert_eq!(engine.watermark(1).unwrap(), 123);
        assert_eq!(engine.grid().n_windows(), engine.grid().t_len().div_ceil(10));
        assert_eq!(engine.query(1, 83, 123).unwrap(), burst);
        // Sibling series grew too: their new suffix is imputable, not an error.
        let sibling_tail = engine.query(0, 100, 123).unwrap();
        assert_eq!(sibling_tail.len(), 23);
        assert!(sibling_tail.iter().all(|v| v.is_finite()));
        // The observed view reports the live length with the slack excluded.
        let observed = engine.observed();
        assert_eq!(observed.t_len(), 123);
        assert!(observed.available.series(0)[100..].iter().all(|&a| !a));
        // Queries past the live end still fail cleanly.
        assert!(matches!(engine.query(1, 0, 124), Err(ServeError::Range { .. })));
        assert!(matches!(engine.append(9, &[0.0]), Err(ServeError::Series { .. })));
    }

    #[test]
    fn repeated_small_appends_grow_storage_geometrically() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 60, 2);
        let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();

        let start = engine.watermark(0).unwrap();
        for i in 0..90 {
            engine.append(0, &[(i as f64 / 11.0).sin()]).unwrap();
        }
        assert_eq!(engine.watermark(0).unwrap(), start + 90);
        assert!(engine.live_len() >= start + 90);
        // Served values reproduce the stream.
        let got = engine.query(0, start, start + 90).unwrap();
        let want: Vec<f64> = (0..90).map(|i| (i as f64 / 11.0).sin()).collect();
        assert_eq!(got, want);
        let stats = engine.stats();
        assert_eq!(stats.appends, 90);
        assert_eq!(stats.values_appended, 90);
    }

    #[test]
    fn fill_range_backfills_an_interior_gap_the_watermark_passed() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // Hidden interior range with an observed tail: the watermark starts at
        // the end, so `append` can never reach the gap.
        obs.hide_range(1, 40, 60);
        obs.record_range(1, 90, &[5.0; 10]);
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();
        assert_eq!(engine.watermark(1).unwrap(), 100);

        let late = [1.5; 20];
        let report = engine.fill_range(1, 40, &late).unwrap();
        assert_eq!(report.recorded, (40, 60));
        assert_eq!(report.live_len, 100);
        assert_eq!(engine.watermark(1).unwrap(), 100, "interior backfill must not move the cursor");
        assert_eq!(engine.query(1, 40, 60).unwrap(), late.to_vec());
        let stats = engine.stats();
        assert_eq!(stats.backfills, 1);
        assert_eq!(stats.values_backfilled, 20);
        // Out-of-range backfills are rejected; backfill never grows.
        assert!(matches!(engine.fill_range(1, 95, &[0.0; 10]), Err(ServeError::Range { .. })));
        assert!(matches!(engine.fill_range(7, 0, &[0.0]), Err(ServeError::Series { .. })));
    }
}
